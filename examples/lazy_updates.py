"""Lazy updates and threshold-driven retraining (paper Sec. IV-D).

Shows the full modification lifecycle on one structure:

1. inserts/updates/deletes are absorbed by the auxiliary structure with
   no retraining (the model never changes);
2. a byte-budget tracker measures modification volume;
3. once the threshold is crossed the structure retrains itself — warm
   started from the previous model (our implementation of the paper's
   "model reuse" future-work note) — and the auxiliary table shrinks back.

Run:  python examples/lazy_updates.py
"""

import numpy as np

import repro
from repro import DeepMappingConfig
from repro.data import synthetic


def report(dm, label):
    r = dm.size_report()
    print(f"{label:<28} total={r.total_bytes // 1024:>4} KB  "
          f"aux_rows={r.n_in_aux:>5}  retrains={dm.tracker.total_retrains}")


def main() -> None:
    base = synthetic.multi_column(6000, "high", domain_factor=2.0)
    threshold = base.uncompressed_bytes() // 5  # retrain at ~20% modified
    config = DeepMappingConfig(
        epochs=150, batch_size=512,
        retrain_threshold_bytes=threshold,
        warm_start_rebuild=True,
    )
    dm = repro.build(base, config)
    print(f"base: {base.n_rows} rows "
          f"({base.uncompressed_bytes() // 1024} KB raw); retrain threshold "
          f"= {threshold // 1024} KB of modifications\n")
    report(dm, "after initial build")

    # Rounds of mixed modifications; watch the tracker do its job.
    rng = np.random.default_rng(1)
    grown = base
    for round_no in range(1, 6):
        batch = synthetic.insert_batch(grown, 600, "high",
                                       seed=round_no, mode="gaps")
        dm.insert(batch)
        grown = grown.concat(batch)

        victims = rng.choice(grown.column("key"), size=200, replace=False)
        dm.delete({"key": victims})
        keep = ~np.isin(grown.column("key"), victims)
        grown = grown.take(np.flatnonzero(keep))

        report(dm, f"after round {round_no}")

    print(f"\nwarm start transferred {dm.warm_started_tensors} weight "
          f"tensors into the last retrain")

    # The structure still answers exactly for the surviving logical rows.
    probe = {"key": grown.column("key")}
    result = dm.lookup(probe)
    exact = all(
        np.array_equal(result.values[c], grown.column(c))
        for c in grown.value_columns
    )
    print(f"all {grown.n_rows} surviving rows answer losslessly: {exact}")
    assert exact and result.found.all()


if __name__ == "__main__":
    main()
