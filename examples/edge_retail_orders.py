"""Edge retail scenario: an order/inventory store on a constrained device.

The paper's motivating use case (Sec. I): a self-serve retail edge device
must hold transaction data locally, answer random lookups fast, and absorb
new orders, cancellations and status changes — all inside a small memory
budget.  This example runs that lifecycle end to end and contrasts
DeepMapping against a compressed array store under the same memory pool.

Run:  python examples/edge_retail_orders.py
"""

import time

import numpy as np

from repro import DeepMapping, DeepMappingConfig
from repro.baselines import make_baseline
from repro.bench import key_batches, measure_lookup
from repro.data import tpch
from repro.storage import BufferPool


def main() -> None:
    orders = tpch.generate("orders", scale=0.4, seed=7)
    raw_kb = orders.uncompressed_bytes() // 1024
    budget = orders.uncompressed_bytes() // 4
    print(f"device dataset: {orders.n_rows} orders, {raw_kb} KB raw; "
          f"memory pool: {budget // 1024} KB\n")

    # --- build both representations under the same pool budget ----------
    config = DeepMappingConfig(epochs=200, batch_size=256,
                               shared_sizes=(128,), private_sizes=(64,),
                               key_headroom_fraction=1.0)
    dm = DeepMapping.fit(orders, config, pool=BufferPool(budget))
    abc = make_baseline("ABC-Z", target_partition_bytes=16 * 1024,
                        pool=BufferPool(budget)).build(orders)

    report = dm.size_report()
    print(f"DeepMapping: {report.total_bytes // 1024} KB "
          f"({report.compression_ratio:.1%} of raw), "
          f"{report.memorized_fraction:.0%} of orders served by the model")
    print(f"ABC-Z      : {abc.stored_bytes() // 1024} KB\n")

    # --- random lookups (the kiosk scanning order barcodes) -------------
    batches = key_batches(orders, 2000, repeats=3, seed=1)
    dm_ms = measure_lookup(dm, batches) * 1000
    abc_ms = measure_lookup(abc, batches) * 1000
    print(f"random lookups, B=2000: DeepMapping {dm_ms:.1f} ms/batch "
          f"vs ABC-Z {abc_ms:.1f} ms/batch\n")

    # --- day-to-day modifications ---------------------------------------
    # New orders arrive (insert), a shipment completes (update), and a
    # cancelled order is purged (delete) — no retraining needed.
    new_keys = np.arange(orders.column("o_orderkey").max() + 4,
                         orders.column("o_orderkey").max() + 4 + 3 * 4, 4)
    dm.insert({
        "o_orderkey": new_keys,
        "o_custkey": np.array([11, 12, 13]),
        "o_orderstatus": np.array(["O", "O", "O"]),
        "o_orderpriority": np.array(["1-URGENT", "3-MEDIUM", "5-LOW"]),
        "o_year": np.array([1998, 1998, 1998]),
    })
    print(f"inserted orders {new_keys.tolist()}:",
          [dm.lookup_one(o_orderkey=int(k))["o_orderstatus"]
           for k in new_keys])

    shipped = dm.lookup_one(o_orderkey=int(new_keys[0]))
    shipped["o_orderstatus"] = "F"
    dm.update({name: np.array([value]) for name, value in
               {"o_orderkey": new_keys[0], **{k: v for k, v in shipped.items()}}.items()})
    print(f"order {new_keys[0]} after shipping:",
          dm.lookup_one(o_orderkey=int(new_keys[0]))["o_orderstatus"])

    dm.delete({"o_orderkey": new_keys[2:3]})
    print(f"order {new_keys[2]} after cancellation:",
          dm.lookup_one(o_orderkey=int(new_keys[2])))

    # The hybrid stayed consistent for the original data throughout.
    probe = {"o_orderkey": orders.column("o_orderkey")[:500]}
    result = dm.lookup(probe)
    assert result.found.all()
    print("\noriginal orders still answer losslessly:", bool(result.found.all()))


if __name__ == "__main__":
    main()
