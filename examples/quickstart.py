"""Quickstart: compress a table into a store with `repro.build`, reopen
it anywhere with `repro.open`.

Builds the hybrid structure over a scaled TPC-H ``orders`` table, runs
point lookups (hits and misses), inspects the storage breakdown, then
round-trips the store through three persistence backends — a plain file,
a single zip archive (the object-store stand-in), and an in-memory
container — and finishes with an async batched lookup against a sharded
build.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

import repro


def main() -> None:
    # 1. Get a table.  Any ColumnTable with discrete key/value columns works.
    orders = repro.data.tpch.generate("orders", scale=0.2, seed=42)
    print(f"dataset: {orders.name}, {orders.n_rows} rows, "
          f"{orders.uncompressed_bytes() // 1024} KB uncompressed")

    # 2. Build the store (model + aux table + V_exist + f_decode).
    config = repro.DeepMappingConfig(epochs=150, batch_size=256)
    dm = repro.build(orders, config)

    report = dm.size_report()
    print(f"hybrid size: {report.total_bytes // 1024} KB "
          f"(ratio {report.compression_ratio:.3f}); "
          f"model memorizes {report.memorized_fraction:.0%} of tuples")
    print("breakdown:", {k: f"{v:.1f}%" for k, v in report.breakdown().items()})

    # 3. Point lookups: an existing key and a key that never existed.
    first_key = int(orders.column("o_orderkey")[0])
    print(f"lookup({first_key}):", dm.lookup_one(o_orderkey=first_key))
    print("lookup(3):", dm.lookup_one(o_orderkey=3))  # TPC-H keys are sparse

    # 4. Batch lookups are the fast path (Algorithm 1 is batched).
    batch = {"o_orderkey": orders.column("o_orderkey")[:1000]}
    result = dm.lookup(batch)
    exact = all(
        np.array_equal(result.values[c], orders.column(c)[:1000])
        for c in orders.value_columns
    )
    print(f"batch of 1000: all found={result.found.all()}, lossless={exact}")

    # 5. Persistence: one URL per backend, same bits back from each.
    workdir = tempfile.mkdtemp()
    targets = [
        os.path.join(workdir, "orders.dm"),          # plain file
        f"zip://{workdir}/orders.zip",               # single-archive store
        "mem://quickstart-orders",                    # in-process scratch
    ]
    expected = dm.lookup_one(o_orderkey=first_key)
    for target in targets:
        nbytes = dm.save(target)
        with repro.open(target) as clone:
            assert clone.lookup_one(o_orderkey=first_key) == expected
        print(f"round-tripped {nbytes} bytes through {target}")

    # 6. Sharded build + async lookup through the same facade.
    with repro.build(orders, config, shards=4,
                     url=f"zip://{workdir}/orders-sharded.zip") as sharded:
        future = sharded.lookup_async(batch)
        async_result = future.result()
        assert np.array_equal(async_result.found, result.found)
        print(f"sharded x{sharded.n_shards}: async batch matches "
              f"synchronous lookup ({int(async_result.found.sum())} hits)")


if __name__ == "__main__":
    main()
