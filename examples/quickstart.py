"""Quickstart: compress a table into a DeepMapping and query it.

Builds the hybrid structure over a scaled TPC-H ``orders`` table, runs
point lookups (hits and misses), inspects the storage breakdown, and
round-trips the structure through a file.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import DeepMapping, DeepMappingConfig
from repro.data import tpch


def main() -> None:
    # 1. Get a table.  Any ColumnTable with discrete key/value columns works.
    orders = tpch.generate("orders", scale=0.2, seed=42)
    print(f"dataset: {orders.name}, {orders.n_rows} rows, "
          f"{orders.uncompressed_bytes() // 1024} KB uncompressed")

    # 2. Fit the hybrid structure (model + aux table + V_exist + f_decode).
    config = DeepMappingConfig(epochs=150, batch_size=256)
    dm = DeepMapping.fit(orders, config)

    report = dm.size_report()
    print(f"hybrid size: {report.total_bytes // 1024} KB "
          f"(ratio {report.compression_ratio:.3f}); "
          f"model memorizes {report.memorized_fraction:.0%} of tuples")
    print("breakdown:", {k: f"{v:.1f}%" for k, v in report.breakdown().items()})

    # 3. Point lookups: an existing key and a key that never existed.
    first_key = int(orders.column("o_orderkey")[0])
    print(f"lookup({first_key}):", dm.lookup_one(o_orderkey=first_key))
    print("lookup(3):", dm.lookup_one(o_orderkey=3))  # TPC-H keys are sparse

    # 4. Batch lookups are the fast path (Algorithm 1 is batched).
    batch = {"o_orderkey": orders.column("o_orderkey")[:1000]}
    result = dm.lookup(batch)
    exact = all(
        np.array_equal(result.values[c], orders.column(c)[:1000])
        for c in orders.value_columns
    )
    print(f"batch of 1000: all found={result.found.all()}, lossless={exact}")

    # 5. Persistence.
    path = os.path.join(tempfile.mkdtemp(), "orders.dm")
    print(f"saved {dm.save(path)} bytes to {path}")
    clone = DeepMapping.load(path)
    assert clone.lookup_one(o_orderkey=first_key) == dm.lookup_one(
        o_orderkey=first_key)
    print("reloaded structure answers identically")


if __name__ == "__main__":
    main()
