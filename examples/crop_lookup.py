"""Cropland scenario: composite-key spatial lookups on an edge device.

The paper evaluates a real CroplandCROS raster — (latitude, longitude) ->
crop type — as its real-world dataset: autonomous farm equipment looks up
what grows at a coordinate from a local store.  This example compresses a
synthetic raster with the same spatial structure, runs point and range
queries over the composite key, and compares against the compressed array
baseline.

Run:  python examples/crop_lookup.py
"""

import numpy as np

import repro
from repro import DeepMappingConfig, lookup_range
from repro.baselines import make_baseline
from repro.data import crop


def main() -> None:
    raster = crop.generate(height=120, width=120, seed=3)
    print(f"raster: {raster.n_rows} pixels "
          f"({raster.uncompressed_bytes() // 1024} KB raw), "
          f"key = (lat, lon), value = crop_type")

    config = DeepMappingConfig(epochs=150, batch_size=1024,
                               shared_sizes=(128,), private_sizes=(64,))
    dm = repro.build(raster, config)
    report = dm.size_report()
    abc = make_baseline("ABC-L").build(raster)
    print(f"DeepMapping: {report.total_bytes // 1024} KB "
          f"(ratio {report.compression_ratio:.1%}, "
          f"{report.memorized_fraction:.0%} of pixels in the model)")
    print(f"ABC-L      : {abc.stored_bytes() // 1024} KB\n")

    # Point lookup: what grows at a coordinate?
    row = dm.lookup_one(lat=60, lon=45)
    print(f"crop at (60, 45): {row['crop_type']}")
    assert row["crop_type"] == raster.column("crop_type")[60 * 120 + 45]

    # Out-of-field coordinates return NULL instead of hallucinating.
    assert dm.lookup_one(lat=500, lon=500) is None
    print("coordinates outside the raster return NULL\n")

    # Range query (paper Sec. IV-E approach 1): a 10x10 field patch.
    keys, result = lookup_range(dm, {"lat": 50, "lon": 40},
                                {"lat": 59, "lon": 49})
    patch = result.values["crop_type"]
    kinds, counts = np.unique(patch, return_counts=True)
    print(f"10x10 patch at (50..59, 40..49): {keys['lat'].size} pixels, "
          "composition:")
    for kind, count in sorted(zip(kinds, counts), key=lambda t: -t[1]):
        print(f"  {kind}: {count}")

    # The patch matches ground truth exactly (losslessness).
    truth = raster.column("crop_type").reshape(120, 120)[50:60, 40:50]
    assert np.array_equal(np.sort(patch), np.sort(truth.reshape(-1)))
    print("\npatch contents verified against the raw raster")


if __name__ == "__main__":
    main()
