"""MHAS demo: let the controller find the hybrid structure.

Runs the multi-task hybrid architecture search (paper Sec. IV-C) on the
TPC-DS customer_demographics table — the paper's flagship compressible
workload — and prints the search trace (Fig. 9's curve) plus the chosen
architecture.

Run:  python examples/architecture_search.py
"""

import numpy as np

import repro
from repro import DeepMappingConfig
from repro.bench import running_average
from repro.core.mhas import MHASConfig
from repro.data import tpcds


def main() -> None:
    table = tpcds.generate("customer_demographics", scale=0.2, seed=5)
    print(f"dataset: {table.name}, {table.n_rows} rows, "
          f"{len(table.value_columns)} value columns "
          f"({table.uncompressed_bytes() // 1024} KB raw)\n")

    config = DeepMappingConfig(
        use_search=True,
        search=MHASConfig(
            iterations=24,
            controller_every=3,
            controller_samples=3,
            model_epochs=2,
            model_batch=1024,
            size_choices=(16, 32, 64, 128),
        ),
        epochs=100,
        batch_size=1024,
    )
    dm = repro.build(table, config)
    outcome = dm.search_history

    print(f"search explored {len(outcome.history)} candidate architectures "
          f"over {outcome.iterations_run} iterations "
          f"(space size: {4 ** 2 * 4 ** (2 * 6):,}-ish)")
    ratios = outcome.ratios()
    smoothed = running_average(ratios, window=5)
    print("smoothed sampled ratio (Fig. 9 shape):")
    for i in range(0, len(smoothed), max(1, len(smoothed) // 8)):
        bar = "#" * max(1, int(smoothed[i] * 60))
        print(f"  sample {i:3d}: {smoothed[i]:.3f} {bar}")

    spec = dm.session.spec
    print(f"\nchosen architecture: shared={spec.shared_sizes}, private="
          f"{ {t: spec.private_sizes[t] for t in spec.tasks} }")
    report = dm.size_report()
    print(f"final hybrid: {report.total_bytes // 1024} KB "
          f"(ratio {report.compression_ratio:.1%}), "
          f"{report.memorized_fraction:.0%} memorized")

    # Verify losslessness after the search, like any other build.
    probe = {"cd_demo_sk": table.column("cd_demo_sk")}
    result = dm.lookup(probe)
    exact = all(np.array_equal(result.values[c], table.column(c))
                for c in table.value_columns)
    print(f"lossless: {exact}")


if __name__ == "__main__":
    main()
