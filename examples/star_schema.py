"""Star-schema scenario: multi-relation mappings with foreign-key chases.

The paper's problem statement (Sec. III) includes multiple-relation,
multiple-key mappings: a fact table referencing dimension tables.  This
example compresses a small orders/customers star with one DeepMapping per
relation and answers "which market segment ordered X?" by chasing the
foreign key through both learned structures.

Run:  python examples/star_schema.py
"""

import numpy as np

from repro import DeepMappingConfig, MultiRelationDeepMapping
from repro.data import tpch


def main() -> None:
    customers = tpch.generate("customer", scale=0.4, seed=8)
    orders = tpch.generate("orders", scale=0.4, seed=8)
    print(f"star schema: orders({orders.n_rows}) -> "
          f"customers({customers.n_rows})\n")

    mr = MultiRelationDeepMapping.fit(
        {"orders": orders, "customers": customers},
        config=DeepMappingConfig(epochs=60, batch_size=1024),
    )
    total_kb = mr.storage_bytes() // 1024
    raw_kb = (orders.uncompressed_bytes()
              + customers.uncompressed_bytes()) // 1024
    print(f"both relations compressed: {total_kb} KB (raw {raw_kb} KB)\n")

    # Chase: order -> o_custkey -> customer -> c_mktsegment.
    probe_keys = orders.column("o_orderkey")[:8]
    fact, dim = mr.lookup_via(
        "orders", {"o_orderkey": probe_keys},
        fk_column="o_custkey", dimension="customers",
    )
    print("order   -> customer -> segment")
    for i, key in enumerate(probe_keys.tolist()):
        segment = dim.values["c_mktsegment"][i]
        cust = fact.values["o_custkey"][i]
        print(f"  {key:<6} -> {cust:<8} -> {segment}")

    # Verify one chase against ground truth.
    cust0 = int(fact.values["o_custkey"][0])
    truth = customers.column("c_mktsegment")[
        np.flatnonzero(customers.column("c_custkey") == cust0)[0]
    ]
    assert dim.values["c_mktsegment"][0] == truth
    print("\nfirst chase verified against the raw tables")

    # Missing fact keys propagate as NULL through the chase.
    fact, dim = mr.lookup_via("orders", {"o_orderkey": np.array([2])},
                              fk_column="o_custkey", dimension="customers")
    assert not fact.found[0] and not dim.found[0]
    print("missing order keys stay NULL across the join")


if __name__ == "__main__":
    main()
