"""Modification-path benchmark: skewed inserts, rebalancing, shard balance.

Streams a hot-tail insert workload (every batch appends past the current
key maximum, so a range-sharded store funnels the whole stream into its
last shard — the classic append-skew failure) into two 4-shard range
stores:

- **baseline** — unmanaged: the hot shard grows without bound;
- **rebalanced** — a :class:`~repro.lifecycle.MaintenanceEngine` with
  split/merge rebalancing and per-shard MHAS sizing enabled.

After the stream, a drain phase deletes most of the inserted rows so the
engine's merge path runs too.  The benchmark records the shard-balance
trajectory (max/mean row-count ratio after every batch), insert
throughput, split/merge counts, and the model-footprint comparison
between a per-shard-sized build and a fixed-spec build over identical
final data.  Losslessness is asserted throughout — every live key must
answer exactly, through the compiled and the reference read paths alike.

Writes ``BENCH_modify.json`` at the repo root so the trajectory is
machine-readable from PR to PR; ``docs/lifecycle.md`` explains how to
read and refresh it.  Run::

    PYTHONPATH=src python benchmarks/bench_modify.py           # full
    PYTHONPATH=src python benchmarks/bench_modify.py --smoke   # CI seconds

The full run enforces the acceptance bars: rebalanced max/mean <= 2.0
where the baseline exceeds 3.5, at least one split and one merge
performed, and a strictly smaller total model footprint for the
per-shard-sized build.  Smoke mode shrinks everything (while still
exercising one split and one merge) and writes its JSON under
``benchmarks/results/`` instead of the repo root.
"""

import argparse
import json
import os
import time

import numpy as np

from repro.bench import format_table
from repro.core import DeepMappingConfig
from repro.data import synthetic
from repro.lifecycle import LifecycleConfig
from repro.shard import ShardedDeepMapping, ShardingConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

BASELINE_RATIO_BAR = 3.5
REBALANCED_RATIO_BAR = 2.0


def bench_config(smoke: bool) -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=2 if smoke else 6,
        batch_size=2048,
        shared_sizes=(64,),
        private_sizes=(32,),
        aux_partition_bytes=16 * 1024,
        key_headroom_fraction=1.0,  # absorb some appends without rebuilds
    )


def lifecycle_config(smoke: bool) -> LifecycleConfig:
    return LifecycleConfig(
        policy="never",           # isolate rebalancing from retrain noise
        rebalance=True,
        per_shard_mhas=True,
        split_balance=1.6,
        split_min_rows=32 if smoke else 128,
        merge_balance=0.4,
        max_actions_per_run=8,
        max_shards=64,
    )


def set_compiled(store, flag: bool) -> None:
    """Per-shard configs diverge after sized rebuilds; flip them all."""
    store.config.compiled_lookup = flag
    for shard in store.shards:
        if shard is not None:
            shard.config.compiled_lookup = flag


def verify_lossless(store, truth: dict) -> None:
    """Every live key answers its exact row, on both read paths."""
    keys = np.fromiter(truth.keys(), dtype=np.int64, count=len(truth))
    expected = np.array([truth[int(k)] for k in keys])
    for flag in (True, False):
        set_compiled(store, flag)
        result = store.lookup({"key": keys})
        assert result.found.all(), (
            f"{int((~result.found).sum())} misses with compiled={flag}")
        mismatches = int((result.values["value"] != expected).sum())
        assert mismatches == 0, (
            f"{mismatches} wrong values with compiled={flag}")
    set_compiled(store, True)


def balance_ratio(store) -> float:
    counts = np.asarray(store.shard_row_counts(), dtype=np.float64)
    return float(counts.max() / counts.mean())


def run_modify_benchmark(rows: int = 2000, stream: int = 12_000,
                         batch: int = 500, verify_every: int = 4,
                         smoke: bool = False):
    table = synthetic.single_column(rows, "high", seed=1)
    config = bench_config(smoke)

    rebalanced = ShardedDeepMapping.fit(
        table, config,
        ShardingConfig(n_shards=4, strategy="range",
                       lifecycle=lifecycle_config(smoke)))
    baseline = ShardedDeepMapping.fit(
        table, config, ShardingConfig(n_shards=4, strategy="range"))

    truth = {int(k): v for k, v in zip(table.column("key"),
                                       table.column("value"))}
    rng = np.random.default_rng(7)
    base_values = table.column("value")

    # ---- hot-tail insert stream --------------------------------------
    trajectory = []
    insert_seconds = {"baseline": 0.0, "rebalanced": 0.0}
    next_key = int(table.column("key").max()) + 1
    n_batches = stream // batch
    for index in range(n_batches):
        keys = np.arange(next_key, next_key + batch, dtype=np.int64)
        next_key += batch
        values = rng.choice(base_values, size=batch)
        rows_batch = {"key": keys, "value": values}
        for key, value in zip(keys, values):
            truth[int(key)] = value

        start = time.perf_counter()
        rebalanced.insert({k: v.copy() for k, v in rows_batch.items()})
        insert_seconds["rebalanced"] += time.perf_counter() - start

        start = time.perf_counter()
        baseline.insert({k: v.copy() for k, v in rows_batch.items()})
        insert_seconds["baseline"] += time.perf_counter() - start

        trajectory.append({
            "batch": index + 1,
            "rows_total": len(truth),
            "baseline_counts": baseline.shard_row_counts(),
            "rebalanced_counts": rebalanced.shard_row_counts(),
            "baseline_ratio": balance_ratio(baseline),
            "rebalanced_ratio": balance_ratio(rebalanced),
            "splits": rebalanced.engine.n_splits,
            "merges": rebalanced.engine.n_merges,
        })
        if (index + 1) % verify_every == 0:
            verify_lossless(rebalanced, truth)

    verify_lossless(rebalanced, truth)
    verify_lossless(baseline, truth)
    post_stream = {
        "baseline_ratio": balance_ratio(baseline),
        "rebalanced_ratio": balance_ratio(rebalanced),
        "rebalanced_shards": rebalanced.n_shards,
        "splits": rebalanced.engine.n_splits,
    }

    # ---- drain phase: exercise merges --------------------------------
    inserted = np.array(sorted(k for k in truth
                               if k > int(table.column("key").max())),
                        dtype=np.int64)
    drain = inserted[:int(inserted.size * 0.9)]
    rebalanced.delete({"key": drain})
    for key in drain:
        del truth[int(key)]
    verify_lossless(rebalanced, truth)
    post_drain = {
        "rebalanced_ratio": balance_ratio(rebalanced),
        "rebalanced_shards": rebalanced.n_shards,
        "merges": rebalanced.engine.n_merges,
    }

    # ---- model footprint: per-shard sizing vs fixed spec -------------
    final_table = rebalanced.to_table()
    sized_model_bytes = rebalanced.size_report().model_bytes
    fixed = ShardedDeepMapping.fit(
        final_table, config,
        ShardingConfig(n_shards=rebalanced.n_shards, strategy="range"))
    fixed_model_bytes = fixed.size_report().model_bytes
    footprint = {
        "n_shards": rebalanced.n_shards,
        "per_shard_mhas_model_bytes": int(sized_model_bytes),
        "fixed_spec_model_bytes": int(fixed_model_bytes),
        "savings_fraction": 1.0 - sized_model_bytes / fixed_model_bytes,
    }

    report = {
        "benchmark": "modify",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "smoke" if smoke else "full",
        "rows": rows,
        "stream": stream,
        "batch": batch,
        "config": {
            "epochs": config.epochs,
            "shared_sizes": list(config.shared_sizes),
            "private_sizes": list(config.private_sizes),
            "key_headroom_fraction": config.key_headroom_fraction,
        },
        "lifecycle": lifecycle_config(smoke).to_state(),
        "insert_rows_per_second": {
            label: stream / seconds
            for label, seconds in insert_seconds.items()
        },
        "trajectory": trajectory,
        "post_stream": post_stream,
        "post_drain": post_drain,
        "model_footprint": footprint,
        "acceptance": {
            "rebalanced_ratio_bar": REBALANCED_RATIO_BAR,
            "baseline_ratio_bar": BASELINE_RATIO_BAR,
            "rebalanced_ratio": post_stream["rebalanced_ratio"],
            "baseline_ratio": post_stream["baseline_ratio"],
            "splits": post_stream["splits"],
            "merges": post_drain["merges"],
            "model_bytes_strictly_smaller":
                sized_model_bytes < fixed_model_bytes,
            "passed": (
                post_stream["rebalanced_ratio"] <= REBALANCED_RATIO_BAR
                and post_stream["baseline_ratio"] > BASELINE_RATIO_BAR
                and post_stream["splits"] >= 1
                and post_drain["merges"] >= 1
                and sized_model_bytes < fixed_model_bytes
            ),
        },
    }

    sampled = trajectory[:: max(1, len(trajectory) // 8)]
    print(format_table(
        ["batch", "rows", "baseline max/mean", "rebalanced max/mean",
         "shards", "splits", "merges"],
        [[t["batch"], t["rows_total"], t["baseline_ratio"],
          t["rebalanced_ratio"], len(t["rebalanced_counts"]),
          t["splits"], t["merges"]] for t in sampled],
        title=(f"Hot-tail insert stream (base rows={rows}, "
               f"stream={stream}, batch={batch})"),
    ))
    print(f"insert throughput: "
          f"baseline {report['insert_rows_per_second']['baseline']:,.0f} "
          f"rows/s, rebalanced "
          f"{report['insert_rows_per_second']['rebalanced']:,.0f} rows/s")
    print(f"post-drain: {post_drain['rebalanced_shards']} shards after "
          f"{post_drain['merges']} merges "
          f"(ratio {post_drain['rebalanced_ratio']:.2f})")
    print(f"model footprint: per-shard {sized_model_bytes:,} B vs fixed "
          f"{fixed_model_bytes:,} B "
          f"({footprint['savings_fraction']:.0%} smaller)")

    # A smoke run must still exercise the full lifecycle once.
    assert post_stream["splits"] >= 1, "no split performed"
    assert post_drain["merges"] >= 1, "no merge performed"
    if not smoke:
        acceptance = report["acceptance"]
        assert acceptance["passed"], f"acceptance bars missed: {acceptance}"

    for store in (baseline, rebalanced, fixed):
        store.close()
    return report


def write_json(report, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[benchmark JSON saved to {out_path}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config for CI (seconds, not minutes); "
                             "writes under benchmarks/results/ instead of "
                             "the repo root")
    parser.add_argument("--out", default=None,
                        help="override the output JSON path")
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_modify_benchmark(rows=600, stream=1800, batch=300,
                                      verify_every=2, smoke=True)
        out = args.out or os.path.join(RESULTS_DIR,
                                       "BENCH_modify_smoke.json")
    else:
        report = run_modify_benchmark()
        out = args.out or os.path.join(REPO_ROOT, "BENCH_modify.json")
    write_json(report, out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
