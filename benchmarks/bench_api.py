"""Facade/backend overhead micro-benchmark for the unified store API.

The `repro.open()` facade and the pluggable persistence backends must be
free at query time: a store opened through any URL scheme answers the
100k-key lookup batch within 5% of a directly-constructed store (the
facade hands back the same store class — backends only shape *where the
payload lives*, never the read path).  This benchmark measures that
claim, plus what the backends do cost (open latency, stored bytes) and
what ``lookup_async`` adds over synchronous ``lookup`` under each
executor strategy.

Writes ``BENCH_api.json`` at the repo root so the facade-overhead
trajectory is machine-readable from PR to PR; ``docs/api.md`` explains
how to read and refresh it.  Run::

    PYTHONPATH=src python benchmarks/bench_api.py           # full
    PYTHONPATH=src python benchmarks/bench_api.py --smoke   # CI seconds

The full run enforces the acceptance bar: facade+backend lookup overhead
< 5% vs direct calls on the 100k-key, 50%-hit batch.  Smoke mode shrinks
everything, asserts bit-identical results only (tiny batches make
relative timing noise meaningless), and writes its JSON under
``benchmarks/results/`` instead of the repo root.
"""

import argparse
import json
import os
import shutil
import tempfile
import time

import numpy as np

import repro
from repro.bench import format_table
from repro.core import DeepMapping, DeepMappingConfig
from repro.data import synthetic
from repro.store import EXECUTOR_NAMES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

ACCEPTANCE_OVERHEAD = 0.05  # opened-store lookup vs direct, 50%-hit batch


def bench_config(smoke: bool) -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=2 if smoke else 8,
        batch_size=4096,
        shared_sizes=(64,),
        private_sizes=(32,),
        aux_partition_bytes=32 * 1024,
    )


def build_query(table, batch: int, rng):
    """A 50%-hit batch: half live keys, half in-domain gaps."""
    key_name = table.key[0]
    keys = table.column(key_name)
    domain = np.arange(keys.min(), keys.max() + 1, dtype=np.int64)
    absent = np.setdiff1d(domain, keys)
    n_hits = batch // 2
    query = np.concatenate([
        rng.choice(keys, size=n_hits, replace=True),
        rng.choice(absent, size=batch - n_hits, replace=True),
    ])
    rng.shuffle(query)
    return {key_name: query}


def interleaved_best(jobs, runs: int):
    """Best seconds per labelled thunk, passes interleaved.

    One pass runs every job once before any job runs again, so machine
    drift (turbo decay, cache pressure) hits all cells alike instead of
    penalizing whichever store is measured last.
    """
    best = {label: float("inf") for label, _ in jobs}
    for _ in range(runs):
        for label, fn in jobs:
            start = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return best


def assert_identical(result, reference, value_names, label):
    assert np.array_equal(result.found, reference.found), label
    for column in value_names:
        assert np.array_equal(result.values[column],
                              reference.values[column]), (label, column)


def run_api_benchmark(rows: int = 120_000, batch: int = 100_000,
                      runs: int = 5, smoke: bool = False):
    table = synthetic.single_column(rows, "high", seed=1, domain_factor=2.0)
    rng = np.random.default_rng(0)
    query = build_query(table, batch, rng)
    config = bench_config(smoke)
    workdir = tempfile.mkdtemp(prefix="bench-api-")

    direct = DeepMapping.fit(table, config)
    direct.lookup(query)  # warm engines and caches
    reference = direct.lookup(query)

    targets = [
        ("file", os.path.join(workdir, "store.dm")),
        ("mem", "mem://bench-api"),
        ("zip", f"zip://{workdir}/store.zip"),
    ]

    # Open every store up front, verify bit-identical answers, then time
    # all of them (direct included) in interleaved passes.
    opened = {}
    open_seconds = {}
    stored_bytes = {}
    for label, url in targets:
        stored_bytes[label] = direct.save(url)
        start = time.perf_counter()
        store = repro.open(url)
        open_seconds[label] = time.perf_counter() - start
        store.lookup(query)  # warm
        assert_identical(store.lookup(query), reference,
                         store.value_names, label)
        opened[label] = store

    jobs = [("direct", lambda: direct.lookup(query))]
    jobs += [(label, (lambda s=store: s.lookup(query)))
             for label, store in opened.items()]
    best = interleaved_best(jobs, runs)
    direct_seconds = best["direct"]

    backend_results = [{
        "backend": "direct", "seconds": direct_seconds,
        "overhead_vs_direct": 0.0, "open_seconds": None,
        "stored_bytes": None,
    }]
    for label, _url in targets:
        backend_results.append({
            "backend": label,
            "seconds": best[label],
            "overhead_vs_direct": best[label] / direct_seconds - 1.0,
            "open_seconds": open_seconds[label],
            "stored_bytes": stored_bytes[label],
        })

    async_stores = []
    for strategy in EXECUTOR_NAMES:
        store = repro.open("mem://bench-api", executor=strategy)
        assert_identical(store.lookup_async(query).result(), reference,
                         store.value_names, strategy)
        async_stores.append((strategy, store))
    async_best = interleaved_best(
        [(strategy, (lambda s=store: s.lookup_async(query).result()))
         for strategy, store in async_stores], runs)
    async_results = [{
        "strategy": strategy,
        "seconds": async_best[strategy],
        "overhead_vs_sync_direct": async_best[strategy] / direct_seconds - 1.0,
    } for strategy, _ in async_stores]
    for _, store in async_stores:
        store.close()
    for store in opened.values():
        store.close()

    worst = max(r["overhead_vs_direct"] for r in backend_results
                if r["backend"] != "direct")
    report = {
        "benchmark": "api",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "smoke" if smoke else "full",
        "rows": rows,
        "batch": batch,
        "runs": runs,
        "hit_ratio": 0.5,
        "config": {
            "epochs": config.epochs,
            "shared_sizes": list(config.shared_sizes),
            "private_sizes": list(config.private_sizes),
        },
        "backends": backend_results,
        "lookup_async": async_results,
        "acceptance": {
            "metric": "worst opened-store lookup overhead vs direct, "
                      "100k-key 50%-hit batch",
            "target": ACCEPTANCE_OVERHEAD,
            "measured": worst,
            "passed": worst < ACCEPTANCE_OVERHEAD,
        },
    }

    print(format_table(
        ["backend", "best ms", "overhead", "open ms", "stored KB"],
        [[r["backend"], r["seconds"] * 1e3,
          f"{r['overhead_vs_direct']:+.2%}",
          "-" if r["open_seconds"] is None else r["open_seconds"] * 1e3,
          "-" if r["stored_bytes"] is None else r["stored_bytes"] // 1024]
         for r in backend_results],
        title=(f"Lookup through repro.open() vs direct "
               f"(rows={rows}, batch={batch}, best of {runs})"),
    ))
    print()
    print(format_table(
        ["strategy", "best ms", "vs sync direct"],
        [[r["strategy"], r["seconds"] * 1e3,
          f"{r['overhead_vs_sync_direct']:+.2%}"]
         for r in async_results],
        title="lookup_async(...).result() by executor strategy",
    ))

    direct.close()
    shutil.rmtree(workdir, ignore_errors=True)
    return report


def write_json(report, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[benchmark JSON saved to {out_path}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config for CI (results not tracked)")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument("--runs", type=int, default=None)
    args = parser.parse_args()

    if args.smoke:
        defaults = dict(rows=8_000, batch=4_000, runs=2)
        out_path = os.path.join(RESULTS_DIR, "BENCH_api.json")
    else:
        defaults = dict(rows=120_000, batch=100_000, runs=5)
        out_path = os.path.join(REPO_ROOT, "BENCH_api.json")
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)

    report = run_api_benchmark(rows=args.rows, batch=args.batch,
                               runs=args.runs, smoke=args.smoke)
    write_json(report, out_path)

    if not args.smoke and not report["acceptance"]["passed"]:
        print(f"ACCEPTANCE FAILED: overhead "
              f"{report['acceptance']['measured']:+.2%} >= "
              f"{ACCEPTANCE_OVERHEAD:.0%}")
        return 1
    print(f"acceptance: worst facade overhead "
          f"{report['acceptance']['measured']:+.2%} "
          f"(target < {ACCEPTANCE_OVERHEAD:.0%})"
          + (" [informational in smoke mode]" if args.smoke else ""))
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
