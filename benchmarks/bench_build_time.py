"""Paper Sec. V-D "Training Time vs Compression Time".

Builds every representation of the scaled lineitem table once and reports
wall-clock build time alongside the resulting size — the paper's
comparison of DM's expensive search+train against DS encoding and the
plain compressors (zstd: 80s, lzma: 86s, HBC-Z: 82s, DS: 11min, DM: ~1.5h
at full scale).

Expected shape: DM build (search + train) is orders of magnitude slower
than the syntactic compressors; DS sits in between; DM's ratio wins.
"""

import time

import pytest

from repro.bench.runner import build_system, storage_of
from repro.bench import format_table
from repro.core import DeepMapping, DeepMappingConfig
from repro.core.mhas import MHASConfig
from repro.data import tpch

from conftest import write_report

SYSTEMS = ["ABC-Z", "ABC-L", "HBC-Z", "HBC-L", "DS"]


def test_build_time(benchmark):
    table = tpch.generate("lineitem", scale=0.15, seed=11)
    rows = []
    times = {}
    for name in SYSTEMS:
        t0 = time.perf_counter()
        system = build_system(name, table, partition_bytes=16 * 1024)
        elapsed = time.perf_counter() - t0
        times[name] = elapsed
        rows.append([name, elapsed, storage_of(system) / 1024.0])

    config = DeepMappingConfig(
        use_search=True,
        search=MHASConfig(iterations=12, controller_every=3,
                          controller_samples=2, model_epochs=2,
                          model_batch=2048, size_choices=(32, 64, 128)),
        epochs=60, batch_size=2048,
    )
    t0 = time.perf_counter()
    dm = DeepMapping.fit(table, config)
    times["DM-Z (MHAS+train)"] = time.perf_counter() - t0
    rows.append(["DM-Z (MHAS+train)", times["DM-Z (MHAS+train)"],
                 dm.storage_bytes() / 1024.0])

    report = format_table(
        ["system", "build seconds", "storage KB"],
        rows,
        title="Build time vs. compression time (lineitem, scaled; "
              "paper Sec. V-D)",
    )
    write_report("build_time", report)

    # Paper shape: DM construction costs far more than plain compression.
    assert times["DM-Z (MHAS+train)"] > 5 * times["ABC-Z"]

    benchmark.pedantic(
        lambda: dm.lookup({k: table.column(k)[:200] for k in table.key}),
        rounds=3, iterations=1,
    )
