"""Paper Figure 7: end-to-end latency breakdown per TPC-H table.

For the five representations the paper plots (array, hash, array+zstd,
hash+zstd, DeepMapping), lookup time is split into the Figure 7 buckets:
existence check / neural inference / partition locate / in-partition
search / data loading (io + deserialize) / decompression / decode.

Expected shape (paper): for DeepMapping, inference is a minor cost and the
auxiliary lookup dominates; for the compressed baselines, data loading +
decompression dominates; hash stores burn their time in deserialization.
"""

import pytest

from repro.bench import format_breakdown, key_batches, run_comparison
from repro.data import tpch

from conftest import dm_config, write_report

SYSTEMS = ["AB", "HB", "ABC-Z", "HBC-Z", "DM-Z"]
BATCH = 2000


def test_fig7_latency_breakdown(benchmark):
    sections = []
    dm_breakdowns = {}
    for name in tpch.TPCH_TABLES:
        table = tpch.generate(name, scale=0.25, seed=7)
        budget = max(table.uncompressed_bytes() // 3, 32 * 1024)
        results = run_comparison(
            table, systems=SYSTEMS, batch_sizes=[BATCH],
            memory_budget=budget, repeats=2,
            dm_config=dm_config("low"), partition_bytes=8 * 1024,
        )
        lines = [f"Figure 7 [{name}] (B={BATCH}, pool={budget // 1024}KB)"]
        breakdowns = {}
        for result in results:
            lines.append(format_breakdown(f"  {result.system:6s}",
                                          result.breakdown))
            breakdowns[result.system] = result.breakdown
        dm_breakdowns[name] = breakdowns
        sections.append("\n".join(lines))
    write_report("fig7_latency_breakdown", "\n\n".join(sections))

    def loading_seconds(breakdown):
        return sum(breakdown.get(f"{b}_seconds", 0.0)
                   for b in ("io", "decompress", "deserialize"))

    # Paper shape: DeepMapping significantly reduces the data loading +
    # decompression bucket relative to the compressed baselines (its
    # auxiliary structure is a fraction of their partition volume).  Tiny
    # tables where the baseline loads a single sub-millisecond blob are
    # noise-level and skipped.
    for name, breakdowns in dm_breakdowns.items():
        baseline_loading = loading_seconds(breakdowns["HBC-Z"])
        if baseline_loading < 0.001:
            continue
        assert loading_seconds(breakdowns["DM-Z"]) < baseline_loading, name

    table = tpch.generate("orders", scale=0.25, seed=7)
    from repro.bench.runner import build_system

    dm = build_system("DM-Z", table, dm_config=dm_config("low"))
    batch = key_batches(table, BATCH, repeats=1)[0]
    benchmark.pedantic(lambda: dm.lookup(batch), rounds=3, iterations=1)
