"""Miss-pruning + pure-mmap cold-open benchmark (the PR 8 tentpole).

Two claims are tracked:

1. **Router-level miss pruning.** Each shard's manifest entry carries a
   compact negative filter (``core/negative_filter.py``); the sharded
   lookup consults it *before* the (shard, key) sort and shard dispatch,
   so miss keys skip the fan-out entirely.  On a 4-shard store the
   all-miss batch must be **>= 3x** faster than the same store loaded
   with ``negative_filter=False`` (the unpruned baseline), and the
   50%-hit batch must not regress below **0.95x** — with bit-identical
   results on both.  The monolithic all-miss time rides along so the
   sharded-vs-monolithic miss gap (5.2x at PR 6) is tracked as it
   closes.
2. **Pure-mmap cold opens.** The ``session_v2`` / ``exist_v2`` payload
   keys export model weights and existence bits as first-class
   out-of-band container segments.  A cold ``writable=False`` open of
   the new format must be **>= 1.5x** faster than the same store
   written in the legacy nested-pickled-bytes layout, and the opened
   shards' weight / exist-bit arrays must be read-only views into the
   payload mapping — zero bytes copied.

Also gated: filter cost in the manifest stays **<= 2 bytes per stored
key** (manifest.json with filters vs without, divided by rows).

Writes ``BENCH_prune.json`` at the repo root (the tracked trajectory);
``docs/performance.md`` explains how to read it.  Run::

    PYTHONPATH=src python benchmarks/bench_prune.py           # full
    PYTHONPATH=src python benchmarks/bench_prune.py --smoke   # CI

Smoke mode shrinks the build to CI seconds, still asserts parity and
copy-freedom everywhere, and gates on (a) the pruned all-miss path not
losing to the unpruned baseline and (b) zero-copy cold opens; the full
3x / 1.5x bars are tracked in the repo-root JSON.  Smoke JSON goes
under ``benchmarks/results/``.
"""

import argparse
import json
import os
import shutil
import tempfile
import time

import numpy as np

import repro
from repro.bench import format_table
from repro.core import DeepMappingConfig
from repro.data import synthetic
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.storage import payload_cache
from repro.storage.backends import LocalDirBackend

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

ACCEPTANCE_ALL_MISS_SPEEDUP = 3.0   # pruned vs unpruned, all-miss batch
ACCEPTANCE_HIT50_FLOOR = 0.95       # pruned vs unpruned, 50%-hit batch
ACCEPTANCE_COLD_OPEN_SPEEDUP = 1.5  # v2 payload vs legacy, cold RO open
ACCEPTANCE_MANIFEST_BYTES_PER_KEY = 2.0
SMOKE_ALL_MISS_FLOOR = 1.0          # CI gate: pruning must not lose


def bench_config(smoke: bool) -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=2 if smoke else 8,
        batch_size=4096,
        shared_sizes=(64,),
        private_sizes=(32,),
        aux_partition_bytes=32 * 1024,
    )


def cold_open_config(smoke: bool) -> DeepMappingConfig:
    """The cold-open store wants *big weight arrays*, not a good model:
    the claim under test is deserialization cost, so training is one
    epoch and the layers are sized to make the payload weight-heavy."""
    return DeepMappingConfig(
        epochs=1,
        batch_size=4096,
        shared_sizes=(64,) if smoke else (512, 256),
        private_sizes=(32,) if smoke else (64,),
        aux_partition_bytes=32 * 1024,
    )


def build_queries(table, batch: int, rng):
    """All-miss and 50%-hit batches; misses are in-domain gap keys (the
    ``domain_factor`` holes), so the filters — not domain validation —
    must reject them."""
    key_name = table.key[0]
    keys = table.column(key_name)
    domain = np.arange(keys.min(), keys.max() + 1, dtype=np.int64)
    absent = np.setdiff1d(domain, keys)
    all_miss = rng.choice(absent, size=batch, replace=True)
    half = np.concatenate([
        rng.choice(keys, size=batch // 2, replace=True),
        rng.choice(absent, size=batch - batch // 2, replace=True),
    ])
    rng.shuffle(half)
    return {key_name: all_miss}, {key_name: half}


def interleaved_best(jobs, runs: int):
    """Best seconds per labelled thunk, passes interleaved (drift-fair)."""
    best = {label: float("inf") for label, _ in jobs}
    for _ in range(runs):
        for label, fn in jobs:
            start = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return best


def assert_identical(result, reference, value_names, label):
    assert np.array_equal(result.found, reference.found), label
    for column in value_names:
        assert np.array_equal(result.values[column],
                              reference.values[column]), (label, column)


# ----------------------------------------------------------------------
# Claim 1: router-level miss pruning
# ----------------------------------------------------------------------
def run_pruning_section(table, batch: int, shards: int, runs: int,
                        workdir: str, smoke: bool):
    config = bench_config(smoke)
    store = ShardedDeepMapping.fit(
        table, config, ShardingConfig(n_shards=shards, strategy="range"))
    url = os.path.join(workdir, "store")
    store.save(url)
    monolithic = repro.build(table, config)

    pruned = ShardedDeepMapping.load(url)
    unpruned = ShardedDeepMapping.load(url, negative_filter=False)
    assert any(f is not None for f in pruned.filters), "filters not loaded"
    assert all(f is None for f in unpruned.filters), "baseline has filters"

    rng = np.random.default_rng(0)
    all_miss, half = build_queries(table, batch, rng)

    # Parity before any timing: the pruned path must be bit-identical to
    # the unpruned one on both batches (and to the barrier reference).
    for label, query in (("all-miss", all_miss), ("50%-hit", half)):
        reference = unpruned.lookup_barrier(query)
        assert_identical(pruned.lookup(query), reference,
                         pruned.value_names, f"pruned {label}")
        assert_identical(unpruned.lookup(query), reference,
                         pruned.value_names, f"unpruned {label}")

    best = interleaved_best([
        ("miss_pruned", lambda: pruned.lookup(all_miss)),
        ("miss_unpruned", lambda: unpruned.lookup(all_miss)),
        ("miss_monolithic", lambda: monolithic.lookup(all_miss)),
        ("half_pruned", lambda: pruned.lookup(half)),
        ("half_unpruned", lambda: unpruned.lookup(half)),
    ], runs)

    pruned.stats.counters.pop("pruned_keys", None)
    result = pruned.lookup(all_miss)
    assert int(result.found.sum()) == 0, "all-miss batch found keys"
    pruned_keys = int(pruned.stats.counters.get("pruned_keys", 0))

    # Manifest cost of the filter tier: same store saved with and
    # without filters, manifest.json delta per stored key.
    url_bare = os.path.join(workdir, "store-nofilter")
    unpruned.save(url_bare)
    with_filters = os.path.getsize(os.path.join(url, "manifest.json"))
    without = os.path.getsize(os.path.join(url_bare, "manifest.json"))
    bytes_per_key = (with_filters - without) / len(table)

    section = {
        "rows": len(table),
        "batch": batch,
        "shards": shards,
        "all_miss": {
            "pruned_seconds": best["miss_pruned"],
            "unpruned_seconds": best["miss_unpruned"],
            "monolithic_seconds": best["miss_monolithic"],
            "speedup": best["miss_unpruned"] / best["miss_pruned"],
            # The gap this tier closes: sharded all-miss time relative
            # to the monolithic store's (1.0 = parity; 5.2x at PR 6).
            "sharded_vs_monolithic": (best["miss_pruned"]
                                      / best["miss_monolithic"]),
            "unpruned_vs_monolithic": (best["miss_unpruned"]
                                       / best["miss_monolithic"]),
        },
        "hit50": {
            "pruned_seconds": best["half_pruned"],
            "unpruned_seconds": best["half_unpruned"],
            "ratio": best["half_unpruned"] / best["half_pruned"],
        },
        "pruned_keys_all_miss": pruned_keys,
        "prune_coverage": pruned_keys / batch,
        "manifest": {
            "with_filters_bytes": with_filters,
            "without_filters_bytes": without,
            "filter_bytes_per_key": bytes_per_key,
        },
    }
    store.close()
    pruned.close()
    unpruned.close()
    return section


# ----------------------------------------------------------------------
# Claim 2: pure-mmap cold opens (v2 payload vs legacy nested bytes)
# ----------------------------------------------------------------------
def write_legacy_copy(store, new_url: str, legacy_url: str) -> None:
    """Clone a saved store, rewriting every shard blob in the legacy
    nested-pickled-bytes payload layout (the pre-v2 format)."""
    shutil.copytree(new_url, legacy_url)
    backend = LocalDirBackend(legacy_url)
    for ordinal, shard in enumerate(store.shards):
        if shard is None:
            continue
        backend.write_bytes(f"shard-{ordinal:04d}.dm",
                            shard._to_payload_legacy())


def assert_zero_copy(opened) -> int:
    """Every live shard's weights and exist bits must be read-only views
    into the shard's payload mapping.  Returns bytes verified shared."""
    verified = 0
    for ordinal, shard in enumerate(opened.shards):
        if shard is None:
            continue
        bundle = shard._shared_bundle
        base = np.frombuffer(bundle["payload_view"], dtype=np.uint8)
        exist = shard.exist
        arrays = [w for layer in shard.session._shared for w in layer]
        arrays += [w for chain in shard.session._heads.values()
                   for layer in chain for w in layer]
        if hasattr(exist, "_bits"):          # dense index
            arrays.append(exist._bits.packed)
        else:                                 # sparse index
            arrays.append(exist._keys)
        for arr in arrays:
            arr = np.asarray(arr)
            assert not arr.flags.writeable, (
                f"shard {ordinal}: writable array in read-only open")
            assert np.shares_memory(base, arr), (
                f"shard {ordinal}: array copied out of the payload view")
            verified += arr.nbytes
    return verified


def run_cold_open_section(rows: int, shards: int, runs: int,
                          workdir: str, smoke: bool):
    table = synthetic.single_column(rows, "high", seed=3, domain_factor=8.0)
    store = ShardedDeepMapping.fit(
        table, cold_open_config(smoke),
        ShardingConfig(n_shards=shards, strategy="range"))
    new_url = os.path.join(workdir, "cold-new")
    legacy_url = os.path.join(workdir, "cold-legacy")
    store.save(new_url)
    write_legacy_copy(store, new_url, legacy_url)

    rng = np.random.default_rng(1)
    query, _ = build_queries(table, min(rows, 10_000), rng)
    reference = store.lookup_barrier(query)

    def cold_open(url):
        payload_cache().clear()  # every timed open pays the cold path
        opened = repro.open(url, writable=False)
        return opened

    # Parity + copy-freedom once, outside the timers.
    opened_new = cold_open(new_url)
    opened_legacy = cold_open(legacy_url)
    assert_identical(opened_new.lookup(query), reference,
                     store.value_names, "v2 cold open")
    assert_identical(opened_legacy.lookup(query), reference,
                     store.value_names, "legacy cold open")
    shared_bytes = assert_zero_copy(opened_new)
    opened_new.close()
    opened_legacy.close()

    best = interleaved_best([
        ("cold_v2", lambda: cold_open(new_url).close()),
        ("cold_legacy", lambda: cold_open(legacy_url).close()),
    ], runs)
    payload_cache().clear()

    payload_bytes = sum(
        os.path.getsize(os.path.join(new_url, name))
        for name in os.listdir(new_url) if name.endswith(".dm"))
    section = {
        "rows": rows,
        "shards": shards,
        "payload_bytes": payload_bytes,
        "cold_v2_seconds": best["cold_v2"],
        "cold_legacy_seconds": best["cold_legacy"],
        "speedup": best["cold_legacy"] / best["cold_v2"],
        "zero_copy": True,       # assert_zero_copy raised otherwise
        "zero_copy_bytes_verified": shared_bytes,
    }
    store.close()
    return section


def run_prune_benchmark(rows: int, batch: int, shards: int, runs: int,
                        cold_rows: int, smoke: bool):
    table = synthetic.single_column(rows, "high", seed=1, domain_factor=2.0)
    workdir = tempfile.mkdtemp(prefix="bench-prune-")
    try:
        pruning = run_pruning_section(table, batch, shards, runs,
                                      workdir, smoke)
        cold = run_cold_open_section(cold_rows, shards, runs,
                                     workdir, smoke)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    all_miss_speedup = pruning["all_miss"]["speedup"]
    hit50_ratio = pruning["hit50"]["ratio"]
    bytes_per_key = pruning["manifest"]["filter_bytes_per_key"]
    cold_speedup = cold["speedup"]

    report = {
        "benchmark": "prune",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "smoke" if smoke else "full",
        "pruning": pruning,
        "cold_open": cold,
        "acceptance": {
            "metric": ("manifest-filter miss pruning and pure-mmap "
                       "cold opens on a 4-shard store"),
            "all_miss_target": ACCEPTANCE_ALL_MISS_SPEEDUP,
            "all_miss_measured": all_miss_speedup,
            "hit50_floor": ACCEPTANCE_HIT50_FLOOR,
            "hit50_measured": hit50_ratio,
            "manifest_bytes_per_key_limit": ACCEPTANCE_MANIFEST_BYTES_PER_KEY,
            "manifest_bytes_per_key_measured": bytes_per_key,
            "cold_open_target": ACCEPTANCE_COLD_OPEN_SPEEDUP,
            "cold_open_measured": cold_speedup,
            "zero_copy": cold["zero_copy"],
            "passed": (all_miss_speedup >= ACCEPTANCE_ALL_MISS_SPEEDUP
                       and hit50_ratio >= ACCEPTANCE_HIT50_FLOOR
                       and bytes_per_key <= ACCEPTANCE_MANIFEST_BYTES_PER_KEY
                       and cold_speedup >= ACCEPTANCE_COLD_OPEN_SPEEDUP
                       and cold["zero_copy"]),
        },
    }

    ms = 1e3
    print(format_table(
        ["batch", "pruned ms", "unpruned ms", "monolithic ms", "speedup"],
        [["all-miss", f"{pruning['all_miss']['pruned_seconds'] * ms:.2f}",
          f"{pruning['all_miss']['unpruned_seconds'] * ms:.2f}",
          f"{pruning['all_miss']['monolithic_seconds'] * ms:.2f}",
          f"{all_miss_speedup:.2f}x"],
         ["50%-hit", f"{pruning['hit50']['pruned_seconds'] * ms:.2f}",
          f"{pruning['hit50']['unpruned_seconds'] * ms:.2f}", "-",
          f"{hit50_ratio:.2f}x"]],
        title=(f"Manifest-filter pruning (rows={rows}, batch={batch}, "
               f"shards={shards})"),
    ))
    print(f"prune coverage on the all-miss batch: "
          f"{pruning['prune_coverage']:.1%} "
          f"({pruning['pruned_keys_all_miss']} of {batch} keys); "
          f"filter cost {bytes_per_key:.2f} bytes/key "
          f"(limit {ACCEPTANCE_MANIFEST_BYTES_PER_KEY:.0f})")
    print(f"sharded all-miss vs monolithic: "
          f"{pruning['all_miss']['sharded_vs_monolithic']:.2f}x slower "
          f"pruned, {pruning['all_miss']['unpruned_vs_monolithic']:.2f}x "
          f"unpruned")
    print(f"cold read-only open: v2 {cold['cold_v2_seconds'] * ms:.1f} ms "
          f"vs legacy {cold['cold_legacy_seconds'] * ms:.1f} ms "
          f"({cold_speedup:.2f}x, target "
          f"{ACCEPTANCE_COLD_OPEN_SPEEDUP:.1f}x); "
          f"{cold['zero_copy_bytes_verified']} bytes verified zero-copy")
    return report


def write_json(report, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[benchmark JSON saved to {out_path}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI config (results not tracked)")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--runs", type=int, default=None)
    parser.add_argument("--cold-rows", type=int, default=None)
    args = parser.parse_args()

    if args.smoke:
        defaults = dict(rows=6_000, batch=4_000, runs=3, cold_rows=4_000)
        out_path = os.path.join(RESULTS_DIR, "BENCH_prune.json")
    else:
        defaults = dict(rows=120_000, batch=100_000, runs=7,
                        cold_rows=60_000)
        out_path = os.path.join(REPO_ROOT, "BENCH_prune.json")
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)

    report = run_prune_benchmark(rows=args.rows, batch=args.batch,
                                 shards=args.shards, runs=args.runs,
                                 cold_rows=args.cold_rows, smoke=args.smoke)
    write_json(report, out_path)

    acc = report["acceptance"]
    if args.smoke:
        # CI regression gate: the pruned all-miss path must not lose to
        # the unpruned baseline (the 3x bar needs full-size batches) and
        # cold opens must stay copy-free; full acceptance is tracked in
        # BENCH_prune.json at the repo root.
        if acc["all_miss_measured"] < SMOKE_ALL_MISS_FLOOR:
            print(f"SMOKE GATE FAILED: pruned all-miss "
                  f"{acc['all_miss_measured']:.2f}x unpruned "
                  f"(floor {SMOKE_ALL_MISS_FLOOR:.2f})")
            return 1
        if not acc["zero_copy"]:
            print("SMOKE GATE FAILED: cold open copied payload bytes")
            return 1
        print(f"smoke gate: pruned all-miss {acc['all_miss_measured']:.2f}x "
              f"unpruned (floor {SMOKE_ALL_MISS_FLOOR:.2f}), cold open "
              "zero-copy — full acceptance tracked in BENCH_prune.json")
        return 0
    if not acc["passed"]:
        print(f"ACCEPTANCE FAILED: all-miss {acc['all_miss_measured']:.2f}x "
              f"(target {acc['all_miss_target']}x), 50%-hit "
              f"{acc['hit50_measured']:.2f}x (floor {acc['hit50_floor']}), "
              f"manifest {acc['manifest_bytes_per_key_measured']:.2f} B/key "
              f"(limit {acc['manifest_bytes_per_key_limit']}), cold open "
              f"{acc['cold_open_measured']:.2f}x "
              f"(target {acc['cold_open_target']}x)")
        return 1
    print(f"acceptance: all-miss {acc['all_miss_measured']:.2f}x unpruned "
          f"(target >= {acc['all_miss_target']}x), 50%-hit "
          f"{acc['hit50_measured']:.2f}x (floor {acc['hit50_floor']}), "
          f"manifest {acc['manifest_bytes_per_key_measured']:.2f} B/key, "
          f"cold open {acc['cold_open_measured']:.2f}x legacy, zero-copy")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
