"""Paper Figure 6: DeepMapping storage breakdown per TPC-H table.

For each table: the percentage of the hybrid structure taken by the
existence vector / model / auxiliary table, plus the share of tuples the
model memorizes vs. those parked in T_aux.

Expected shape (paper, SF=1): the auxiliary table holds the bulk of the
bytes (75–98%), the model is small, yet it memorizes the majority of
tuples (55–88%) — the observation that justifies optimizing the *total*
hybrid size instead of forcing a perfect model.
"""

import pytest

from repro.bench import format_table, key_batches
from repro.bench.runner import build_system
from repro.data import tpch

from conftest import dm_config, write_report

# Long training with a wider net, mirroring the paper's train-to-
# convergence regime: the memorized-tuple share is the figure's headline.
# (At 1/100 scale the model's fixed bytes amortize worse than at SF=1/10,
# so the model% of storage runs higher than the paper's — EXPERIMENTS.md
# discusses the deviation.)
CFG = dict(epochs=200, batch_size=128, shared_sizes=(128,),
           private_sizes=(64,), tol=1e-6)


def test_fig6_storage_breakdown(benchmark):
    rows = []
    mappings = {}
    for name in tpch.TPCH_TABLES:
        table = tpch.generate(name, scale=0.25, seed=6)
        dm = build_system("DM-Z", table, dm_config=dm_config("low", **CFG),
                          partition_bytes=16 * 1024)
        mappings[name] = (dm, table)
        report = dm.size_report()
        pct = report.breakdown()
        rows.append([
            name,
            pct["exist_vector"],
            pct["model"],
            pct["aux_table"],
            100.0 * report.memorized_fraction,
            100.0 * (1 - report.memorized_fraction),
            report.total_bytes / 1024.0,
        ])
    report_text = format_table(
        ["table", "exist %", "model %", "aux %", "memorized %",
         "in aux %", "total KB"],
        rows,
        title="Figure 6: DeepMapping storage breakdown (TPC-H, scaled)",
    )
    write_report("fig6_storage_breakdown", report_text)

    by_table = {r[0]: r for r in rows}
    # Paper shape: the auxiliary table takes a large share of the bytes on
    # the noisiest fact table, yet the model memorizes a majority of
    # tuples on the structured ones.
    assert by_table["lineitem"][3] > 25.0          # aux carries real weight
    assert any(r[4] > 50.0 for r in rows)          # >50% memorized somewhere
    assert all(r[1] < 20.0 for r in rows)          # V_exist stays small

    dm, table = mappings["orders"]
    batch = key_batches(table, 1000, repeats=1)[0]
    benchmark.pedantic(lambda: dm.lookup(batch), rounds=3, iterations=1)
