"""Shared fixtures and helpers for the benchmark suite.

Every benchmark prints (and writes under ``benchmarks/results/``) the rows
or series of the corresponding paper table/figure, at laptop scale.  The
pytest-benchmark fixture times each experiment's core DeepMapping
operation; the printed reports carry the full cross-system comparison.
"""

import os

import pytest

from repro.core import DeepMappingConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, text: str) -> None:
    """Print a paper-style report and persist it under benchmarks/results."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[report saved to {path}]")


def dm_config(correlation: str = "low", **overrides) -> DeepMappingConfig:
    """Benchmark DeepMapping configs.

    High-correlation data earns long training (the model memorizes nearly
    everything, paper Sec. V-B); low-correlation data converges to "mostly
    auxiliary" quickly, so training is kept short.
    """
    defaults = dict(
        epochs=150 if correlation == "high" else 30,
        batch_size=1024,
        shared_sizes=(64,),
        private_sizes=(32,),
        learning_rate=0.003,
        aux_partition_bytes=32 * 1024,
    )
    defaults.update(overrides)
    return DeepMappingConfig(**defaults)


def cd_config(**overrides) -> DeepMappingConfig:
    """Config for TPC-DS customer_demographics: the cross-product table is
    fully learnable once the key encoding exposes residues modulo the
    dimension radices (the multi-base extension; see KeyEncoder)."""
    defaults = dict(
        key_base=(10, 7, 4),
        epochs=250,
        batch_size=256,
        shared_sizes=(48,),
        private_sizes=(24,),
        learning_rate=0.003,
        tol=1e-6,
        aux_partition_bytes=32 * 1024,
    )
    defaults.update(overrides)
    return DeepMappingConfig(**defaults)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
