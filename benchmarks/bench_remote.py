"""Remote lazy-hydration benchmark (the PR 9 tentpole).

Three claims are tracked, all against an in-process loopback range
server (``repro.testing.range_server``) so the numbers measure the
*read path* — request counts and bytes moved — rather than a network:

1. **Cold-open economy.** Opening a sharded store over ``http://``
   downloads only the manifest (router + filters + prune metadata) and
   the config blob.  The cold-open download must stay a small fraction
   of the store's total bytes, and zero shard payload blobs may be
   touched.
2. **Skewed-workload hydration.** A workload routed into 2 of N shards
   hydrates only those shards: total bytes downloaded (open included)
   must be **<= 40%** of the store's on-disk size, with results
   bit-identical to the same store opened locally.
3. **Warm cached reopens.** With the ``cached+http://`` disk tier
   populated, a reopen revalidates with HEADs and serves every blob
   from the local cache — zero GETs — and a full open-plus-fanout-probe
   cycle must cost **<= 1.5x** the same cycle against the local
   directory's pure-mmap ``writable=False`` open.

Bit-identity is also asserted under injected 5xx range faults (the
resilience wrapper's retries must be invisible to results).

Writes ``BENCH_remote.json`` at the repo root (the tracked trajectory);
``docs/remote.md`` explains how to read it.  Run::

    PYTHONPATH=src python benchmarks/bench_remote.py           # full
    PYTHONPATH=src python benchmarks/bench_remote.py --smoke   # CI

Smoke mode shrinks the build to CI seconds and keeps the byte-fraction
gates (they are size-independent); the warm-reopen latency bar is
relaxed to absorb CI jitter, with the full 1.5x bar tracked in the
repo-root JSON.  Smoke JSON goes under ``benchmarks/results/``.
"""

import argparse
import json
import os
import shutil
import tempfile
import time

import numpy as np

import repro
from repro.bench import format_table
from repro.core import DeepMappingConfig
from repro.data import synthetic
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.storage import configure_hydration_cache, payload_cache
from repro.storage.backends import LocalDirBackend
from repro.storage.remote import _cache_config
from repro.testing import serve_backend

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

ACCEPTANCE_SKEW_BYTES_FRACTION = 0.40   # downloaded / store bytes, 2-of-N
ACCEPTANCE_WARM_REOPEN_RATIO = 1.5      # cached+http vs local mmap cycle
SMOKE_WARM_REOPEN_RATIO = 3.0           # CI bar: absorbs loopback jitter


def bench_config(smoke: bool) -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=2 if smoke else 6,
        batch_size=4096,
        shared_sizes=(64,) if smoke else (128, 64),
        private_sizes=(32,),
        aux_partition_bytes=32 * 1024,
    )


def interleaved_best(jobs, runs: int):
    """Best seconds per labelled thunk, passes interleaved (drift-fair)."""
    best = {label: float("inf") for label, _ in jobs}
    for _ in range(runs):
        for label, fn in jobs:
            start = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return best


def assert_identical(result, reference, value_names, label):
    assert np.array_equal(result.found, reference.found), label
    for column in value_names:
        assert np.array_equal(result.values[column],
                              reference.values[column]), (label, column)


def store_bytes(url: str) -> int:
    return sum(os.path.getsize(os.path.join(url, name))
               for name in os.listdir(url))


def shard_payload_bytes(url: str) -> int:
    return sum(os.path.getsize(os.path.join(url, name))
               for name in os.listdir(url) if name.endswith(".dm"))


def build_queries(table, shards: int, batch: int, rng):
    """A full-fanout batch and a skewed batch routed into ~2 of
    ``shards`` range shards (the lowest quarter of the key space)."""
    key_name = table.key[0]
    keys = np.sort(table.column(key_name))
    full = {key_name: rng.choice(keys, size=batch, replace=True)}
    low = keys[:max(1, (len(keys) * 2) // shards)]
    skew = {key_name: rng.choice(low, size=batch, replace=True)}
    return full, skew


def run_remote_benchmark(rows: int, batch: int, shards: int, runs: int,
                         smoke: bool):
    table = synthetic.single_column(rows, "high", seed=4, domain_factor=2.0)
    workdir = tempfile.mkdtemp(prefix="bench-remote-")
    previous_cache = dict(_cache_config)
    configure_hydration_cache(root=os.path.join(workdir, "cache"))
    try:
        report = _run(table, batch, shards, runs, workdir, smoke)
    finally:
        _cache_config.clear()
        _cache_config.update(previous_cache)
        payload_cache().clear()
        shutil.rmtree(workdir, ignore_errors=True)
    return report


def _run(table, batch: int, shards: int, runs: int, workdir: str,
         smoke: bool):
    store = ShardedDeepMapping.fit(
        table, bench_config(smoke),
        ShardingConfig(n_shards=shards, strategy="range"))
    url = os.path.join(workdir, "store")
    store.save(url)
    total_bytes = store_bytes(url)
    payload_bytes = shard_payload_bytes(url)

    rng = np.random.default_rng(0)
    full, skew = build_queries(table, shards, batch, rng)
    reference_full = store.lookup_barrier(full)
    reference_skew = store.lookup_barrier(skew)
    store.close()

    backend = LocalDirBackend(url, create=False)
    with serve_backend(backend) as server:
        # -- claim 1: cold-open economy --------------------------------
        payload_cache().clear()
        opened = repro.open(server.url)
        cold_bytes = int(opened.stats.counters.get("hydrated_bytes", 0))
        cold_shard_blobs = [name for name in server.blobs_fetched()
                            if name.endswith(".dm")]
        assert cold_shard_blobs == [], (
            f"cold open fetched shard payloads: {cold_shard_blobs}")

        # -- claim 2: skewed-workload hydration ------------------------
        result = opened.lookup(skew)
        assert_identical(result, reference_skew, opened.value_names,
                         "remote skewed")
        skew_bytes = int(opened.stats.counters.get("hydrated_bytes", 0))
        hydrated = int(opened.stats.counters.get("hydrated_shards", 0))
        opened.close()

        # Full-fanout parity on a fresh open (also prewarms the disk
        # cache tier for claim 3).
        payload_cache().clear()
        cached_url = "cached+" + server.url
        warm = repro.open(cached_url)
        assert_identical(warm.lookup(full), reference_full,
                         warm.value_names, "remote full fanout")
        warm.close()

        # -- claim 3: warm cached reopen vs local mmap -----------------
        def cycle(target):
            payload_cache().clear()
            opened = repro.open(target, writable=False)
            opened.lookup(full)
            opened.close()

        best = interleaved_best([
            ("local_mmap", lambda: cycle(url)),
            ("cached_warm", lambda: cycle(cached_url)),
        ], runs)

        payload_cache().clear()
        server.reset_requests()
        revalidated = repro.open(cached_url)
        assert_identical(revalidated.lookup(full), reference_full,
                         revalidated.value_names, "warm cached reopen")
        warm_gets = server.request_count(method="GET")
        warm_heads = server.request_count(method="HEAD")
        revalidated.close()
        assert warm_gets == 0, (
            f"warm cached reopen issued {warm_gets} GETs")

        # -- chaos: injected faults stay bit-identical -----------------
        payload_cache().clear()
        server.fail_next(2, status=503)
        chaotic = repro.open(server.url)
        assert_identical(chaotic.lookup(skew), reference_skew,
                         chaotic.value_names, "chaos skewed")
        faults_served = sum(1 for r in server.requests if r.status == 503)
        assert faults_served == 2
        chaotic.close()

    payload_cache().clear()
    skew_fraction = skew_bytes / total_bytes
    warm_ratio = best["cached_warm"] / best["local_mmap"]

    report = {
        "benchmark": "remote",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "smoke" if smoke else "full",
        "rows": len(table),
        "batch": batch,
        "shards": shards,
        "store_bytes": total_bytes,
        "shard_payload_bytes": payload_bytes,
        "cold_open": {
            "downloaded_bytes": cold_bytes,
            "fraction_of_store": cold_bytes / total_bytes,
            "shard_blobs_fetched": 0,
        },
        "skewed_workload": {
            "downloaded_bytes": skew_bytes,
            "fraction_of_store": skew_fraction,
            "shards_hydrated": hydrated,
            "shards_total": shards,
        },
        "warm_reopen": {
            "cached_seconds": best["cached_warm"],
            "local_mmap_seconds": best["local_mmap"],
            "ratio": warm_ratio,
            "revalidation_gets": warm_gets,
            "revalidation_heads": warm_heads,
        },
        "chaos": {"faults_injected": 2, "bit_identical": True},
        "acceptance": {
            "metric": ("lazy hydration over HTTP: skewed-workload bytes "
                       "and warm cached-reopen latency"),
            "skew_fraction_limit": ACCEPTANCE_SKEW_BYTES_FRACTION,
            "skew_fraction_measured": skew_fraction,
            "warm_ratio_limit": ACCEPTANCE_WARM_REOPEN_RATIO,
            "warm_ratio_measured": warm_ratio,
            "warm_reopen_gets": warm_gets,
            "passed": (skew_fraction <= ACCEPTANCE_SKEW_BYTES_FRACTION
                       and warm_ratio <= ACCEPTANCE_WARM_REOPEN_RATIO
                       and warm_gets == 0),
        },
    }

    kib = 1 / 1024
    print(format_table(
        ["phase", "downloaded KiB", "store KiB", "fraction"],
        [["cold open", f"{cold_bytes * kib:.1f}",
          f"{total_bytes * kib:.1f}", f"{cold_bytes / total_bytes:.1%}"],
         ["skewed (2-of-%d)" % shards, f"{skew_bytes * kib:.1f}",
          f"{total_bytes * kib:.1f}", f"{skew_fraction:.1%}"]],
        title=(f"Remote hydration economy (rows={len(table)}, "
               f"shards={shards}, batch={batch})"),
    ))
    ms = 1e3
    print(f"warm cached reopen: {best['cached_warm'] * ms:.1f} ms vs local "
          f"mmap {best['local_mmap'] * ms:.1f} ms ({warm_ratio:.2f}x, "
          f"target <= {ACCEPTANCE_WARM_REOPEN_RATIO:.1f}x); revalidation "
          f"{warm_heads} HEADs, {warm_gets} GETs")
    print(f"skewed workload hydrated {hydrated} of {shards} shards; "
          f"chaos run (2x 503) bit-identical")
    return report


def write_json(report, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[benchmark JSON saved to {out_path}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI config (results not tracked)")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--runs", type=int, default=None)
    args = parser.parse_args()

    if args.smoke:
        defaults = dict(rows=6_000, batch=2_000, shards=8, runs=3)
        out_path = os.path.join(RESULTS_DIR, "BENCH_remote.json")
    else:
        defaults = dict(rows=100_000, batch=20_000, shards=8, runs=5)
        out_path = os.path.join(REPO_ROOT, "BENCH_remote.json")
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)

    report = run_remote_benchmark(rows=args.rows, batch=args.batch,
                                  shards=args.shards, runs=args.runs,
                                  smoke=args.smoke)
    write_json(report, out_path)

    acc = report["acceptance"]
    warm_limit = SMOKE_WARM_REOPEN_RATIO if args.smoke \
        else ACCEPTANCE_WARM_REOPEN_RATIO
    if acc["skew_fraction_measured"] > acc["skew_fraction_limit"]:
        print(f"{'SMOKE ' if args.smoke else ''}GATE FAILED: skewed "
              f"workload downloaded {acc['skew_fraction_measured']:.1%} "
              f"of the store (limit {acc['skew_fraction_limit']:.0%})")
        return 1
    if acc["warm_ratio_measured"] > warm_limit:
        print(f"{'SMOKE ' if args.smoke else ''}GATE FAILED: warm cached "
              f"reopen {acc['warm_ratio_measured']:.2f}x local mmap "
              f"(limit {warm_limit:.1f}x)")
        return 1
    if acc["warm_reopen_gets"] != 0:
        print("GATE FAILED: warm cached reopen downloaded blob bytes")
        return 1
    print(f"{'smoke ' if args.smoke else ''}gate: skewed workload "
          f"{acc['skew_fraction_measured']:.1%} of store bytes (limit "
          f"{acc['skew_fraction_limit']:.0%}), warm cached reopen "
          f"{acc['warm_ratio_measured']:.2f}x local mmap (limit "
          f"{warm_limit:.1f}x), zero warm GETs")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
