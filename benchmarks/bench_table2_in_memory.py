"""Paper Table II: storage + latency when the dataset fits the memory pool.

Workloads: TPC-H orders/part and TPC-DS catalog_sales /
customer_demographics / catalog_returns.  Three machine tiers are modelled
as pool budgets: "small" (half the raw array size — some faulting),
"medium" (2x raw) and "large" (unbounded).

Expected shape (paper): DeepMapping still wins storage everywhere, with
customer_demographics compressing spectacularly (the cross-product table);
lookup latency is competitive rather than dominant because data loading no
longer bottlenecks; uncompressed baselines can win pure speed.
"""

import pytest

from repro.bench import format_storage_latency_table, key_batches, run_comparison
from repro.data import tpcds, tpch

from conftest import cd_config, dm_config, write_report

SYSTEMS = ["AB", "HB", "ABC-D", "ABC-G", "ABC-Z", "ABC-L",
           "HBC-Z", "HBC-L", "DS", "DM-Z", "DM-L"]
BATCH = [5000]  # scaled from the paper's B=100,000


def _workloads():
    return {
        "orders": (tpch.generate("orders", scale=0.5, seed=2), "low"),
        "part": (tpch.generate("part", scale=1.0, seed=2), "low"),
        "catalog_sales": (tpcds.generate("catalog_sales", scale=0.4, seed=2),
                          "low"),
        "customer_demographics": (
            tpcds.generate("customer_demographics", scale=0.4, seed=2), "high"),
        "catalog_returns": (tpcds.generate("catalog_returns", scale=1.0,
                                           seed=2), "low"),
    }


def _tiers(table):
    raw = table.uncompressed_bytes()
    return {
        "small": max(raw // 2, 64 * 1024),
        "medium": raw * 2,
        "large": None,
    }


@pytest.mark.parametrize("workload", list(_workloads()))
def test_table2(benchmark, workload):
    table, correlation = _workloads()[workload]
    config = (cd_config() if workload == "customer_demographics"
              else dm_config(correlation))
    sections = []
    final_results = None
    for tier, budget in _tiers(table).items():
        results = run_comparison(
            table,
            systems=SYSTEMS,
            batch_sizes=BATCH,
            memory_budget=budget,
            repeats=2,
            dm_config=config,
            partition_bytes=16 * 1024,
        )
        budget_str = "unbounded" if budget is None else f"{budget // 1024}KB"
        sections.append(format_storage_latency_table(
            results, BATCH,
            title=(f"Table II [{workload}] tier={tier} pool={budget_str} "
                   f"rows={table.n_rows}"),
        ))
        final_results = results
    write_report(f"table2_{workload}", "\n\n".join(sections))

    from repro.bench.runner import build_system

    dm = build_system("DM-Z", table, dm_config=config,
                      partition_bytes=16 * 1024)
    batch = key_batches(table, BATCH[0], repeats=1)[0]
    benchmark.pedantic(lambda: dm.lookup(batch), rounds=3, iterations=1)

    by_name = {r.system: r for r in final_results}
    # Paper shape: DM wins storage against compressed baselines' raw forms.
    assert by_name["DM-Z"].storage_bytes < by_name["AB"].storage_bytes
    assert by_name["DM-Z"].storage_bytes < by_name["HB"].storage_bytes
    if workload == "customer_demographics":
        # The flagship case: the cross-product table collapses into the
        # model (paper: 95MB -> 0.5MB, a 0.6% ratio).
        assert by_name["DM-Z"].storage_bytes < by_name["ABC-Z"].storage_bytes
