"""Paper Figures 4 & 5: compression-ratio vs latency trade-off scatter.

For every TPC-H (Fig. 4) and TPC-DS (Fig. 5) table, each system is plotted
as a point (compression ratio, latency ratio), both normalized so the
uncompressed array representation sits at (1.0, 1.0).  The paper draws an
arc through DeepMapping's L2 distance from the origin: systems outside the
arc trade off strictly worse.

Expected shape (paper): DM points dominate (closest to the origin) on the
overwhelming majority of tables.
"""

import numpy as np
import pytest

from repro.bench import format_table, key_batches, run_comparison
from repro.data import tpcds, tpch

from conftest import cd_config, dm_config, write_report

SYSTEMS = ["AB", "HB", "ABC-D", "ABC-G", "ABC-Z", "ABC-L",
           "HBC-Z", "HBC-L", "DM-Z", "DM-L"]
BATCH = 2000


# Per-table scales chosen so every relation lands at 10-15k rows: at the
# paper's SF=10 the model's fixed bytes amortize over millions of rows;
# sub-1000-row tables would make the comparison meaningless.
_TPCH_SCALES = {"supplier": 100.0, "part": 5.0, "customer": 8.0,
                "orders": 1.0, "lineitem": 0.25}
_TPCDS_SCALES = {"catalog_returns": 8.0, "catalog_sales": 0.8,
                 "customer_demographics": 0.6}


def _figure_workloads(figure):
    if figure == "fig4_tpch":
        return {
            name: (tpch.generate(name, scale=scale, seed=4), "low")
            for name, scale in _TPCH_SCALES.items()
        }
    return {
        name: (tpcds.generate(name, scale=scale, seed=4),
               "high" if name == "customer_demographics" else "low")
        for name, scale in _TPCDS_SCALES.items()
    }


@pytest.mark.parametrize("figure", ["fig4_tpch", "fig5_tpcds"])
def test_tradeoff_scatter(benchmark, figure):
    sections = []
    dm_wins = 0
    winners = {}
    tables = _figure_workloads(figure)
    for name, (table, correlation) in tables.items():
        budget = max(table.uncompressed_bytes() // 4, 24 * 1024)
        config = (cd_config() if name == "customer_demographics"
                  else dm_config(correlation, epochs=100, batch_size=256))
        results = run_comparison(
            table, systems=SYSTEMS, batch_sizes=[BATCH],
            memory_budget=budget, repeats=2,
            dm_config=config,
            partition_bytes=16 * 1024,
        )
        by_name = {r.system: r for r in results}
        ab = by_name["AB"]
        rows = []
        distances = {}
        for result in results:
            ratio = result.storage_bytes / ab.storage_bytes
            latency = (result.latencies[BATCH] or np.inf) / ab.latencies[BATCH]
            distance = float(np.hypot(ratio, latency))
            distances[result.system] = distance
            rows.append([result.system, ratio, latency, distance])
        sections.append(format_table(
            ["system", "size ratio", "latency ratio", "L2 to origin"],
            rows, title=f"{figure} [{name}] (AB normalized to 1.0, 1.0)"))
        best = min(distances, key=distances.get)
        winners[name] = best
        if best in ("DM-Z", "DM-L"):
            dm_wins += 1
    write_report(figure, "\n\n".join(sections))

    # Paper shape: DeepMapping gives the best trade-off for the majority
    # of scenarios.  At 1/100 scale the model's fixed bytes cannot
    # amortize on the sub-5k-row TPC-H dimension tables (supplier,
    # customer), so the requirement here is: DM wins at least two tables
    # per suite, always including the largest one.
    assert dm_wins >= 2, f"DM won only {dm_wins}/{len(tables)}"
    largest = max(tables, key=lambda n: tables[n][0].uncompressed_bytes())
    assert winners[largest] in ("DM-Z", "DM-L"), (
        f"DM lost the largest table {largest} to {winners[largest]}")

    # Benchmark one representative DM lookup.
    from repro.bench.runner import build_system

    name, (table, correlation) = next(iter(tables.items()))
    dm = build_system("DM-Z", table, dm_config=dm_config(correlation))
    batch = key_batches(table, BATCH, repeats=1)[0]
    benchmark.pedantic(lambda: dm.lookup(batch), rounds=3, iterations=1)
