"""Merge every tracked ``BENCH_*.json`` into one trajectory summary.

Each perf PR checks a full benchmark run into the repo root
(``BENCH_lookup.json``, ``BENCH_modify.json``, ``BENCH_api.json``,
``BENCH_pipeline.json``, ...).  This tool reads them all and renders one
table — the benchmark trajectory — so a reader (or a doc) sees the
current state of every tracked claim without opening four JSON files::

    PYTHONPATH=src python benchmarks/report.py             # aligned table
    PYTHONPATH=src python benchmarks/report.py --markdown  # for docs
    PYTHONPATH=src python benchmarks/report.py --check     # exit 1 if any
                                                           # acceptance failed

Unknown future benchmarks are handled generically: any JSON with an
``acceptance`` object contributes a row; well-known ones get a tighter
headline column.
"""

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _fmt(value, kind=""):
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if kind == "pct":
            return f"{value:+.2%}"
        if kind == "pct_abs":
            return f"{value:.1%}"
        if kind == "x":
            return f"{value:.2f}x"
        return f"{value:.3g}"
    return str(value)


def _headline(name, data):
    """(headline, target, measured) for one benchmark report."""
    acceptance = data.get("acceptance", {})
    if name == "lookup":
        return ("compiled vs reference, 50%-hit batch",
                _fmt(acceptance.get("target"), "x") ,
                _fmt(acceptance.get("measured"), "x"))
    if name == "api":
        return ("worst facade overhead vs direct",
                f"< {_fmt(acceptance.get('target'), 'pct')}",
                _fmt(acceptance.get("measured"), "pct"))
    if name == "modify":
        return ("rebalanced max/mean shard load",
                f"<= {_fmt(acceptance.get('rebalanced_ratio_bar'))}",
                _fmt(acceptance.get("rebalanced_ratio")))
    if name == "pipeline":
        pipeline = _fmt(acceptance.get("pipeline_measured"), "x")
        warm = _fmt(acceptance.get("warm_measured"), "x")
        return ("pipelined vs barrier; warm vs cold reopen",
                f">= {_fmt(acceptance.get('pipeline_target'), 'x')}; "
                f">= {_fmt(acceptance.get('warm_target'), 'x')}",
                f"{pipeline}; {warm}")
    if name == "serving":
        ratio = _fmt(acceptance.get("coalesce_ratio"), "x")
        measured = (f"{_fmt(acceptance.get('measured'), 'x')} "
                    f"(coalesce {ratio})")
        overhead = data.get("resilience_overhead", {})
        if overhead.get("p50_overhead_pct") is not None:
            measured += (f"; deadline p50 "
                         f"{overhead['p50_overhead_pct']:+.1f}%")
        overload = data.get("overload", {})
        if overload.get("goodput_ratio") is not None:
            measured += (f"; flood: light p99 "
                         f"{_fmt(overload.get('light_p99_factor'), 'x')} "
                         f"goodput {_fmt(overload.get('goodput_ratio'))} "
                         f"lost {overload.get('drain_lost', '?')}")
        hedging = data.get("hedging", {})
        if hedging.get("tail_factor") is not None:
            measured += (f"; hedged tail "
                         f"{_fmt(hedging.get('tail_factor'), 'x')}")
        return (f"coalesced vs sequential lookups, "
                f"{acceptance.get('clients', '?')} clients",
                f">= {_fmt(acceptance.get('target'), 'x')}",
                measured)
    if name == "prune":
        all_miss = _fmt(acceptance.get("all_miss_measured"), "x")
        cold = _fmt(acceptance.get("cold_open_measured"), "x")
        mono = _fmt(data.get("pruning", {}).get("all_miss", {})
                    .get("sharded_vs_monolithic"), "x")
        return ("all-miss pruned vs unpruned; cold RO open vs legacy",
                f">= {_fmt(acceptance.get('all_miss_target'), 'x')}; "
                f">= {_fmt(acceptance.get('cold_open_target'), 'x')}",
                f"{all_miss}; {cold} (all-miss vs monolithic {mono})")
    if name == "remote":
        skew = _fmt(acceptance.get("skew_fraction_measured"), "pct_abs")
        warm = _fmt(acceptance.get("warm_ratio_measured"), "x")
        cold = _fmt(data.get("cold_open", {}).get("fraction_of_store"),
                    "pct_abs")
        return ("skewed-workload download fraction; warm cached reopen",
                f"<= {_fmt(acceptance.get('skew_fraction_limit'), 'pct_abs')}; "
                f"<= {_fmt(acceptance.get('warm_ratio_limit'), 'x')}",
                f"{skew}; {warm} (cold open {cold} of store)")
    return (acceptance.get("metric", "(acceptance)"),
            _fmt(acceptance.get("target")),
            _fmt(acceptance.get("measured")))


def collect(root=REPO_ROOT):
    """Rows of (benchmark, generated, headline, target, measured, passed)."""
    rows = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        with open(path) as handle:
            data = json.load(handle)
        name = data.get("benchmark",
                        os.path.basename(path)[len("BENCH_"):-len(".json")])
        headline, target, measured = _headline(name, data)
        rows.append({
            "benchmark": name,
            "file": os.path.basename(path),
            "generated": data.get("generated", "-"),
            "headline": headline,
            "target": target,
            "measured": measured,
            "passed": bool(data.get("acceptance", {}).get("passed", False)),
        })
    return rows


def render(rows, markdown=False):
    header = ["benchmark", "headline metric", "target", "measured",
              "passed", "generated"]
    cells = [[r["benchmark"], r["headline"], r["target"], r["measured"],
              _fmt(r["passed"]), r["generated"]] for r in rows]
    if markdown:
        lines = ["| " + " | ".join(header) + " |",
                 "|" + "|".join("---" for _ in header) + "|"]
        lines += ["| " + " | ".join(str(c) for c in row) + " |"
                  for row in cells]
        return "\n".join(lines)
    widths = [max(len(str(x)) for x in [header[i]] + [row[i] for row in cells])
              for i in range(len(header))]
    lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
    lines.append("  ".join("-" * w for w in widths))
    lines += ["  ".join(str(row[i]).ljust(widths[i])
                        for i in range(len(header))) for row in cells]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--markdown", action="store_true",
                        help="emit a markdown table (for docs)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when any acceptance failed")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="directory holding BENCH_*.json")
    args = parser.parse_args()

    rows = collect(args.root)
    if not rows:
        print(f"no BENCH_*.json found under {args.root}")
        return 1
    print(render(rows, markdown=args.markdown))
    if args.check and not all(r["passed"] for r in rows):
        failed = ", ".join(r["benchmark"] for r in rows if not r["passed"])
        print(f"\nFAILED acceptance: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
