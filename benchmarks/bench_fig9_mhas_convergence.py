"""Paper Figure 9: compression ratio of sampled models during MHAS.

Runs the architecture search on scaled TPC-H tables and prints the sampled
ratio series (smoothed with a running average, as the paper's plots are).

Expected shape (paper): an initial flat region where sampled models cannot
yet memorize (ratios can exceed 1.0 — the structure is larger than the
data), followed by a clear decline as the shared weights train and the
controller concentrates on good architectures.
"""

import numpy as np
import pytest

from repro.bench import format_series, running_average
from repro.core import DeepMapping, DeepMappingConfig
from repro.core.mhas import MHASConfig
from repro.data import tpch

from conftest import write_report

SEARCH = MHASConfig(
    iterations=30,
    controller_every=3,
    controller_samples=3,
    model_epochs=2,
    model_batch=1024,
    size_choices=(16, 32, 64, 128),
    eval_sample=2048,
    tol=0.0,  # run all iterations so the trace covers the full search
)


_SCALES = {"orders": 0.2, "part": 0.5, "customer": 0.5}


@pytest.mark.parametrize("table_name", list(_SCALES))
def test_fig9_mhas_convergence(benchmark, table_name):
    table = tpch.generate(table_name, scale=_SCALES[table_name], seed=9)
    config = DeepMappingConfig(use_search=True, search=SEARCH,
                               epochs=40, batch_size=1024)
    dm = DeepMapping.fit(table, config)
    outcome = dm.search_history
    ratios = outcome.ratios()
    smoothed = running_average(ratios, window=max(3, len(ratios) // 6))

    xs = list(range(1, len(smoothed) + 1, max(1, len(smoothed) // 12)))
    report = "\n".join([
        f"Figure 9 [{table_name}]: sampled compression ratio during MHAS "
        f"({len(ratios)} samples, best={outcome.best_ratio:.4f})",
        format_series("  smoothed ratio", xs,
                      [float(smoothed[i - 1]) for i in xs]),
    ])
    write_report(f"fig9_mhas_{table_name}", report)

    # Paper shape: the trace leaves its initial flat region — the smoothed
    # curve ends at/below its early-phase peak (5% tolerance: on workloads
    # whose auxiliary table dominates every candidate, the trace is nearly
    # flat), and the best sampled ratio strictly improves on the first
    # sample.
    early_peak = smoothed[: max(3, len(smoothed) // 4)].max()
    assert smoothed[-1] <= early_peak * 1.05
    assert outcome.best_ratio < ratios[0]

    benchmark.pedantic(
        lambda: dm.lookup({k: table.column(k)[:500] for k in table.key}),
        rounds=3, iterations=1,
    )
