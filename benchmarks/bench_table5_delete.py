"""Paper Table V: storage and latency after deleting growing fractions.

Rows are deleted from the synthetic multi-column datasets in steps of 10%.
DM-Z only clears existence bits (plus auxiliary rows); DM-Z1 additionally
retrains after 20% is gone.

Expected shape (paper): DM storage shrinks (auxiliary rows leave) and
stays below the compressed array baselines; query latency drops a little
as the auxiliary table thins; hash stores remain the slowest.
"""

import numpy as np
import pytest

from repro.bench import format_table, key_batches, measure_lookup
from repro.bench.runner import build_system, storage_of
from repro.data import synthetic

from conftest import dm_config, write_report

BASE_ROWS = 8_000
STEPS = 6
STEP_ROWS = BASE_ROWS // 10
BATCH = 2000
SYSTEMS = ["DM-Z", "DM-Z1", "AB", "ABC-Z", "HB", "HBC-Z"]


def _build(name, table, correlation):
    if name in ("DM-Z", "DM-Z1"):
        threshold = table.uncompressed_bytes() // 5 if name == "DM-Z1" else None
        config = dm_config(correlation,
                           retrain_threshold_bytes=threshold)
        return build_system("DM-Z", table, dm_config=config)
    return build_system(name, table, partition_bytes=16 * 1024)


@pytest.mark.parametrize("correlation", ["low", "high"])
def test_table5(benchmark, correlation):
    base = synthetic.multi_column(BASE_ROWS, correlation)
    rng = np.random.default_rng(5)
    order = rng.permutation(base.n_rows)
    victim_steps = [
        base.column("key")[order[i * STEP_ROWS: (i + 1) * STEP_ROWS]]
        for i in range(STEPS)
    ]

    headers = ["system", "metric"] + [f"-{i * 10}%" for i in range(STEPS + 1)]
    rows = []
    for name in SYSTEMS:
        system = _build(name, base, correlation)
        survivors = base
        storage_row = [name, "storage (KB)", storage_of(system) / 1024.0]
        query = key_batches(survivors, BATCH, repeats=2, seed=3)
        latency_row = [name, "query (ms)",
                       measure_lookup(system, query) * 1000.0]
        deleted = np.empty(0, dtype=np.int64)
        for victims in victim_steps:
            system.delete({"key": victims})
            deleted = np.concatenate([deleted, victims])
            keep = ~np.isin(base.column("key"), deleted)
            survivors = base.take(np.flatnonzero(keep))
            storage_row.append(storage_of(system) / 1024.0)
            query = key_batches(survivors, BATCH, repeats=2, seed=3)
            latency_row.append(measure_lookup(system, query) * 1000.0)
        rows.append(storage_row)
        rows.append(latency_row)

    report = format_table(
        headers, rows,
        title=f"Table V [multi-column, {correlation} correlation, deletes]",
    )
    write_report(f"table5_{correlation}", report)

    data = {(r[0], r[1]): r[2:] for r in rows}
    dm = data[("DM-Z", "storage (KB)")]
    # Paper shape: DM storage is monotonically non-increasing under deletes
    # (tolerating the small serialized-overlay bookkeeping overhead).
    assert dm[-1] <= dm[0] + 2.0
    # And stays below the uncompressed array at every step.
    ab = data[("AB", "storage (KB)")]
    assert all(d < a for d, a in zip(dm, ab))

    dm_sys = _build("DM-Z", base, correlation)
    victims = {"key": victim_steps[0]}

    def delete_once():
        dm_sys.delete(victims)

    benchmark.pedantic(delete_once, rounds=3, iterations=1)
