"""Paper Table I: storage + lookup latency when data exceeds the memory pool.

Workloads (scaled to laptop size): TPC-H lineitem, the four synthetic
low/high-correlation suites, and the crop raster.  The memory pool budget
is set to a fraction of the uncompressed array size, so baselines must
fault and decompress partitions per batch while the DeepMapping structure
stays resident — the mechanism behind the paper's up-to-15x speedups.

Expected shape (paper): DM-Z fastest with small storage; DM-L smallest;
ABC-Z fastest baseline; ABC-L smallest baseline; HB/HBC slowest
(deserialization); DS fails (whole-table decode cannot fit the pool).
"""

import pytest

from repro.bench import (
    format_storage_latency_table,
    key_batches,
    run_comparison,
)
from repro.data import crop, synthetic, tpch

from conftest import dm_config, write_report

SYSTEMS = ["AB", "HB", "ABC-D", "ABC-G", "ABC-Z", "ABC-L",
           "HBC-Z", "HBC-L", "DS", "DM-Z", "DM-L"]
BATCHES = [100, 1000, 5000]  # scaled from the paper's 1K / 10K / 100K


def _workloads():
    return {
        "lineitem_sf": (tpch.generate("lineitem", scale=0.2, seed=1), "low"),
        "synth_single_low": (synthetic.single_column(15_000, "low"), "low"),
        "synth_single_high": (synthetic.single_column(15_000, "high"), "high"),
        "synth_multi_low": (synthetic.multi_column(12_000, "low"), "low"),
        "synth_multi_high": (synthetic.multi_column(12_000, "high"), "high"),
        "crop": (crop.generate(110, 110), "high"),
    }


@pytest.mark.parametrize("workload", list(_workloads()))
def test_table1(benchmark, workload):
    table, correlation = _workloads()[workload]
    budget = max(table.uncompressed_bytes() // 4, 32 * 1024)
    results = run_comparison(
        table,
        systems=SYSTEMS,
        batch_sizes=BATCHES,
        memory_budget=budget,
        repeats=2,
        dm_config=dm_config(correlation),
        partition_bytes=16 * 1024,
    )
    report = format_storage_latency_table(
        results, BATCHES,
        title=(f"Table I [{workload}] rows={table.n_rows} "
               f"raw={table.uncompressed_bytes() // 1024}KB "
               f"pool={budget // 1024}KB"),
    )
    write_report(f"table1_{workload}", report)

    # Time the DeepMapping lookup itself under the same constrained pool.
    from repro.bench.runner import build_system
    from repro.storage import BufferPool

    dm = build_system("DM-Z", table,
                      pool=BufferPool(budget_bytes=budget),
                      dm_config=dm_config(correlation),
                      partition_bytes=16 * 1024)
    batch = key_batches(table, 1000, repeats=1)[0]
    benchmark.pedantic(lambda: dm.lookup(batch), rounds=3, iterations=1)

    by_name = {r.system: r for r in results}
    # Paper shape, weak-form sanity checks at laptop scale:
    # DeepMapping compresses far below the raw array representation,
    assert by_name["DM-Z"].storage_bytes < by_name["AB"].storage_bytes / 2
    # DeepSqueeze never beats the DeepMapping structure on storage,
    assert by_name["DS"].storage_bytes > by_name["DM-Z"].storage_bytes
    # and hash representations cost the most offline bytes.
    assert by_name["HB"].storage_bytes >= by_name["AB"].storage_bytes
