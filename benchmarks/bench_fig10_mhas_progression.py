"""Paper Figure 10: compression/latency trade-off progression during MHAS.

Every architecture the search samples is a dot (compression ratio, lookup
FLOPs as the latency proxy); dots are grouped into early / middle / late
search stages.

Expected shape (paper): early samples scatter widely; as the search
progresses the cloud contracts into a small low-ratio region (the paper's
"samples start clustering in an increasingly shrinking region").
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core import DeepMapping, DeepMappingConfig
from repro.core.mhas import MHASConfig
from repro.data import tpch

from conftest import write_report

SEARCH = MHASConfig(
    iterations=36,
    controller_every=3,
    controller_samples=3,
    model_epochs=2,
    model_batch=1024,
    size_choices=(16, 32, 64, 128),
    eval_sample=2048,
    tol=0.0,
)


def test_fig10_mhas_progression(benchmark):
    table = tpch.generate("part", scale=0.4, seed=10)
    config = DeepMappingConfig(use_search=True, search=SEARCH,
                               epochs=40, batch_size=1024)
    dm = DeepMapping.fit(table, config)
    history = dm.search_history.history

    thirds = np.array_split(np.arange(len(history)), 3)
    rows = []
    spreads = []
    for label, idx in zip(("early", "middle", "late"), thirds):
        ratios = np.array([history[i].ratio for i in idx])
        flops = np.array([history[i].flops for i in idx], dtype=float)
        spreads.append(float(ratios.std()))
        rows.append([
            label, len(idx), float(ratios.mean()), float(ratios.std()),
            float(flops.mean() / 1000.0),
        ])
    report = format_table(
        ["stage", "samples", "mean ratio", "ratio stddev", "mean kFLOPs"],
        rows,
        title="Figure 10: sampled (ratio, latency-proxy) by search stage "
              "(TPC-H part)",
    )
    write_report("fig10_mhas_progression", report)

    # Paper shape: the sampled-cloud mean ratio improves from the early
    # stage to the late stage.
    assert rows[2][2] <= rows[0][2]

    benchmark.pedantic(
        lambda: dm.lookup({"p_partkey": table.column("p_partkey")[:500]}),
        rounds=3, iterations=1,
    )
