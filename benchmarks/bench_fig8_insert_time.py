"""Paper Figure 8: average insertion time per tuple vs. batch size.

Inserts batches of varying size into the multi-column low-correlation
dataset (the paper's Fig. 8 workload) and reports mean microseconds per
inserted tuple for each representation.

Expected shape (paper): DeepMapping inserts fastest (model evaluation +
overlay append, no recompression); array stores pay partition re/compress;
hash stores pay partition rewrite per touched bucket and are slowest.
"""

import time

import numpy as np
import pytest

from repro.bench import format_table
from repro.bench.runner import build_system
from repro.data import synthetic

from conftest import dm_config, write_report

BASE_ROWS = 6_000
BATCH_SIZES = [1, 10, 100, 1000]
SYSTEMS = ["AB", "ABC-Z", "HB", "HBC-Z", "DM-Z"]


def _fresh(name, base):
    if name == "DM-Z":
        return build_system("DM-Z", base,
                            dm_config=dm_config("low",
                                                key_headroom_fraction=2.0))
    return build_system(name, base, partition_bytes=16 * 1024)


def _insert_once(system, name, batch):
    if name in ("AB", "ABC-Z"):
        system.append_partition(batch)
    else:
        system.insert(batch)


def test_fig8_insert_time(benchmark):
    base = synthetic.multi_column(BASE_ROWS, "low")
    rows = []
    per_tuple_us = {}
    for name in SYSTEMS:
        row = [name]
        series = []
        start_key = int(base.column("key").max()) + 1
        system = _fresh(name, base)
        for batch_size in BATCH_SIZES:
            batch = synthetic.multi_column(batch_size, "low", seed=88,
                                           start_key=start_key)
            start_key += batch_size
            t0 = time.perf_counter()
            _insert_once(system, name, batch)
            elapsed = time.perf_counter() - t0
            micro = elapsed / batch_size * 1e6
            row.append(micro)
            series.append(micro)
        rows.append(row)
        per_tuple_us[name] = series
    report = format_table(
        ["system"] + [f"batch={b} (us/tuple)" for b in BATCH_SIZES],
        rows,
        title="Figure 8: average insertion time per tuple",
    )
    write_report("fig8_insert_time", report)

    # Paper shape: at large batches DeepMapping inserts are cheaper per
    # tuple than the hash stores, which rewrite partitions.
    assert per_tuple_us["DM-Z"][-1] < per_tuple_us["HB"][-1]
    assert per_tuple_us["DM-Z"][-1] < per_tuple_us["HBC-Z"][-1]

    dm = _fresh("DM-Z", base)
    batch = synthetic.multi_column(500, "low", seed=99,
                                   start_key=10 * BASE_ROWS)

    def insert_and_rollback():
        dm.insert(batch)
        dm.delete({"key": batch.column("key")})

    benchmark.pedantic(insert_and_rollback, rounds=3, iterations=1)
