"""Paper Table III: storage and latency after same-distribution inserts.

Batches of rows following the base table's distribution are inserted, in
steps of 10% of the base size, into the low- and high-correlation
multi-column synthetic datasets.  DM-Z never retrains; DM-Z1 retrains once
20% has been inserted (the paper's 200MB-of-1GB trigger).

Expected shape (paper): DM storage grows slowly — barely at all on
high-correlation data because the model generalizes to the inserts — and
stays below ABC-Z; DM-Z1 ends slightly smaller/faster than DM-Z; hash
stores are the largest and slowest throughout.
"""

import pytest

from repro.bench import format_table, key_batches, measure_lookup
from repro.bench.runner import build_system, storage_of
from repro.data import synthetic

from conftest import dm_config, write_report

BASE_ROWS = 8_000
STEPS = 6           # 6 x 10% of the base size
STEP_ROWS = BASE_ROWS // 10
BATCH = 2000
SYSTEMS = ["DM-Z", "DM-Z1", "AB", "ABC-Z", "HB", "HBC-Z"]


def _build(name, table, correlation):
    if name in ("DM-Z", "DM-Z1"):
        threshold = None
        if name == "DM-Z1":
            # Retrain once ~20% of the base data volume has been modified.
            threshold = table.uncompressed_bytes() // 5
        config = dm_config(correlation, key_headroom_fraction=1.0,
                           retrain_threshold_bytes=threshold)
        return build_system("DM-Z", table, dm_config=config)
    return build_system(name, table, partition_bytes=16 * 1024)


def _insert(system, name, batch):
    system.insert(batch)
    if name in ("DM-Z", "DM-Z1"):
        # Fold the modification overlay into compressed partitions so the
        # reported storage matches the paper's compressed T_aux semantics.
        system.aux.compact()


def run_insert_experiment(correlation: str, insert_correlation: str,
                          title: str, report_name: str):
    # Half the key domain is left empty so inserts are unseen keys *inside*
    # the trained range — the paper's "following the underlying
    # distribution" workload, where the model can generalize.
    base = synthetic.multi_column(BASE_ROWS, correlation, domain_factor=2.0)
    headers = ["system", "metric"] + [f"+{i * 10}%" for i in range(STEPS + 1)]
    rows = []
    merged = base
    batches = []
    for step in range(STEPS):
        batches.append(synthetic.insert_batch(merged, STEP_ROWS,
                                              insert_correlation,
                                              seed=100 + step, mode="gaps"))
        merged = merged.concat(batches[-1])

    for name in SYSTEMS:
        system = _build(name, base, correlation)
        storage_row = [name, "storage (KB)", storage_of(system) / 1024.0]
        grown = base
        query = key_batches(grown, BATCH, repeats=2, seed=3)
        latency_row = [name, "query (ms)",
                       measure_lookup(system, query) * 1000.0]
        for batch in batches:
            _insert(system, name, batch)
            grown = grown.concat(batch)
            storage_row.append(storage_of(system) / 1024.0)
            query = key_batches(grown, BATCH, repeats=2, seed=3)
            latency_row.append(measure_lookup(system, query) * 1000.0)
        rows.append(storage_row)
        rows.append(latency_row)
    report = format_table(headers, rows, title=title)
    write_report(report_name, report)
    return {(r[0], r[1]): r[2:] for r in rows}


@pytest.mark.parametrize("correlation", ["low", "high"])
def test_table3(benchmark, correlation):
    data = run_insert_experiment(
        correlation, correlation,
        title=(f"Table III [multi-column, {correlation} correlation, "
               f"same-distribution inserts] base={BASE_ROWS} rows"),
        report_name=f"table3_{correlation}",
    )
    # Paper shape: DM storage stays below ABC-Z at every step.
    dm = data[("DM-Z", "storage (KB)")]
    abc = data[("ABC-Z", "storage (KB)")]
    assert all(d <= a * 1.5 for d, a in zip(dm, abc))
    if correlation == "high":
        # The model generalizes: aux growth is a small fraction of inserts.
        assert dm[-1] < abc[-1]

    # Time one DeepMapping insert step for the benchmark record.
    base = synthetic.multi_column(BASE_ROWS, correlation)
    dm_sys = _build("DM-Z", base, correlation)
    batch = synthetic.insert_batch(base, STEP_ROWS, correlation, seed=999)

    def insert_once():
        dm_sys.insert(batch)
        dm_sys.delete({"key": batch.column("key")})

    benchmark.pedantic(insert_once, rounds=3, iterations=1)
