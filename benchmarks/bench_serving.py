"""Coalescing serving benchmark: closed-loop latency/throughput vs load.

The serving tier (``repro.serve``) exists because many small concurrent
lookups are far cheaper fused into one batched call than executed one by
one — batched throughput scales with batch size (see BENCH_lookup /
BENCH_pipeline), so a coalescer that merges a 64-client burst into a few
store calls should beat 64 sequential per-request lookups by a wide
margin.  This benchmark measures that claim closed-loop:

- **baseline**: each request is one direct ``store.lookup`` of its own
  keys, issued back to back from a single caller — the "no server"
  sequential per-request path.
- **coalesced**: the same requests fan out from N concurrent clients
  through ``repro.serve.Client``; the admission window merges them into
  few fused-gather batches.

For each offered concurrency level the report records requests/s,
keys/s, p50/p99 request latency, coalesce ratio, and batches formed.
Acceptance gate (tracked in ``BENCH_serving.json`` at the repo root):
coalesced throughput must be **>= 2x** the sequential baseline at 64
concurrent clients.  Every response is asserted bit-identical to direct
lookup before any timing counts.  Run::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI

Smoke mode shrinks the build and request volume to CI seconds, still
asserts parity everywhere, and gates on coalesced >= the sequential
baseline (noise floor) rather than the full 2x bar.  Smoke JSON goes
under ``benchmarks/results/``.
"""

import argparse
import json
import os
import threading
import time

import numpy as np

import repro
from repro.bench import format_table
from repro.core import DeepMappingConfig
from repro.resilience.hedging import HedgeController, HedgePolicy
from repro.serve import (AdmissionPolicy, LoadShedder, QueueFullError,
                         ServeStats, SheddingPolicy)
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.testing import break_shard

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

ACCEPTANCE_SPEEDUP = 2.0   # coalesced vs sequential at 64 clients, full run
ACCEPTANCE_CLIENTS = 64
SMOKE_FLOOR = 1.0          # CI gate: coalesced must not lose to sequential
#: Healthy-path cost of the resilience layer: arming a (generous)
#: per-request deadline must not move p50 by more than this at the top
#: concurrency level.  Gated on full runs only — smoke runs record the
#: number but p50s there are too small/noisy for a 3% gate.
OVERHEAD_LIMIT_PCT = 3.0
OVERHEAD_DEADLINE_MS = 30_000.0
#: Interleaved plain/armed measurement pairs; each arm gates on its
#: best-of-N p50 so runner drift cannot land on one arm only.  The
#: per-run p50 is bimodal on small runners (batch-formation timing
#: splits runs into a fast and a slow mode ~40% apart), so N must be
#: large enough that both arms sample the fast mode.
OVERHEAD_PAIRS = 10
#: The overhead arms run a longer workload than the throughput levels:
#: more batch waves per run average out the mode split, tightening the
#: per-arm floor the gate compares.
OVERHEAD_REQUESTS_PER_CLIENT = 24

# --- overload / degradation gates (the ``--overload`` section) -------------
#: Light tenants' p99 under a 2x flood (one tenant at 80% of offered
#: load) vs the same light trickle uncontended.
OVERLOAD_P99_FACTOR = 3.0
#: Successfully served keys/s under the flood vs the tier's measured
#: uncontended capacity — overload must degrade to shed work early, not
#: collapse into wasted service.
OVERLOAD_GOODPUT_FLOOR = 0.70
#: Smoke runs keep structural gates (zero lost, light tenants served)
#: but relax the timing-sensitive ones for small shared runners.
OVERLOAD_SMOKE_P99_FACTOR = 6.0
OVERLOAD_SMOKE_GOODPUT_FLOOR = 0.50
#: Hedged reads: chaos-slowed shard's p99 vs the healthy p99 with
#: hedging on, and the healthy-path hedge rate bound.  Smoke stores are
#: tiny, so the fixed rescue cost (hedge delay + one retry) dwarfs the
#: per-shard work the ratio is meant to amortize against — smoke keeps
#: the structural checks (hedged beats unhedged, rate bound) but
#: relaxes the ratio.
HEDGE_TAIL_FACTOR = 2.0
HEDGE_SMOKE_TAIL_FACTOR = 4.0
HEDGE_RATE_LIMIT = 0.10


def bench_config(smoke: bool) -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=2 if smoke else 6,
        batch_size=4096,
        shared_sizes=(48,),
        private_sizes=(24,),
    )


def build_store(rows: int, shards: int, smoke: bool):
    from repro.data import synthetic

    table = synthetic.single_column(rows, "high", seed=11, domain_factor=2.0)
    store = ShardedDeepMapping.fit(table, bench_config(smoke),
                                   ShardingConfig(n_shards=shards))
    return table, store


def build_workload(table, n_clients: int, requests_per_client: int,
                   keys_per_request: int, seed: int):
    """Per-client request lists with a realistic mixed key profile:
    ~40% live keys, ~20% shared hot keys (cross-request dedup), the rest
    in-domain and out-of-domain misses."""
    rng = np.random.default_rng(seed)
    key_name = table.key[0]
    live = np.asarray(table.column(key_name), dtype=np.int64)
    hot = rng.choice(live, size=32, replace=False)
    lo, hi = int(live.min()), int(live.max())

    def one_request():
        n_live = int(keys_per_request * 0.4)
        n_hot = int(keys_per_request * 0.2)
        n_miss = keys_per_request - n_live - n_hot
        keys = np.concatenate([
            rng.choice(live, size=n_live, replace=True),
            rng.choice(hot, size=n_hot, replace=True),
            rng.integers(lo, hi + (hi - lo) // 2, size=n_miss,
                         dtype=np.int64),
        ])
        rng.shuffle(keys)
        return {key_name: keys}

    return [[one_request() for _ in range(requests_per_client)]
            for _ in range(n_clients)]


def assert_identical(result, reference, label):
    assert np.array_equal(result.found, reference.found), label
    for column, want in reference.values.items():
        assert np.array_equal(result.values[column], want), (label, column)


def run_sequential_baseline(store, workload):
    """All requests back to back, one direct lookup each (no server)."""
    flat = [query for client in workload for query in client]
    for query in flat[:2]:
        store.lookup(query)  # warm engines / pools outside the timer
    start = time.perf_counter()
    latencies = []
    for query in flat:
        t0 = time.perf_counter()
        store.lookup(query)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    total_keys = sum(len(next(iter(q.values()))) for q in flat)
    return {
        "requests": len(flat),
        "seconds": elapsed,
        "requests_per_second": len(flat) / elapsed,
        "keys_per_second": total_keys / elapsed,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


def run_coalesced(store, workload, policy, deadline_ms=None):
    """The same workload offered by concurrent closed-loop clients
    through the coalescing server; parity asserted on every response.
    ``deadline_ms`` arms a per-request budget on every lookup (the
    resilience-overhead variant)."""
    stats = ServeStats()
    oracle = [[store.lookup(query) for query in client]
              for client in workload]
    errors = []
    latencies = []
    latency_lock = threading.Lock()
    barrier = threading.Barrier(len(workload) + 1)

    with repro.serving(store, policy=policy, stats=stats) as client:
        def drive(index):
            mine = []
            barrier.wait()
            for query, want in zip(workload[index], oracle[index]):
                t0 = time.perf_counter()
                got = client.lookup(query, deadline_ms=deadline_ms)
                mine.append(time.perf_counter() - t0)
                try:
                    assert_identical(got, want, f"client {index}")
                except AssertionError as exc:
                    errors.append(str(exc))
            with latency_lock:
                latencies.extend(mine)

        threads = [threading.Thread(target=drive, args=(i,), daemon=True)
                   for i in range(len(workload))]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive(), "client thread hung"
        elapsed = time.perf_counter() - start
        snap = stats.snapshot()

    assert not errors, errors[0]
    n_requests = sum(len(client_queries) for client_queries in workload)
    total_keys = sum(len(next(iter(q.values())))
                     for client_queries in workload
                     for q in client_queries)
    return {
        "clients": len(workload),
        "requests": n_requests,
        "seconds": elapsed,
        "requests_per_second": n_requests / elapsed,
        "keys_per_second": total_keys / elapsed,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "batches_formed": snap["batches_formed"],
        "coalesce_ratio": snap["coalesce_ratio"],
        "dedup_ratio": snap["dedup_ratio"],
    }


# ---------------------------------------------------------------------------
# Overload / graceful degradation (--overload)
# ---------------------------------------------------------------------------
def _request_maker(table, keys_per_request: int, seed: int):
    """Seeded factory of mixed hit/miss requests (thread-confined rng)."""
    rng = np.random.default_rng(seed)
    key_name = table.key[0]
    live = np.asarray(table.column(key_name), dtype=np.int64)
    lo, hi = int(live.min()), int(live.max())

    def one_request():
        n_live = int(keys_per_request * 0.6)
        keys = np.concatenate([
            rng.choice(live, size=n_live, replace=True),
            rng.integers(lo, hi + (hi - lo) // 2,
                         size=keys_per_request - n_live, dtype=np.int64),
        ])
        return {key_name: keys}

    return one_request


def _run_light_tenants(client, table, duration_s: float, pace_s: float,
                       keys_per_request: int, seed: int, n_tenants: int = 4):
    """Closed-loop light tenants, paced, retrying typed sheds with the
    server's retry-after hint.  Returns per-success latencies (seconds,
    final attempt only) and the count of requests that never got through.
    """
    latencies = []
    failures = [0]
    served_keys = [0]
    lock = threading.Lock()

    def drive(index):
        make = _request_maker(table, keys_per_request, seed + index)
        tenant = f"light-{index}"
        deadline = time.perf_counter() + duration_s
        mine = []
        while time.perf_counter() < deadline:
            query = make()
            for _attempt in range(50):
                t0 = time.perf_counter()
                try:
                    client.lookup(query, tenant=tenant)
                except QueueFullError as exc:
                    time.sleep(getattr(exc, "retry_after_s", None) or 0.005)
                    continue
                mine.append(time.perf_counter() - t0)
                break
            else:
                with lock:
                    failures[0] += 1
            time.sleep(pace_s)
        with lock:
            latencies.extend(mine)
            served_keys[0] += len(mine) * keys_per_request

    threads = [threading.Thread(target=drive, args=(i,), daemon=True)
               for i in range(n_tenants)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
        assert not thread.is_alive(), "light tenant thread hung"
    return latencies, failures[0], served_keys[0]


def run_overload(store, table, smoke: bool):
    """The degradation-ladder scenario: 2x offered load, 80% from one
    flooding tenant, light tenants trickling alongside.

    Three measured phases: (1) a saturating closed-loop probe pins the
    tier's uncontended capacity, (2) the light trickle alone pins the
    uncontended light p99, (3) the flood phase offers 2x capacity —
    80% open-loop from tenant ``flood``, the rest the same light
    trickle — through a quota + shedder policy.  A final wave is
    submitted and immediately drained to prove zero admitted work is
    lost to shutdown.
    """
    keys_per_request = 16
    flood_keys = 64
    duration_s = 2.0 if smoke else 5.0
    policy = AdmissionPolicy(max_batch_keys=4096, max_delay_ms=2.0,
                             tenant_quota_keys=4096)

    # Phase 1: capacity probe (8 unpaced closed-loop clients).
    probe_workload = build_workload(table, 8, 4 if smoke else 10,
                                    keys_per_request, seed=7_001)
    probe = run_coalesced(store, probe_workload, policy)
    capacity_kps = probe["keys_per_second"]

    # Phase 2: light trickle alone — the uncontended baseline.
    light_pace = keys_per_request / max(capacity_kps * 0.05, 1.0)
    with repro.serving(store, policy=policy, stats=ServeStats()) as client:
        baseline_lat, baseline_failures, _ = _run_light_tenants(
            client, table, duration_s, light_pace, keys_per_request,
            seed=7_100)
    assert baseline_failures == 0, "light tenants failed uncontended"
    p99_uncontended_ms = float(np.percentile(baseline_lat, 99)) * 1e3

    # Phase 3: the flood.  Offered load = 2x capacity; the flooding
    # tenant submits 80% of it open-loop.
    shedder = LoadShedder(SheddingPolicy(target_delay_ms=20.0,
                                         hard_delay_ms=200.0,
                                         min_observations=1))
    stats = ServeStats()
    client = repro.serving(store, policy=policy, stats=stats,
                           shedder=shedder)
    flood_futures = []
    flood_interval = flood_keys / (2.0 * capacity_kps * 0.8)
    stop_flood = threading.Event()

    def flood():
        make = _request_maker(table, flood_keys, seed=7_200)
        while not stop_flood.is_set():
            flood_futures.append(client.submit(make(), tenant="flood"))
            time.sleep(flood_interval)

    flooder = threading.Thread(target=flood, daemon=True)
    phase_start = time.perf_counter()
    flooder.start()
    light_lat, light_failures, light_served_keys = _run_light_tenants(
        client, table, duration_s, light_pace, keys_per_request, seed=7_300)
    stop_flood.set()
    flooder.join(timeout=60)

    flood_served = flood_shed = flood_errors = 0
    for future in flood_futures:
        try:
            future.result(timeout=60)
            flood_served += 1
        except QueueFullError:
            flood_shed += 1
        except Exception:
            flood_errors += 1
    phase_seconds = time.perf_counter() - phase_start
    served_kps = (flood_served * flood_keys + light_served_keys) \
        / phase_seconds
    goodput_ratio = served_kps / capacity_kps
    p99_flooded_ms = float(np.percentile(light_lat, 99)) * 1e3 \
        if light_lat else float("inf")
    p99_factor = p99_flooded_ms / max(p99_uncontended_ms, 1e-9)

    # Phase 4: drain under fire — a final wave, then drain(); every
    # admitted request must settle (served or typed-shed), none lost.
    make = _request_maker(table, flood_keys, seed=7_400)
    wave = [client.submit(make(), tenant="flood") for _ in range(16)]
    drain_report = client.drain(timeout=120)
    lost = 0
    for future in wave:
        try:
            future.result(timeout=60)
        except QueueFullError:
            pass
        except Exception:
            lost += 1
    snap = stats.snapshot()

    p99_limit = OVERLOAD_SMOKE_P99_FACTOR if smoke else OVERLOAD_P99_FACTOR
    goodput_floor = OVERLOAD_SMOKE_GOODPUT_FLOOR if smoke \
        else OVERLOAD_GOODPUT_FLOOR
    return {
        "duration_s": duration_s,
        "capacity_keys_per_second": capacity_kps,
        "offered_multiple": 2.0,
        "flood_share": 0.8,
        "light_p99_ms_uncontended": p99_uncontended_ms,
        "light_p99_ms_flooded": p99_flooded_ms,
        "light_p99_factor": p99_factor,
        "light_p99_factor_limit": p99_limit,
        "light_failures": light_failures,
        "flood_requests": len(flood_futures),
        "flood_served": flood_served,
        "flood_shed": flood_shed,
        "flood_errors": flood_errors,
        "served_keys_per_second": served_kps,
        "goodput_ratio": goodput_ratio,
        "goodput_floor": goodput_floor,
        "drain_report": drain_report,
        "drain_wave": len(wave),
        "drain_lost": lost,
        "stats": {"shed": snap["shed"], "rejected": snap["rejected"],
                  "max_queue_depth": snap["max_queue_depth"]},
        "passed": (light_failures == 0
                   and lost == 0
                   and flood_errors == 0
                   and p99_factor <= p99_limit
                   and goodput_ratio >= goodput_floor),
    }


def run_hedging(rows: int, smoke: bool):
    """Hedged-read tail bound: a chaos-stalled shard must not set the
    p99, and a healthy store must hedge (essentially) never.

    The chaos is *transient stalls* — every ``stall_every``-th lookup,
    shard 1's next attempt dawdles ``delay_s`` while a retry of the
    same work is fast (cold cache, GC pause, a dropped packet).  That
    is exactly the fault class hedging addresses: a *persistently*
    slow shard delays backups just as much and needs replication or
    shard rebuild instead (see ``docs/resilience.md``).
    """
    from repro.data import synthetic

    table = synthetic.single_column(rows, "high", seed=13, domain_factor=2.0)
    store = ShardedDeepMapping.fit(
        table, bench_config(smoke),
        ShardingConfig(n_shards=4, max_workers=4, hedged_reads=True))
    # A snappier hedge trigger than the library default: the bench's
    # per-shard attempts are milliseconds, so waiting 4x the median
    # before hedging would itself dominate the rescued tail.  Requests
    # are large (4096 keys) for the same reason — a rescue costs
    # roughly one hedge delay plus one retry, which must amortize
    # against real per-shard work for the p99 gate to measure the
    # mechanism rather than fixed scheduling overhead.  Phases are long
    # enough that the chaos p99 interpolates over several rescues
    # instead of riding on the single worst one.
    # max_fraction=0.5 gives a 4-shard batch two backup slots: with the
    # default budget of one, a jitter hedge on a merely-slowish healthy
    # ordinal can steal the batch's only slot and leave the genuinely
    # stalled shard unrescued for the full injected delay.
    hedge_policy = HedgePolicy(delay_factor=1.3, min_delay_ms=1.0,
                               max_fraction=0.5)
    hedger = HedgeController(hedge_policy)
    store.hedger = hedger
    make = _request_maker(table, 4096, seed=17)
    n_lookups = 40 if smoke else 150
    tail_limit = HEDGE_SMOKE_TAIL_FACTOR if smoke else HEDGE_TAIL_FACTOR
    delay_s = 0.1
    stall_every = 5  # 20% of lookups hit a stalled shard attempt

    def timed_phase(inject: bool):
        latencies = []
        for index in range(n_lookups):
            query = make()
            restore = None
            if inject and index % stall_every == 0:
                restore = break_shard(store, 1, delay_s=delay_s,
                                      slow_first=1)
            try:
                t0 = time.perf_counter()
                store.lookup(query)
                latencies.append(time.perf_counter() - t0)
            finally:
                if restore is not None:
                    restore()
                    # A won hedge returns the batch early but the
                    # stalled attempt keeps sleeping on its pool worker
                    # for the rest of ``delay_s``.  Back-to-back
                    # lookups here are microseconds apart — far denser
                    # than real traffic — so without this gap a few
                    # injections strand every worker behind retiring
                    # stragglers and starve healthy batches.
                    time.sleep(delay_s * 1.1)
        return latencies

    def launched():
        return store.stats.counters.get("hedges_launched", 0)

    # The healthy baseline *brackets* the chaos phases: ambient
    # scheduler noise on a shared runner drifts over seconds, and a
    # spike that lands only inside the chaos window would otherwise be
    # misread as a hedging regression.  Pooling a before- and an
    # after-phase exposes the denominator to the same conditions as the
    # numerator, and doubles the sample count behind the p99.
    store.lookup(make())  # warm pools/engines outside the timers
    before_first = launched()
    healthy_latencies = timed_phase(inject=False)
    healthy_launched = launched() - before_first

    # Chaos, hedging OFF: every stalled attempt sets its batch's tail.
    store.hedger = None
    p99_unhedged_ms = float(np.percentile(
        timed_phase(inject=True), 99)) * 1e3

    # Same chaos, hedging ON: backups reclaim the tail.
    store.hedger = hedger
    p99_hedged_ms = float(np.percentile(
        timed_phase(inject=True), 99)) * 1e3
    chaos_launched = launched()
    chaos_won = store.stats.counters.get("hedges_won", 0)

    before_second = launched()
    healthy_latencies += timed_phase(inject=False)
    healthy_launched += launched() - before_second
    p99_healthy_ms = float(np.percentile(healthy_latencies, 99)) * 1e3
    hedge_rate = healthy_launched / (2 * n_lookups * 4)
    store.close()

    return {
        "rows": rows,
        "lookups_per_phase": n_lookups,
        "injected_delay_ms": delay_s * 1e3,
        "stall_every": stall_every,
        "p99_ms_healthy": p99_healthy_ms,
        "p99_ms_chaos_unhedged": p99_unhedged_ms,
        "p99_ms_chaos_hedged": p99_hedged_ms,
        "tail_factor": p99_hedged_ms / max(p99_healthy_ms, 1e-9),
        "tail_factor_limit": tail_limit,
        "healthy_hedge_rate": hedge_rate,
        "hedge_rate_limit": HEDGE_RATE_LIMIT,
        "hedges_launched_total": chaos_launched,
        "hedges_won_total": chaos_won,
        "passed": (p99_hedged_ms <= tail_limit * p99_healthy_ms
                   and p99_hedged_ms < p99_unhedged_ms
                   and hedge_rate < HEDGE_RATE_LIMIT),
    }


def run_serving_benchmark(rows: int, shards: int, requests_per_client: int,
                          keys_per_request: int, levels, smoke: bool):
    table, store = build_store(rows, shards, smoke)
    policy = AdmissionPolicy(max_batch_keys=65_536, max_delay_ms=2.0)

    max_clients = max(levels)
    workload = build_workload(table, max_clients, requests_per_client,
                              keys_per_request, seed=20240808)
    baseline = run_sequential_baseline(store, workload)

    by_level = []
    for n_clients in levels:
        level = run_coalesced(store, workload[:n_clients], policy)
        by_level.append(level)

    top = by_level[-1]
    # Compare at equal request counts: throughput is rate-based, so the
    # sequential requests/s measured over the full workload is the fair
    # per-request baseline at any concurrency level.
    speedup = top["requests_per_second"] / baseline["requests_per_second"]

    # Resilience overhead: the same top-level run, plain vs with a
    # generous per-request deadline armed.  The arms are interleaved
    # and each takes its best-of-N p50 (timeit-style): a single A/B
    # pair puts any drift on a shared runner — page-cache state, CPU
    # frequency, a neighbour's burst — entirely on one arm, which on
    # this gate's 3% budget reads as a regression that isn't there.
    # The per-arm minimum estimates the noise-free cost of each path.
    n_top = top["clients"]
    overhead_workload = build_workload(
        table, n_top, OVERHEAD_REQUESTS_PER_CLIENT, keys_per_request,
        seed=20240809)
    plain_runs, armed_runs = [], []
    for pair in range(OVERHEAD_PAIRS):
        # ABBA ordering: the second run of a pair inherits a hotter
        # runner than the first, so a fixed order would tax one arm.
        first_is_plain = pair % 2 == 0
        for arm_is_plain in (first_is_plain, not first_is_plain):
            if arm_is_plain:
                plain_runs.append(
                    run_coalesced(store, overhead_workload, policy))
            else:
                armed_runs.append(
                    run_coalesced(store, overhead_workload, policy,
                                  deadline_ms=OVERHEAD_DEADLINE_MS))
    plain = min(plain_runs, key=lambda run: run["p50_ms"])
    armed = min(armed_runs, key=lambda run: run["p50_ms"])
    overhead_pct = (armed["p50_ms"] - plain["p50_ms"]) \
        / plain["p50_ms"] * 100.0
    overhead = {
        "metric": ("p50 request latency with a per-request deadline armed "
                   f"vs without, at {n_top} concurrent clients"),
        "deadline_ms": OVERHEAD_DEADLINE_MS,
        "clients": n_top,
        "p50_ms_plain": plain["p50_ms"],
        "p50_ms_with_deadline": armed["p50_ms"],
        "p99_ms_plain": plain["p99_ms"],
        "p99_ms_with_deadline": armed["p99_ms"],
        "p50_overhead_pct": overhead_pct,
        "limit_pct": OVERHEAD_LIMIT_PCT,
        # Gated on full runs; recorded-only on smoke (tiny p50s, noisy).
        "passed": smoke or overhead_pct <= OVERHEAD_LIMIT_PCT,
    }

    report = {
        "benchmark": "serving",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "smoke" if smoke else "full",
        "rows": rows,
        "shards": shards,
        "requests_per_client": requests_per_client,
        "keys_per_request": keys_per_request,
        "policy": {
            "max_batch_keys": policy.max_batch_keys,
            "max_delay_ms": policy.max_delay_ms,
        },
        "sequential_baseline": baseline,
        "coalesced_by_level": by_level,
        "resilience_overhead": overhead,
        "acceptance": {
            "metric": ("coalesced serving throughput vs sequential "
                       f"per-request lookups at {top['clients']} "
                       "concurrent clients"),
            "target": ACCEPTANCE_SPEEDUP,
            "measured": speedup,
            "clients": top["clients"],
            "coalesce_ratio": top["coalesce_ratio"],
            "passed": (speedup >= ACCEPTANCE_SPEEDUP
                       and top["coalesce_ratio"] > 1.0
                       and top["clients"] >= (1 if smoke
                                              else ACCEPTANCE_CLIENTS)
                       and overhead["passed"]),
        },
    }

    rows_out = [["sequential", 1, int(baseline["requests_per_second"]),
                 f"{baseline['p50_ms']:.2f}", f"{baseline['p99_ms']:.2f}",
                 "-", "-"]]
    rows_out += [[f"coalesced x{lvl['clients']}", lvl["clients"],
                  int(lvl["requests_per_second"]),
                  f"{lvl['p50_ms']:.2f}", f"{lvl['p99_ms']:.2f}",
                  f"{lvl['coalesce_ratio']:.2f}", lvl["batches_formed"]]
                 for lvl in by_level]
    print(format_table(
        ["path", "clients", "req/s", "p50 ms", "p99 ms", "coalesce",
         "batches"],
        rows_out,
        title=(f"Closed-loop serving (rows={rows}, shards={shards}, "
               f"{keys_per_request} keys/request, "
               f"{requests_per_client} requests/client)"),
    ))
    print(f"coalesced vs sequential at {top['clients']} clients: "
          f"{speedup:.2f}x (coalesce ratio {top['coalesce_ratio']:.2f})")
    print(f"resilience overhead at {n_top} clients: p50 "
          f"{plain['p50_ms']:.3f} ms plain vs {armed['p50_ms']:.3f} ms "
          f"with deadline ({overhead_pct:+.2f}%, limit "
          f"{OVERHEAD_LIMIT_PCT:.0f}% on full runs)")

    store.close()
    return report


def write_json(report, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[benchmark JSON saved to {out_path}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI config (results not tracked)")
    parser.add_argument("--overload", action="store_true",
                        help="also run the overload/degradation and "
                             "hedged-read sections (and gate on them)")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--requests-per-client", type=int, default=None)
    parser.add_argument("--keys-per-request", type=int, default=None)
    args = parser.parse_args()

    if args.smoke:
        defaults = dict(rows=6_000, shards=4, requests_per_client=2,
                        keys_per_request=16)
        levels = [8, 16]
        out_path = os.path.join(RESULTS_DIR, "BENCH_serving.json")
    else:
        defaults = dict(rows=60_000, shards=4, requests_per_client=6,
                        keys_per_request=16)
        levels = [1, 8, 64]
        out_path = os.path.join(REPO_ROOT, "BENCH_serving.json")
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)

    report = run_serving_benchmark(
        rows=args.rows, shards=args.shards,
        requests_per_client=args.requests_per_client,
        keys_per_request=args.keys_per_request,
        levels=levels, smoke=args.smoke)

    if args.overload:
        table, store = build_store(args.rows, args.shards, args.smoke)
        try:
            report["overload"] = run_overload(store, table, args.smoke)
        finally:
            try:
                store.close()
            except RuntimeError:
                pass  # drained by the scenario
        report["hedging"] = run_hedging(min(args.rows, 20_000), args.smoke)
        overload, hedging = report["overload"], report["hedging"]
        print(format_table(
            ["scenario", "p99 ms", "vs baseline", "goodput", "lost"],
            [["light tenants, uncontended",
              f"{overload['light_p99_ms_uncontended']:.2f}", "1.00x",
              "-", "-"],
             ["light tenants, 2x flood",
              f"{overload['light_p99_ms_flooded']:.2f}",
              f"{overload['light_p99_factor']:.2f}x",
              f"{overload['goodput_ratio']:.2f}",
              overload["drain_lost"]]],
            title=(f"Overload degradation (flood {overload['flood_served']}"
                   f" served / {overload['flood_shed']} shed / "
                   f"{overload['flood_requests']} offered)")))
        print(format_table(
            ["phase", "p99 ms", "hedge rate"],
            [["healthy", f"{hedging['p99_ms_healthy']:.2f}",
              f"{hedging['healthy_hedge_rate']:.3f}"],
             ["chaos, unhedged", f"{hedging['p99_ms_chaos_unhedged']:.2f}",
              "-"],
             ["chaos, hedged", f"{hedging['p99_ms_chaos_hedged']:.2f}",
              f"won {hedging['hedges_won_total']}"]],
            title=(f"Hedged reads (shard 1 stalls "
                   f"{hedging['injected_delay_ms']:.0f} ms every "
                   f"{hedging['stall_every']}th lookup)")))
        if not args.smoke:
            report["acceptance"]["passed"] = (
                report["acceptance"]["passed"]
                and overload["passed"] and hedging["passed"])

    write_json(report, out_path)

    speedup = report["acceptance"]["measured"]
    ratio = report["acceptance"]["coalesce_ratio"]
    if args.overload:
        overload, hedging = report["overload"], report["hedging"]
        if not overload["passed"]:
            print(f"OVERLOAD GATE FAILED: light p99 "
                  f"{overload['light_p99_factor']:.2f}x uncontended (limit "
                  f"{overload['light_p99_factor_limit']:.1f}x), goodput "
                  f"{overload['goodput_ratio']:.2f} (floor "
                  f"{overload['goodput_floor']:.2f}), "
                  f"{overload['drain_lost']} lost in drain, "
                  f"{overload['light_failures']} light failures, "
                  f"{overload['flood_errors']} untyped flood errors")
            return 1
        if not hedging["passed"]:
            print(f"HEDGING GATE FAILED: chaos p99 "
                  f"{hedging['p99_ms_chaos_hedged']:.2f} ms vs healthy "
                  f"{hedging['p99_ms_healthy']:.2f} ms (limit "
                  f"{hedging['tail_factor_limit']:.1f}x), healthy hedge "
                  f"rate {hedging['healthy_hedge_rate']:.3f} (limit "
                  f"{hedging['hedge_rate_limit']:.2f})")
            return 1
        print(f"overload gate: light p99 "
              f"{overload['light_p99_factor']:.2f}x uncontended, goodput "
              f"{overload['goodput_ratio']:.2f}, zero lost across drain; "
              f"hedged chaos p99 {hedging['tail_factor']:.2f}x healthy, "
              f"healthy hedge rate {hedging['healthy_hedge_rate']:.3f}")
    if args.smoke:
        # CI regression gate: coalesced serving must at least match the
        # sequential baseline and genuinely coalesce, even on small
        # shared runners; the full 2x bar is tracked in
        # BENCH_serving.json at the repo root.
        if speedup < SMOKE_FLOOR or ratio <= 1.0:
            print(f"SMOKE GATE FAILED: coalesced {speedup:.2f}x sequential "
                  f"(floor {SMOKE_FLOOR:.2f}), coalesce ratio {ratio:.2f}")
            return 1
        print(f"smoke gate: coalesced {speedup:.2f}x sequential "
              f"(floor {SMOKE_FLOOR:.2f}), coalesce ratio {ratio:.2f} — "
              "full acceptance tracked in BENCH_serving.json")
        return 0
    if not report["acceptance"]["passed"]:
        print(f"ACCEPTANCE FAILED: coalesced {speedup:.2f}x sequential "
              f"(target {ACCEPTANCE_SPEEDUP}x) at "
              f"{report['acceptance']['clients']} clients")
        return 1
    overhead = report["resilience_overhead"]
    if not overhead["passed"]:
        print(f"OVERHEAD GATE FAILED: deadline-armed p50 is "
              f"{overhead['p50_overhead_pct']:+.2f}% vs plain at "
              f"{overhead['clients']} clients "
              f"(limit {overhead['limit_pct']:.0f}%)")
        return 1
    print(f"acceptance: coalesced {speedup:.2f}x sequential "
          f"(target >= {ACCEPTANCE_SPEEDUP}x) at "
          f"{report['acceptance']['clients']} clients; resilience "
          f"overhead {overhead['p50_overhead_pct']:+.2f}% p50 "
          f"(limit {overhead['limit_pct']:.0f}%)")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
