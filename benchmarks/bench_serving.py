"""Coalescing serving benchmark: closed-loop latency/throughput vs load.

The serving tier (``repro.serve``) exists because many small concurrent
lookups are far cheaper fused into one batched call than executed one by
one — batched throughput scales with batch size (see BENCH_lookup /
BENCH_pipeline), so a coalescer that merges a 64-client burst into a few
store calls should beat 64 sequential per-request lookups by a wide
margin.  This benchmark measures that claim closed-loop:

- **baseline**: each request is one direct ``store.lookup`` of its own
  keys, issued back to back from a single caller — the "no server"
  sequential per-request path.
- **coalesced**: the same requests fan out from N concurrent clients
  through ``repro.serve.Client``; the admission window merges them into
  few fused-gather batches.

For each offered concurrency level the report records requests/s,
keys/s, p50/p99 request latency, coalesce ratio, and batches formed.
Acceptance gate (tracked in ``BENCH_serving.json`` at the repo root):
coalesced throughput must be **>= 2x** the sequential baseline at 64
concurrent clients.  Every response is asserted bit-identical to direct
lookup before any timing counts.  Run::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI

Smoke mode shrinks the build and request volume to CI seconds, still
asserts parity everywhere, and gates on coalesced >= the sequential
baseline (noise floor) rather than the full 2x bar.  Smoke JSON goes
under ``benchmarks/results/``.
"""

import argparse
import json
import os
import threading
import time

import numpy as np

import repro
from repro.bench import format_table
from repro.core import DeepMappingConfig
from repro.serve import AdmissionPolicy, ServeStats
from repro.shard import ShardedDeepMapping, ShardingConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

ACCEPTANCE_SPEEDUP = 2.0   # coalesced vs sequential at 64 clients, full run
ACCEPTANCE_CLIENTS = 64
SMOKE_FLOOR = 1.0          # CI gate: coalesced must not lose to sequential
#: Healthy-path cost of the resilience layer: arming a (generous)
#: per-request deadline must not move p50 by more than this at the top
#: concurrency level.  Gated on full runs only — smoke runs record the
#: number but p50s there are too small/noisy for a 3% gate.
OVERHEAD_LIMIT_PCT = 3.0
OVERHEAD_DEADLINE_MS = 30_000.0


def bench_config(smoke: bool) -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=2 if smoke else 6,
        batch_size=4096,
        shared_sizes=(48,),
        private_sizes=(24,),
    )


def build_store(rows: int, shards: int, smoke: bool):
    from repro.data import synthetic

    table = synthetic.single_column(rows, "high", seed=11, domain_factor=2.0)
    store = ShardedDeepMapping.fit(table, bench_config(smoke),
                                   ShardingConfig(n_shards=shards))
    return table, store


def build_workload(table, n_clients: int, requests_per_client: int,
                   keys_per_request: int, seed: int):
    """Per-client request lists with a realistic mixed key profile:
    ~40% live keys, ~20% shared hot keys (cross-request dedup), the rest
    in-domain and out-of-domain misses."""
    rng = np.random.default_rng(seed)
    key_name = table.key[0]
    live = np.asarray(table.column(key_name), dtype=np.int64)
    hot = rng.choice(live, size=32, replace=False)
    lo, hi = int(live.min()), int(live.max())

    def one_request():
        n_live = int(keys_per_request * 0.4)
        n_hot = int(keys_per_request * 0.2)
        n_miss = keys_per_request - n_live - n_hot
        keys = np.concatenate([
            rng.choice(live, size=n_live, replace=True),
            rng.choice(hot, size=n_hot, replace=True),
            rng.integers(lo, hi + (hi - lo) // 2, size=n_miss,
                         dtype=np.int64),
        ])
        rng.shuffle(keys)
        return {key_name: keys}

    return [[one_request() for _ in range(requests_per_client)]
            for _ in range(n_clients)]


def assert_identical(result, reference, label):
    assert np.array_equal(result.found, reference.found), label
    for column, want in reference.values.items():
        assert np.array_equal(result.values[column], want), (label, column)


def run_sequential_baseline(store, workload):
    """All requests back to back, one direct lookup each (no server)."""
    flat = [query for client in workload for query in client]
    for query in flat[:2]:
        store.lookup(query)  # warm engines / pools outside the timer
    start = time.perf_counter()
    latencies = []
    for query in flat:
        t0 = time.perf_counter()
        store.lookup(query)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    total_keys = sum(len(next(iter(q.values()))) for q in flat)
    return {
        "requests": len(flat),
        "seconds": elapsed,
        "requests_per_second": len(flat) / elapsed,
        "keys_per_second": total_keys / elapsed,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


def run_coalesced(store, workload, policy, deadline_ms=None):
    """The same workload offered by concurrent closed-loop clients
    through the coalescing server; parity asserted on every response.
    ``deadline_ms`` arms a per-request budget on every lookup (the
    resilience-overhead variant)."""
    stats = ServeStats()
    oracle = [[store.lookup(query) for query in client]
              for client in workload]
    errors = []
    latencies = []
    latency_lock = threading.Lock()
    barrier = threading.Barrier(len(workload) + 1)

    with repro.serving(store, policy=policy, stats=stats) as client:
        def drive(index):
            mine = []
            barrier.wait()
            for query, want in zip(workload[index], oracle[index]):
                t0 = time.perf_counter()
                got = client.lookup(query, deadline_ms=deadline_ms)
                mine.append(time.perf_counter() - t0)
                try:
                    assert_identical(got, want, f"client {index}")
                except AssertionError as exc:
                    errors.append(str(exc))
            with latency_lock:
                latencies.extend(mine)

        threads = [threading.Thread(target=drive, args=(i,), daemon=True)
                   for i in range(len(workload))]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive(), "client thread hung"
        elapsed = time.perf_counter() - start
        snap = stats.snapshot()

    assert not errors, errors[0]
    n_requests = sum(len(client_queries) for client_queries in workload)
    total_keys = sum(len(next(iter(q.values())))
                     for client_queries in workload
                     for q in client_queries)
    return {
        "clients": len(workload),
        "requests": n_requests,
        "seconds": elapsed,
        "requests_per_second": n_requests / elapsed,
        "keys_per_second": total_keys / elapsed,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "batches_formed": snap["batches_formed"],
        "coalesce_ratio": snap["coalesce_ratio"],
        "dedup_ratio": snap["dedup_ratio"],
    }


def run_serving_benchmark(rows: int, shards: int, requests_per_client: int,
                          keys_per_request: int, levels, smoke: bool):
    table, store = build_store(rows, shards, smoke)
    policy = AdmissionPolicy(max_batch_keys=65_536, max_delay_ms=2.0)

    max_clients = max(levels)
    workload = build_workload(table, max_clients, requests_per_client,
                              keys_per_request, seed=20240808)
    baseline = run_sequential_baseline(store, workload)

    by_level = []
    for n_clients in levels:
        level = run_coalesced(store, workload[:n_clients], policy)
        by_level.append(level)

    top = by_level[-1]
    # Compare at equal request counts: throughput is rate-based, so the
    # sequential requests/s measured over the full workload is the fair
    # per-request baseline at any concurrency level.
    speedup = top["requests_per_second"] / baseline["requests_per_second"]

    # Resilience overhead: the same top-level run, back to back, plain
    # vs with a generous per-request deadline armed.  Fresh plain run so
    # both sides are equally warm.
    n_top = top["clients"]
    plain = run_coalesced(store, workload[:n_top], policy)
    armed = run_coalesced(store, workload[:n_top], policy,
                          deadline_ms=OVERHEAD_DEADLINE_MS)
    overhead_pct = (armed["p50_ms"] - plain["p50_ms"]) \
        / plain["p50_ms"] * 100.0
    overhead = {
        "metric": ("p50 request latency with a per-request deadline armed "
                   f"vs without, at {n_top} concurrent clients"),
        "deadline_ms": OVERHEAD_DEADLINE_MS,
        "clients": n_top,
        "p50_ms_plain": plain["p50_ms"],
        "p50_ms_with_deadline": armed["p50_ms"],
        "p99_ms_plain": plain["p99_ms"],
        "p99_ms_with_deadline": armed["p99_ms"],
        "p50_overhead_pct": overhead_pct,
        "limit_pct": OVERHEAD_LIMIT_PCT,
        # Gated on full runs; recorded-only on smoke (tiny p50s, noisy).
        "passed": smoke or overhead_pct <= OVERHEAD_LIMIT_PCT,
    }

    report = {
        "benchmark": "serving",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "smoke" if smoke else "full",
        "rows": rows,
        "shards": shards,
        "requests_per_client": requests_per_client,
        "keys_per_request": keys_per_request,
        "policy": {
            "max_batch_keys": policy.max_batch_keys,
            "max_delay_ms": policy.max_delay_ms,
        },
        "sequential_baseline": baseline,
        "coalesced_by_level": by_level,
        "resilience_overhead": overhead,
        "acceptance": {
            "metric": ("coalesced serving throughput vs sequential "
                       f"per-request lookups at {top['clients']} "
                       "concurrent clients"),
            "target": ACCEPTANCE_SPEEDUP,
            "measured": speedup,
            "clients": top["clients"],
            "coalesce_ratio": top["coalesce_ratio"],
            "passed": (speedup >= ACCEPTANCE_SPEEDUP
                       and top["coalesce_ratio"] > 1.0
                       and top["clients"] >= (1 if smoke
                                              else ACCEPTANCE_CLIENTS)
                       and overhead["passed"]),
        },
    }

    rows_out = [["sequential", 1, int(baseline["requests_per_second"]),
                 f"{baseline['p50_ms']:.2f}", f"{baseline['p99_ms']:.2f}",
                 "-", "-"]]
    rows_out += [[f"coalesced x{lvl['clients']}", lvl["clients"],
                  int(lvl["requests_per_second"]),
                  f"{lvl['p50_ms']:.2f}", f"{lvl['p99_ms']:.2f}",
                  f"{lvl['coalesce_ratio']:.2f}", lvl["batches_formed"]]
                 for lvl in by_level]
    print(format_table(
        ["path", "clients", "req/s", "p50 ms", "p99 ms", "coalesce",
         "batches"],
        rows_out,
        title=(f"Closed-loop serving (rows={rows}, shards={shards}, "
               f"{keys_per_request} keys/request, "
               f"{requests_per_client} requests/client)"),
    ))
    print(f"coalesced vs sequential at {top['clients']} clients: "
          f"{speedup:.2f}x (coalesce ratio {top['coalesce_ratio']:.2f})")
    print(f"resilience overhead at {n_top} clients: p50 "
          f"{plain['p50_ms']:.3f} ms plain vs {armed['p50_ms']:.3f} ms "
          f"with deadline ({overhead_pct:+.2f}%, limit "
          f"{OVERHEAD_LIMIT_PCT:.0f}% on full runs)")

    store.close()
    return report


def write_json(report, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[benchmark JSON saved to {out_path}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI config (results not tracked)")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--requests-per-client", type=int, default=None)
    parser.add_argument("--keys-per-request", type=int, default=None)
    args = parser.parse_args()

    if args.smoke:
        defaults = dict(rows=6_000, shards=4, requests_per_client=2,
                        keys_per_request=16)
        levels = [8, 16]
        out_path = os.path.join(RESULTS_DIR, "BENCH_serving.json")
    else:
        defaults = dict(rows=60_000, shards=4, requests_per_client=6,
                        keys_per_request=16)
        levels = [1, 8, 64]
        out_path = os.path.join(REPO_ROOT, "BENCH_serving.json")
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)

    report = run_serving_benchmark(
        rows=args.rows, shards=args.shards,
        requests_per_client=args.requests_per_client,
        keys_per_request=args.keys_per_request,
        levels=levels, smoke=args.smoke)
    write_json(report, out_path)

    speedup = report["acceptance"]["measured"]
    ratio = report["acceptance"]["coalesce_ratio"]
    if args.smoke:
        # CI regression gate: coalesced serving must at least match the
        # sequential baseline and genuinely coalesce, even on small
        # shared runners; the full 2x bar is tracked in
        # BENCH_serving.json at the repo root.
        if speedup < SMOKE_FLOOR or ratio <= 1.0:
            print(f"SMOKE GATE FAILED: coalesced {speedup:.2f}x sequential "
                  f"(floor {SMOKE_FLOOR:.2f}), coalesce ratio {ratio:.2f}")
            return 1
        print(f"smoke gate: coalesced {speedup:.2f}x sequential "
              f"(floor {SMOKE_FLOOR:.2f}), coalesce ratio {ratio:.2f} — "
              "full acceptance tracked in BENCH_serving.json")
        return 0
    if not report["acceptance"]["passed"]:
        print(f"ACCEPTANCE FAILED: coalesced {speedup:.2f}x sequential "
              f"(target {ACCEPTANCE_SPEEDUP}x) at "
              f"{report['acceptance']['clients']} clients")
        return 1
    overhead = report["resilience_overhead"]
    if not overhead["passed"]:
        print(f"OVERHEAD GATE FAILED: deadline-armed p50 is "
              f"{overhead['p50_overhead_pct']:+.2f}% vs plain at "
              f"{overhead['clients']} clients "
              f"(limit {overhead['limit_pct']:.0f}%)")
        return 1
    print(f"acceptance: coalesced {speedup:.2f}x sequential "
          f"(target >= {ACCEPTANCE_SPEEDUP}x) at "
          f"{report['acceptance']['clients']} clients; resilience "
          f"overhead {overhead['p50_overhead_pct']:+.2f}% p50 "
          f"(limit {overhead['limit_pct']:.0f}%)")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
