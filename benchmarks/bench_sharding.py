"""Shard-count scaling of batched lookup throughput and build time.

Builds the same table as a 1/2/4/8-shard :class:`ShardedDeepMapping`
(range strategy) plus a monolithic :class:`DeepMapping` reference, then
times a 100k-key batched lookup against each.  Reported per store:

- build seconds (all shards, fanned out on the build thread pool),
- storage bytes (aggregated hybrid footprint),
- batched-lookup throughput in keys/second (best of several runs).

Expected shape: range sharding shrinks each shard's flattened key domain,
so per-shard key encodings need fewer one-hot digits and the per-key
inference cost drops — throughput rises with shard count even on a single
core, and thread fan-out adds on multi-core hosts.  Build time also drops:
each shard trains on a fraction of the rows and converges sooner.

Run as a pytest benchmark or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharding.py -x -q -s
    PYTHONPATH=src python benchmarks/bench_sharding.py
"""

import time

import numpy as np

import repro
from repro.bench import format_table
from repro.core import DeepMappingConfig
from repro.data import synthetic
from repro.shard import ShardingConfig

from conftest import write_report

SHARD_COUNTS = [1, 2, 4, 8]
ROWS = 120_000
BATCH = 100_000
RUNS = 5


def bench_config() -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=8,
        batch_size=4096,
        shared_sizes=(64,),
        private_sizes=(32,),
        aux_partition_bytes=32 * 1024,
    )


def run_sharding_benchmark():
    table = synthetic.single_column(ROWS, "high", seed=1)
    key_name = table.key[0]
    rng = np.random.default_rng(0)
    query = {key_name: rng.choice(table.column(key_name), size=BATCH,
                                  replace=True)}
    config = bench_config()

    stores = []
    start = time.perf_counter()
    mono = repro.build(table, config)
    stores.append(("DeepMapping (monolithic)", None, mono,
                   time.perf_counter() - start))
    for n_shards in SHARD_COUNTS:
        start = time.perf_counter()
        store = repro.build(
            table, config,
            sharding=ShardingConfig(n_shards=n_shards, strategy="range"))
        stores.append((f"sharded x{n_shards}", n_shards, store,
                       time.perf_counter() - start))

    # Interleave the timing passes so machine drift hits every store alike;
    # keep each store's best pass.
    best = {label: float("inf") for label, *_ in stores}
    for _ in range(RUNS):
        for label, _, store, _ in stores:
            start = time.perf_counter()
            result = store.lookup(query)
            best[label] = min(best[label], time.perf_counter() - start)
            assert result.found.all(), "benchmark queries only existing keys"

    rows = []
    throughput = {}
    for label, n_shards, store, build_seconds in stores:
        keys_per_second = BATCH / best[label]
        if n_shards is not None:
            throughput[n_shards] = keys_per_second
            store.close()
        rows.append([label, build_seconds,
                     store.storage_bytes() / 1024.0, keys_per_second / 1e3])

    report = format_table(
        ["store", "build seconds", "storage KB", "lookup kkeys/s"],
        rows,
        title=(f"Batched-lookup throughput vs. shard count "
               f"(rows={ROWS}, batch={BATCH}, range strategy)"),
    )
    write_report("sharding", report)
    return throughput


def test_sharding_throughput():
    throughput = run_sharding_benchmark()
    # The acceptance bar: 4 shards beat 1 shard on a >=100k-key batch.
    assert throughput[4] > throughput[1], (
        f"4-shard throughput {throughput[4]:.0f} keys/s did not beat "
        f"1-shard {throughput[1]:.0f} keys/s"
    )


if __name__ == "__main__":
    result = run_sharding_benchmark()
    scale = result[4] / result[1]
    print(f"4-shard vs 1-shard throughput: {scale:.2f}x")
