"""Ablations of DeepMapping's design choices (DESIGN.md checklist).

Not a paper table — these isolate the decisions the paper argues for:

1. **Hybrid vs. model-only**: forcing a model to 100% accuracy (so no
   T_aux is needed) costs far more bytes than a small model plus an
   exception table (the paper's Sec. IV-B argument and Fig. 6 observation).
2. **Shared trunk vs. per-column models**: multi-task sharing beats
   training one network per column at equal budget (Sec. IV-A).
3. **Aux partition size sweep**: the Sec. V-A5 tuning discussion.
4. **Aux codec (Z vs L)**: the DM-Z / DM-L trade-off.
5. **Existence vector**: without V_exist every absent key would
   hallucinate a value (Sec. IV-B's spurious-result hazard).
"""

import numpy as np
import pytest

from repro.bench import format_table, key_batches, measure_lookup
from repro.core import DeepMapping, DeepMappingConfig
from repro.data import synthetic, tpch

from conftest import dm_config, write_report


def test_ablation_hybrid_vs_model_only(benchmark):
    """A small model + aux table beats inflating the model to 100%."""
    table = synthetic.multi_column(4000, "high")
    hybrid = DeepMapping.fit(table, dm_config("high"))
    hybrid_report = hybrid.size_report()

    rows = [["hybrid (64/32 + aux)", hybrid_report.model_bytes / 1024.0,
             hybrid_report.aux_bytes / 1024.0,
             hybrid_report.total_bytes / 1024.0,
             100 * hybrid_report.memorized_fraction]]
    # Grow the model until it memorizes everything (or we give up).
    model_only_total = None
    for width in (128, 256, 512):
        cfg = dm_config("high", shared_sizes=(width,),
                        private_sizes=(width // 2,), epochs=250)
        dm = DeepMapping.fit(table, cfg)
        report = dm.size_report()
        rows.append([f"model-only candidate ({width}/{width // 2})",
                     report.model_bytes / 1024.0,
                     report.aux_bytes / 1024.0,
                     report.total_bytes / 1024.0,
                     100 * report.memorized_fraction])
        if report.memorized_fraction == 1.0:
            model_only_total = report.total_bytes
            break
    report_text = format_table(
        ["configuration", "model KB", "aux KB", "total KB", "memorized %"],
        rows, title="Ablation 1: hybrid vs. grow-the-model")
    write_report("ablation_hybrid_vs_model_only", report_text)

    if model_only_total is not None:
        assert hybrid_report.total_bytes < model_only_total

    batch = key_batches(table, 1000, repeats=1)[0]
    benchmark.pedantic(lambda: hybrid.lookup(batch), rounds=3, iterations=1)


def test_ablation_shared_trunk_vs_per_column(benchmark):
    """One multi-task network vs. one single-task network per column."""
    table = synthetic.multi_column(4000, "high")
    shared = DeepMapping.fit(table, dm_config("high"))

    separate_total = 0
    separate_mis = 0
    for column in table.value_columns:
        single = table.take(np.arange(table.n_rows))
        from repro.data import ColumnTable

        sub = ColumnTable({"key": table.column("key"),
                           column: table.column(column)}, key=("key",))
        dm = DeepMapping.fit(sub, dm_config("high"))
        rep = dm.size_report()
        separate_total += rep.total_bytes
        separate_mis += rep.n_in_aux

    shared_rep = shared.size_report()
    report_text = format_table(
        ["configuration", "total KB", "rows in aux"],
        [["shared trunk (multi-task)", shared_rep.total_bytes / 1024.0,
          shared_rep.n_in_aux],
         ["per-column models", separate_total / 1024.0, separate_mis]],
        title="Ablation 2: shared trunk vs. per-column models")
    write_report("ablation_shared_trunk", report_text)

    # Sharing the trunk must not cost more storage in total.
    assert shared_rep.total_bytes < separate_total

    batch = key_batches(table, 1000, repeats=1)[0]
    benchmark.pedantic(lambda: shared.lookup(batch), rounds=3, iterations=1)


def test_ablation_aux_partition_size(benchmark):
    """Sec. V-A5: partition size trades loading against decompression."""
    table = synthetic.multi_column(10_000, "low")
    rows = []
    latencies = {}
    for partition in (2 * 1024, 16 * 1024, 128 * 1024):
        dm = DeepMapping.fit(table, dm_config(
            "low", aux_partition_bytes=partition))
        batches = key_batches(table, 2000, repeats=3, seed=5)
        latency = measure_lookup(dm, batches) * 1000.0
        latencies[partition] = latency
        rows.append([f"{partition // 1024}KB", dm.aux.partition_count,
                     dm.storage_bytes() / 1024.0, latency])
    report_text = format_table(
        ["aux partition", "partitions", "storage KB", "B=2000 latency ms"],
        rows, title="Ablation 3: auxiliary partition size sweep")
    write_report("ablation_partition_size", report_text)

    dm = DeepMapping.fit(table, dm_config("low"))
    batch = key_batches(table, 2000, repeats=1)[0]
    benchmark.pedantic(lambda: dm.lookup(batch), rounds=3, iterations=1)


def test_ablation_aux_codec(benchmark):
    """DM-Z vs DM-L: the fast/large vs slow/small auxiliary codec."""
    table = synthetic.multi_column(10_000, "low")
    from repro.bench.runner import dm_with_codec

    dm_z = DeepMapping.fit(table, dm_config("low", aux_codec="zstd"))
    dm_l = dm_with_codec(dm_z, "lzma")
    batches = key_batches(table, 2000, repeats=3, seed=6)
    rows = [
        ["DM-Z", dm_z.storage_bytes() / 1024.0,
         measure_lookup(dm_z, batches) * 1000.0],
        ["DM-L", dm_l.storage_bytes() / 1024.0,
         measure_lookup(dm_l, batches) * 1000.0],
    ]
    report_text = format_table(
        ["variant", "storage KB", "B=2000 latency ms"],
        rows, title="Ablation 4: auxiliary codec (Z vs L)")
    write_report("ablation_aux_codec", report_text)

    # LZMA must not be larger than the fast codec.
    assert rows[1][1] <= rows[0][1]

    batch = key_batches(table, 2000, repeats=1)[0]
    benchmark.pedantic(lambda: dm_z.lookup(batch), rounds=3, iterations=1)


def test_ablation_multi_base_key_encoding(benchmark):
    """Single-base vs multi-base key features on a cross-product table.

    TPC-DS customer_demographics columns are mixed-radix digits of the
    surrogate key; residues modulo 7/4 are invisible to base-10 digit
    features, so a small model cannot learn them.  Concatenating co-prime
    base expansions (10, 7, 4) makes every dimension CRT-readable and the
    table collapses into the model — our reproduction-side extension of
    the paper's encoding.
    """
    from repro.data import tpcds

    table = tpcds.generate("customer_demographics", scale=0.25, seed=13)
    rows = []
    reports = {}
    for label, base in (("base 10 (paper)", 10),
                        ("bases (10, 7, 4)", (10, 7, 4))):
        cfg = dm_config("high", key_base=base, epochs=200, batch_size=256,
                        shared_sizes=(48,), private_sizes=(24,), tol=1e-6)
        dm = DeepMapping.fit(table, cfg)
        report = dm.size_report()
        reports[label] = report
        rows.append([label, 100 * report.memorized_fraction,
                     report.total_bytes / 1024.0,
                     report.compression_ratio])
    report_text = format_table(
        ["key encoding", "memorized %", "total KB", "ratio"],
        rows, title="Ablation 7: single- vs multi-base key encoding "
                    "(customer_demographics)")
    write_report("ablation_multi_base", report_text)

    assert (reports["bases (10, 7, 4)"].memorized_fraction
            > reports["base 10 (paper)"].memorized_fraction + 0.3)

    batch = key_batches(table, 1000, repeats=1)[0]
    dm = DeepMapping.fit(table, dm_config("high", key_base=(10, 7, 4),
                                          epochs=60, batch_size=256))
    benchmark.pedantic(lambda: dm.lookup(batch), rounds=3, iterations=1)


def test_ablation_warm_start_retraining(benchmark):
    """Paper Sec. V-D future work: model reuse for the retrain path.

    A warm-started retrain (initialized from the previous model) reaches
    the early-stopping tolerance in no more epochs than a cold retrain,
    cutting the dominant cost of the DM-Z1 variant.
    """
    import time

    table = synthetic.multi_column(6000, "high")
    config = dm_config("high", tol=1e-4)
    dm = DeepMapping.fit(table, config)

    t0 = time.perf_counter()
    warm = DeepMapping.fit(table, config,
                           warm_start=dm.session.state_arrays())
    warm_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold = DeepMapping.fit(table, config)
    cold_seconds = time.perf_counter() - t0

    report_text = format_table(
        ["retrain", "epochs run", "seconds", "final ratio"],
        [["warm start", warm.last_training.epochs_run, warm_seconds,
          warm.size_report().compression_ratio],
         ["cold start", cold.last_training.epochs_run, cold_seconds,
          cold.size_report().compression_ratio]],
        title="Ablation 6: warm-started vs cold retraining")
    write_report("ablation_warm_start", report_text)

    assert warm.last_training.epochs_run <= cold.last_training.epochs_run

    batch = key_batches(table, 1000, repeats=1)[0]
    benchmark.pedantic(lambda: warm.lookup(batch), rounds=3, iterations=1)


def test_ablation_existence_vector(benchmark):
    """Without V_exist, absent keys hallucinate plausible values."""
    table = tpch.generate("orders", scale=0.2, seed=12)  # sparse keys
    dm = DeepMapping.fit(table, dm_config("low"))
    absent = table.column("o_orderkey") + 1  # gaps of 4 guarantee absence

    masked = dm.lookup({"o_orderkey": absent})
    hallucinated_with_vexist = int(masked.found.sum())

    # Simulate dropping the existence check: run the raw model path.
    flat, _ = dm.key_codec.try_flatten({"o_orderkey": absent})
    raw_predictions = dm.session.run(dm.key_encoder.encode(flat))
    hallucinated_without = int(raw_predictions["o_orderstatus"].size)

    report_text = format_table(
        ["configuration", "absent keys probed", "spurious answers"],
        [["with V_exist", absent.size, hallucinated_with_vexist],
         ["without V_exist", absent.size, hallucinated_without]],
        title="Ablation 5: existence vector necessity")
    write_report("ablation_existence_vector", report_text)

    assert hallucinated_with_vexist == 0
    assert hallucinated_without == absent.size  # every probe hallucinates

    batch = key_batches(table, 1000, repeats=1)[0]
    benchmark.pedantic(lambda: dm.lookup(batch), rounds=3, iterations=1)
