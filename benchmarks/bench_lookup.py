"""Lookup-path micro-benchmark: compiled fused kernel vs reference path.

Times batched exact-match lookups at mixed hit/miss ratios against a
monolithic :class:`~repro.core.deep_mapping.DeepMapping` and a 4-shard
:class:`~repro.shard.ShardedDeepMapping`, once through the reference
``InferenceSession`` path (``compiled_lookup=False`` — the pre-compiled-
engine read path: per-batch weight casts, dense one-hot GEMM, inference
over every query key) and once through the compiled
:class:`~repro.nn.compiled.CompiledSession` kernel (cached float32
weights, grouped-gather first layer, existence-gated batches).

Writes ``BENCH_lookup.json`` at the repo root so the lookup-throughput
trajectory is machine-readable from PR to PR; ``docs/performance.md``
explains how to read and refresh it.  Run::

    PYTHONPATH=src python benchmarks/bench_lookup.py           # full
    PYTHONPATH=src python benchmarks/bench_lookup.py --smoke   # CI seconds

The full run enforces the acceptance bar: >= 2.5x compiled-vs-reference
throughput on a 100k-key, 50%-hit batch against the monolithic store on
a single core.  Smoke mode shrinks everything and writes its JSON under
``benchmarks/results/`` instead of the repo root.
"""

import argparse
import json
import os
import time

import numpy as np

import repro
from repro.bench import format_table
from repro.core import DeepMappingConfig
from repro.data import synthetic
from repro.shard import ShardingConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

HIT_RATIOS = (1.0, 0.5, 0.0)
ACCEPTANCE_SPEEDUP = 2.5  # monolithic, 50%-hit batch


def bench_config(smoke: bool) -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=2 if smoke else 8,
        batch_size=4096,
        shared_sizes=(64,),
        private_sizes=(32,),
        aux_partition_bytes=32 * 1024,
    )


def build_queries(table, batch: int, rng):
    """One query batch per hit ratio: hits sampled from live keys, misses
    from the in-domain gaps left by ``domain_factor`` (so the existence
    index, not domain validation, rejects them — the realistic negative
    lookup at scale)."""
    key_name = table.key[0]
    keys = table.column(key_name)
    domain = np.arange(keys.min(), keys.max() + 1, dtype=np.int64)
    absent = np.setdiff1d(domain, keys)
    queries = {}
    for ratio in HIT_RATIOS:
        n_hits = int(round(batch * ratio))
        parts = []
        if n_hits:
            parts.append(rng.choice(keys, size=n_hits, replace=True))
        if batch - n_hits:
            parts.append(rng.choice(absent, size=batch - n_hits,
                                    replace=True))
        query = np.concatenate(parts)
        rng.shuffle(query)
        queries[ratio] = {key_name: query}
    return queries


def run_lookup_benchmark(rows: int = 120_000, batch: int = 100_000,
                         runs: int = 5, smoke: bool = False):
    table = synthetic.single_column(rows, "high", seed=1, domain_factor=2.0)
    rng = np.random.default_rng(0)
    queries = build_queries(table, batch, rng)
    config = bench_config(smoke)

    stores = [
        ("monolithic", 1, repro.build(table, config)),
        ("sharded4", 4, repro.build(
            table, config,
            sharding=ShardingConfig(n_shards=4, strategy="range"))),
    ]

    # (store, hit_ratio, path) -> best seconds.  Passes are interleaved so
    # machine drift hits every cell alike; each cell keeps its best run.
    best = {}
    for path_label, compiled in (("reference", False), ("compiled", True)):
        config.compiled_lookup = compiled  # shared by every store/shard
        for label, _, store in stores:
            for ratio in HIT_RATIOS:
                store.lookup(queries[ratio])  # warm engines and caches
        for _ in range(runs):
            for label, _, store in stores:
                for ratio in HIT_RATIOS:
                    key = (label, ratio, path_label)
                    start = time.perf_counter()
                    result = store.lookup(queries[ratio])
                    elapsed = time.perf_counter() - start
                    best[key] = min(best.get(key, float("inf")), elapsed)
                    expected = int(round(batch * ratio))
                    assert int(result.found.sum()) == expected, (
                        f"{key}: found {int(result.found.sum())} of an "
                        f"expected {expected} hits"
                    )
    config.compiled_lookup = True

    results = []
    for label, n_shards, store in stores:
        for ratio in HIT_RATIOS:
            for path_label in ("reference", "compiled"):
                seconds = best[(label, ratio, path_label)]
                results.append({
                    "store": label,
                    "n_shards": n_shards,
                    "hit_ratio": ratio,
                    "path": path_label,
                    "seconds": seconds,
                    "keys_per_second": batch / seconds,
                })
    speedups = {
        label: {
            str(ratio): (best[(label, ratio, "reference")]
                         / best[(label, ratio, "compiled")])
            for ratio in HIT_RATIOS
        }
        for label, _, _ in stores
    }

    report = {
        "benchmark": "lookup",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "smoke" if smoke else "full",
        "rows": rows,
        "batch": batch,
        "runs": runs,
        "hit_ratios": list(HIT_RATIOS),
        "config": {
            "epochs": config.epochs,
            "shared_sizes": list(config.shared_sizes),
            "private_sizes": list(config.private_sizes),
            "weight_dtype": config.weight_dtype,
            "inference_batch": config.inference_batch,
        },
        "results": results,
        "speedup_compiled_vs_reference": speedups,
        "acceptance": {
            "metric": "monolithic speedup at hit_ratio=0.5",
            "target": ACCEPTANCE_SPEEDUP,
            "measured": speedups["monolithic"]["0.5"],
            "passed": speedups["monolithic"]["0.5"] >= ACCEPTANCE_SPEEDUP,
        },
    }

    table_rows = [
        [r["store"], r["hit_ratio"], r["path"], r["seconds"] * 1e3,
         r["keys_per_second"] / 1e3]
        for r in results
    ]
    print(format_table(
        ["store", "hit ratio", "path", "best ms", "kkeys/s"],
        table_rows,
        title=(f"Batched-lookup latency, compiled vs reference "
               f"(rows={rows}, batch={batch}, best of {runs})"),
    ))
    for label, _, store in stores:
        if hasattr(store, "close"):
            store.close()
    return report


def write_json(report, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[benchmark JSON saved to {out_path}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config for CI (seconds, not minutes); "
                             "writes under benchmarks/results/ instead of "
                             "the repo root")
    parser.add_argument("--out", default=None,
                        help="override the output JSON path")
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_lookup_benchmark(rows=4000, batch=3000, runs=2,
                                      smoke=True)
        out = args.out or os.path.join(RESULTS_DIR,
                                       "BENCH_lookup_smoke.json")
    else:
        report = run_lookup_benchmark()
        out = args.out or os.path.join(REPO_ROOT, "BENCH_lookup.json")
    write_json(report, out)
    measured = report["acceptance"]["measured"]
    print(f"compiled vs reference, monolithic 50%-hit batch: "
          f"{measured:.2f}x (target {ACCEPTANCE_SPEEDUP}x)")
    if not args.smoke and not report["acceptance"]["passed"]:
        print("ACCEPTANCE FAILED")
        return 1
    return 0


def test_lookup_speedup():
    """Benchmark-suite gate (not tier-1): compiled beats reference by the
    acceptance factor on the monolithic 100k-key 50%-hit batch."""
    report = run_lookup_benchmark()
    write_json(report, os.path.join(REPO_ROOT, "BENCH_lookup.json"))
    assert report["acceptance"]["passed"], report["acceptance"]


if __name__ == "__main__":
    raise SystemExit(main())
