"""Pipelined read-path benchmark: staged shard lookups + warm reopens.

Two claims are tracked:

1. **Pipelined vs barrier throughput.** `ShardedDeepMapping.lookup` runs
   the staged read path (one (shard, key) sort shared by every stage,
   per-shard ``LookupPlan`` jobs with aux-gated inference, streaming
   scatter into preallocated outputs); `lookup_barrier` keeps the
   pre-pipeline path (stable sort by shard only, opaque per-shard
   lookups, concatenate + inverse-permute behind a barrier).  On the
   multi-shard 100k-key 50%-hit batch the pipelined path must be
   >= 1.25x the barrier baseline, with bit-identical results.
2. **Warm vs cold `repro.open(url, writable=False)`.** A cold read-only
   open mmaps the payloads, deserializes once and builds aux
   partitions; a warm open of the same unchanged store wraps the cached
   bundle.  Warm must be >= 3x faster than cold.

Writes ``BENCH_pipeline.json`` at the repo root (the tracked
trajectory); ``docs/performance.md`` explains how to read it.  Run::

    PYTHONPATH=src python benchmarks/bench_pipeline.py           # full
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke   # CI

Smoke mode shrinks the build so it finishes in CI seconds, still
asserts bit-identical results on every path, and fails if the
pipelined path falls below the freshly measured barrier baseline
(ratio < 1.0 with a noise guard) — the regression gate behind the CI
step.  Smoke JSON goes under ``benchmarks/results/``.
"""

import argparse
import json
import os
import shutil
import tempfile
import time

import numpy as np

import repro
from repro.bench import format_table
from repro.core import DeepMappingConfig
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.storage import payload_cache

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

ACCEPTANCE_PIPELINE_SPEEDUP = 1.25  # pipelined vs barrier, full run
ACCEPTANCE_WARM_SPEEDUP = 3.0       # warm vs cold read-only reopen
SMOKE_FLOOR = 0.8                   # pipelined/barrier CI gate (noise guard)


def bench_config(smoke: bool) -> DeepMappingConfig:
    return DeepMappingConfig(
        epochs=2 if smoke else 8,
        batch_size=4096,
        shared_sizes=(64,),
        private_sizes=(32,),
        aux_partition_bytes=32 * 1024,
    )


def build_query(table, batch: int, rng):
    """A 50%-hit batch: half live keys, half in-domain gaps, shuffled."""
    key_name = table.key[0]
    keys = table.column(key_name)
    domain = np.arange(keys.min(), keys.max() + 1, dtype=np.int64)
    absent = np.setdiff1d(domain, keys)
    n_hits = batch // 2
    query = np.concatenate([
        rng.choice(keys, size=n_hits, replace=True),
        rng.choice(absent, size=batch - n_hits, replace=True),
    ])
    rng.shuffle(query)
    return {key_name: query}


def interleaved_best(jobs, runs: int):
    """Best seconds per labelled thunk, passes interleaved (drift-fair)."""
    best = {label: float("inf") for label, _ in jobs}
    for _ in range(runs):
        for label, fn in jobs:
            start = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return best


def assert_identical(result, reference, value_names, label):
    assert np.array_equal(result.found, reference.found), label
    for column in value_names:
        assert np.array_equal(result.values[column],
                              reference.values[column]), (label, column)


def run_pipeline_benchmark(rows: int = 120_000, batch: int = 100_000,
                           shards: int = 4, runs: int = 7,
                           smoke: bool = False):
    from repro.data import synthetic

    table = synthetic.single_column(rows, "high", seed=1, domain_factor=2.0)
    rng = np.random.default_rng(0)
    query = build_query(table, batch, rng)
    config = bench_config(smoke)
    workdir = tempfile.mkdtemp(prefix="bench-pipeline-")

    store = ShardedDeepMapping.fit(table, config,
                                   ShardingConfig(n_shards=shards))
    store.lookup(query)          # warm engines, pool, scratch
    store.lookup_barrier(query)
    reference = store.lookup_barrier(query)  # the serial reference path
    assert_identical(store.lookup(query), reference, store.value_names,
                     "pipelined vs barrier")

    best = interleaved_best([
        ("barrier", lambda: store.lookup_barrier(query)),
        ("pipelined", lambda: store.lookup(query)),
    ], runs)
    speedup = best["barrier"] / best["pipelined"]

    # ---- warm vs cold read-only reopen --------------------------------
    url = os.path.join(workdir, "store")
    store.save(url)
    payload_cache().clear()
    start = time.perf_counter()
    cold_store = repro.open(url, writable=False)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm_store = repro.open(url, writable=False)
    warm_seconds = time.perf_counter() - start
    warm_speedup = cold_seconds / warm_seconds
    for label, reopened in (("cold", cold_store), ("warm", warm_store)):
        assert_identical(reopened.lookup(query), reference,
                         store.value_names, f"{label} read-only reopen")

    report = {
        "benchmark": "pipeline",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "smoke" if smoke else "full",
        "rows": rows,
        "batch": batch,
        "shards": shards,
        "runs": runs,
        "hit_ratio": 0.5,
        "aux_ratio": store.aux_ratio(),
        "config": {
            "epochs": config.epochs,
            "shared_sizes": list(config.shared_sizes),
            "private_sizes": list(config.private_sizes),
        },
        "lookup": {
            "barrier_seconds": best["barrier"],
            "pipelined_seconds": best["pipelined"],
            "barrier_keys_per_second": batch / best["barrier"],
            "pipelined_keys_per_second": batch / best["pipelined"],
            "speedup_pipelined_vs_barrier": speedup,
        },
        "reopen": {
            "cold_open_seconds": cold_seconds,
            "warm_open_seconds": warm_seconds,
            "speedup_warm_vs_cold": warm_speedup,
        },
        "acceptance": {
            "metric": "pipelined vs barrier lookup speedup on the "
                      f"{shards}-shard {batch}-key 50%-hit batch, and "
                      "warm vs cold writable=False reopen",
            "pipeline_target": ACCEPTANCE_PIPELINE_SPEEDUP,
            "pipeline_measured": speedup,
            "warm_target": ACCEPTANCE_WARM_SPEEDUP,
            "warm_measured": warm_speedup,
            "passed": (speedup >= ACCEPTANCE_PIPELINE_SPEEDUP
                       and warm_speedup >= ACCEPTANCE_WARM_SPEEDUP),
        },
    }

    print(format_table(
        ["path", "best ms", "keys/s"],
        [["barrier", best["barrier"] * 1e3,
          int(batch / best["barrier"])],
         ["pipelined", best["pipelined"] * 1e3,
          int(batch / best["pipelined"])]],
        title=(f"Sharded lookup: pipelined vs barrier (rows={rows}, "
               f"batch={batch}, shards={shards}, best of {runs})"),
    ))
    print(f"pipelined speedup: {speedup:.2f}x "
          f"(aux_ratio={store.aux_ratio():.3f})")
    print(f"read-only reopen: cold {cold_seconds * 1e3:.1f} ms, "
          f"warm {warm_seconds * 1e3:.1f} ms "
          f"({warm_speedup:.1f}x)")

    cold_store.close()
    warm_store.close()
    store.close()
    shutil.rmtree(workdir, ignore_errors=True)
    return report


def write_json(report, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[benchmark JSON saved to {out_path}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI config (results not tracked)")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--runs", type=int, default=None)
    args = parser.parse_args()

    if args.smoke:
        defaults = dict(rows=24_000, batch=40_000, shards=4, runs=3)
        out_path = os.path.join(RESULTS_DIR, "BENCH_pipeline.json")
    else:
        defaults = dict(rows=120_000, batch=100_000, shards=4, runs=7)
        out_path = os.path.join(REPO_ROOT, "BENCH_pipeline.json")
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)

    report = run_pipeline_benchmark(rows=args.rows, batch=args.batch,
                                    shards=args.shards, runs=args.runs,
                                    smoke=args.smoke)
    write_json(report, out_path)

    speedup = report["lookup"]["speedup_pipelined_vs_barrier"]
    if args.smoke:
        # CI regression gate: the pipelined path must not fall below the
        # barrier baseline measured in the same process (SMOKE_FLOOR
        # absorbs small-batch timing noise on shared runners).
        if speedup < SMOKE_FLOOR:
            print(f"SMOKE GATE FAILED: pipelined throughput {speedup:.2f}x "
                  f"of barrier baseline (floor {SMOKE_FLOOR:.2f})")
            return 1
        print(f"smoke gate: pipelined {speedup:.2f}x barrier "
              f"(floor {SMOKE_FLOOR:.2f}) — "
              "full acceptance tracked in BENCH_pipeline.json")
        return 0
    if not report["acceptance"]["passed"]:
        print(f"ACCEPTANCE FAILED: pipelined {speedup:.2f}x "
              f"(target {ACCEPTANCE_PIPELINE_SPEEDUP}x), warm reopen "
              f"{report['reopen']['speedup_warm_vs_cold']:.1f}x "
              f"(target {ACCEPTANCE_WARM_SPEEDUP}x)")
        return 1
    print(f"acceptance: pipelined {speedup:.2f}x "
          f"(target >= {ACCEPTANCE_PIPELINE_SPEEDUP}x), warm reopen "
          f"{report['reopen']['speedup_warm_vs_cold']:.1f}x "
          f"(target >= {ACCEPTANCE_WARM_SPEEDUP}x)")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
