"""Paper Table IV: inserts that do NOT follow the base distribution.

High-correlation rows are inserted into the low-correlation dataset and
vice versa.  Expected shape (paper): a DM trained on low-correlation data
is robust to high-correlation inserts (storage grows more slowly than in
Table III); inserting low-correlation rows into the high-correlation
structure bloats the auxiliary table faster, and the DM-Z1 retrain
recovers the compression ratio.
"""

import pytest

from bench_table3_insert_same_dist import STEP_ROWS, run_insert_experiment
from repro.data import synthetic

from conftest import dm_config
from repro.bench.runner import build_system


@pytest.mark.parametrize("correlation,insert_correlation", [
    ("low", "high"),
    ("high", "low"),
])
def test_table4(benchmark, correlation, insert_correlation):
    data = run_insert_experiment(
        correlation, insert_correlation,
        title=(f"Table IV [base={correlation}-correlation, inserts="
               f"{insert_correlation}-correlation]"),
        report_name=f"table4_{correlation}_base",
    )
    dm = data[("DM-Z", "storage (KB)")]
    dm1 = data[("DM-Z1", "storage (KB)")]
    # Paper shape: the retraining variant stays in the lazy variant's
    # ballpark (at full scale it ends smaller; at 1/100 scale a retrain on
    # noise-contaminated data costs a little base memorization even with
    # warm-started training — see EXPERIMENTS.md).
    assert dm1[-1] <= dm[-1] * 1.25
    if correlation == "high":
        # Cross-distribution inserts into the high-correlation structure
        # grow its auxiliary table visibly (the paper's Table IV remark).
        assert dm[-1] > dm[0]

    base = synthetic.multi_column(2000, correlation)
    dm_sys = build_system(
        "DM-Z", base,
        dm_config=dm_config(correlation, key_headroom_fraction=1.0))
    batch = synthetic.insert_batch(base, STEP_ROWS, insert_correlation)

    def insert_once():
        dm_sys.insert(batch)
        dm_sys.delete({"key": batch.column("key")})

    benchmark.pedantic(insert_once, rounds=3, iterations=1)
