"""LocalDirBackend mmap read mode and read-only enforcement."""

import numpy as np
import pytest

from repro.storage import (InMemoryBackend, LocalDirBackend, ZipBackend,
                           read_blob_view)


class TestReadView:
    def test_view_matches_bytes(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        backend.write_bytes("a", b"0123456789")
        view = backend.read_view("a")
        assert bytes(view) == b"0123456789"
        assert view.readonly

    def test_view_survives_atomic_replacement(self, tmp_path):
        """os.replace retires the inode, not the mapping: views taken
        before a re-save stay valid and keep the *old* content."""
        backend = LocalDirBackend(str(tmp_path))
        backend.write_bytes("a", b"old content")
        view = backend.read_view("a")
        backend.write_bytes("a", b"NEW")
        assert bytes(view) == b"old content"
        assert backend.read_bytes("a") == b"NEW"

    def test_frombuffer_array_keeps_mapping_alive(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        data = np.arange(1024, dtype=np.int64)
        backend.write_bytes("a", data.tobytes())
        arr = np.frombuffer(backend.read_view("a"), dtype=np.int64)
        np.testing.assert_array_equal(arr, data)
        assert not arr.flags.writeable

    def test_empty_blob_view(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        backend.write_bytes("a", b"")
        assert bytes(backend.read_view("a")) == b""

    def test_missing_blob_raises_keyerror(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        with pytest.raises(KeyError):
            backend.read_view("nope")

    def test_helper_falls_back_without_capability(self):
        class Plain:
            def read_bytes(self, name):
                return b"fallback"
        assert bytes(read_blob_view(Plain(), "x")) == b"fallback"

    def test_helper_uses_capability(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        backend.write_bytes("a", b"zz")
        assert bytes(read_blob_view(backend, "a")) == b"zz"

    def test_mem_and_zip_views(self, tmp_path):
        mem = InMemoryBackend()
        mem.write_bytes("a", b"m")
        assert bytes(mem.read_view("a")) == b"m"
        zipped = ZipBackend(str(tmp_path / "c.zip"))
        zipped.write_bytes("a", b"z")
        assert bytes(zipped.read_view("a")) == b"z"


class TestReadOnlyBackend:
    def test_writes_refused(self, tmp_path):
        rw = LocalDirBackend(str(tmp_path))
        rw.write_bytes("a", b"1")
        ro = LocalDirBackend(str(tmp_path), writable=False)
        assert ro.read_bytes("a") == b"1"
        with pytest.raises(PermissionError):
            ro.write_bytes("b", b"2")
        with pytest.raises(PermissionError):
            ro.delete("a")
        assert rw.read_bytes("a") == b"1"

    def test_readonly_does_not_create_directory(self, tmp_path):
        target = tmp_path / "absent"
        LocalDirBackend(str(target), writable=False)
        assert not target.exists()
