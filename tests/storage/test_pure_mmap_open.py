"""Read accounting for ``writable=False`` cold opens.

The pure-mmap claim (``docs/performance.md``): a cold read-only open of
an array-first (v2) payload issues exactly one ``read_view`` per shard
blob — never a materializing ``read_bytes`` — its weights and existence
bits come up as read-only views into that mapping, and no auxiliary
partition is compressed or written until the table is first probed.
Legacy nested-pickled payloads must still load (eagerly, as before).
"""

import numpy as np
import pytest

import repro
from repro.data import synthetic
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.storage import LocalDirBackend
from repro.storage.blob_cache import payload_cache
from repro.storage.disk import DiskStore

from ..core.conftest import fast_config


@pytest.fixture
def saved_store(tmp_path):
    table = synthetic.single_column(400, "high", seed=2)
    store = ShardedDeepMapping.fit(
        table, fast_config(epochs=2),
        ShardingConfig(n_shards=2, strategy="range"))
    url = str(tmp_path / "store")
    store.save(url)
    yield store, table, url
    store.close()


@pytest.fixture
def read_calls(monkeypatch):
    """Record every blob name LocalDirBackend reads, by access kind."""
    calls = {"read_bytes": [], "read_view": []}
    orig_bytes = LocalDirBackend.read_bytes
    orig_view = LocalDirBackend.read_view

    def counting_bytes(self, name):
        calls["read_bytes"].append(name)
        return orig_bytes(self, name)

    def counting_view(self, name):
        calls["read_view"].append(name)
        return orig_view(self, name)

    monkeypatch.setattr(LocalDirBackend, "read_bytes", counting_bytes)
    monkeypatch.setattr(LocalDirBackend, "read_view", counting_view)
    return calls


@pytest.fixture
def partition_writes(monkeypatch):
    """Count DiskStore blob writes (aux-partition materialization)."""
    count = [0]
    orig = DiskStore.write

    def counting(self, *args, **kwargs):
        count[0] += 1
        return orig(self, *args, **kwargs)

    monkeypatch.setattr(DiskStore, "write", counting)
    return count


def payload_blobs(names):
    return [n for n in names if n.endswith(".dm")]


class TestPureMmapColdOpen:
    def test_no_materializing_payload_reads(self, saved_store, read_calls):
        _, _, url = saved_store
        payload_cache().clear()
        read_calls["read_bytes"].clear()
        read_calls["read_view"].clear()
        opened = repro.open(url, writable=False)
        # Shard payloads are mapped, never copied out as bytes; the
        # (small, JSON) manifest may use whichever access it likes.
        assert payload_blobs(read_calls["read_bytes"]) == []
        assert len(payload_blobs(read_calls["read_view"])) == 2
        opened.close()

    def test_exist_and_weights_are_views_into_the_payload(self, saved_store):
        _, _, url = saved_store
        payload_cache().clear()
        opened = repro.open(url, writable=False)
        for shard in opened.shards:
            if shard is None:
                continue
            base = np.frombuffer(shard._shared_bundle["payload_view"],
                                 dtype=np.uint8)
            arrays = [w for layer in shard.session._shared for w in layer]
            arrays += [w for chain in shard.session._heads.values()
                       for layer in chain for w in layer]
            exist = shard.exist
            arrays.append(exist._bits.packed if hasattr(exist, "_bits")
                          else exist._keys)
            for arr in arrays:
                arr = np.asarray(arr)
                assert not arr.flags.writeable
                assert np.shares_memory(base, arr)
        opened.close()

    def test_aux_partitions_deferred_until_first_probe(self, saved_store,
                                                       partition_writes):
        store, table, url = saved_store
        query = {table.key[0]: np.concatenate([
            table.column(table.key[0])[:100],
            np.array([10**8], dtype=np.int64)])}
        reference = store.lookup_barrier(query)

        payload_cache().clear()
        partition_writes[0] = 0
        opened = repro.open(url, writable=False)
        assert partition_writes[0] == 0, (
            "cold read-only open materialized aux partitions")
        # First probe builds the partitions — results are identical to
        # the eagerly-built writable store's.
        result = opened.lookup(query)
        np.testing.assert_array_equal(result.found, reference.found)
        for column in store.value_names:
            np.testing.assert_array_equal(result.values[column],
                                          reference.values[column])
        opened.close()

    def test_writable_open_stays_eager(self, saved_store, partition_writes):
        _, _, url = saved_store
        partition_writes[0] = 0
        opened = repro.open(url, writable=True)
        assert partition_writes[0] > 0
        opened.close()


class TestLegacyPayloadCompat:
    def test_legacy_nested_bytes_payload_still_loads(self, saved_store,
                                                     partition_writes):
        store, table, url = saved_store
        backend = LocalDirBackend(url)
        for ordinal, shard in enumerate(store.shards):
            if shard is not None:
                backend.write_bytes(f"shard-{ordinal:04d}.dm",
                                    shard._to_payload_legacy())
        query = {table.key[0]: np.concatenate([
            table.column(table.key[0])[:100],
            np.array([10**8], dtype=np.int64)])}
        reference = store.lookup_barrier(query)

        payload_cache().clear()
        partition_writes[0] = 0
        opened = repro.open(url, writable=False)
        # The compatibility path keeps its historical eager aux build.
        assert partition_writes[0] > 0
        result = opened.lookup(query)
        np.testing.assert_array_equal(result.found, reference.found)
        for column in store.value_names:
            np.testing.assert_array_equal(result.values[column],
                                          reference.values[column])
        opened.close()
