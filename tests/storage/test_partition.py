"""Tests for SortedPartitionStore (shared by T_aux and array baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BufferPool, SortedPartitionStore, StoreStats


def build_store(n=1000, codec="zstd", target=4096, dict_encode=False, pool=None):
    rng = np.random.default_rng(7)
    keys = rng.permutation(np.arange(0, n * 3, 3, dtype=np.int64))  # gaps of 3
    status = rng.choice(np.array(["P", "O", "F"], dtype=object), size=n)
    qty = rng.integers(0, 50, size=n).astype(np.int64)
    store = SortedPartitionStore(
        codec=codec, target_partition_bytes=target, dict_encode=dict_encode, pool=pool
    )
    store.build(keys, {"status": status, "qty": qty})
    return store, keys, status, qty


class TestBuild:
    def test_row_count_and_columns(self):
        store, keys, _, _ = build_store()
        assert len(store) == keys.size
        assert store.column_names == ("status", "qty")

    def test_multiple_partitions_created(self):
        store, _, _, _ = build_store(n=2000, target=2048)
        assert len(store.partitions) > 1

    def test_partitions_ordered_and_disjoint(self):
        store, _, _, _ = build_store(n=2000, target=2048)
        metas = store.partitions
        for left, right in zip(metas, metas[1:]):
            assert left.last_key < right.first_key

    def test_mismatched_column_length_rejected(self):
        store = SortedPartitionStore()
        with pytest.raises(ValueError, match="rows"):
            store.build(np.arange(5), {"x": np.arange(4)})

    def test_duplicate_keys_rejected(self):
        store = SortedPartitionStore()
        with pytest.raises(ValueError, match="unique"):
            store.build(np.array([1, 1, 2]), {"x": np.arange(3)})

    def test_empty_build(self):
        store = SortedPartitionStore()
        store.build(np.empty(0, dtype=np.int64), {"x": np.empty(0, dtype=np.int64)})
        found, values = store.lookup_batch([1, 2])
        assert not found.any()

    def test_rebuild_replaces_partitions(self):
        store, _, _, _ = build_store(n=500)
        old_bytes = store.stored_bytes()
        store.build(np.arange(10, dtype=np.int64), {
            "status": np.array(["A"] * 10, dtype=object),
            "qty": np.arange(10, dtype=np.int64),
        })
        assert len(store) == 10
        assert store.stored_bytes() < old_bytes


class TestLookup:
    def test_every_stored_key_found_exactly(self):
        store, keys, status, qty = build_store()
        found, values = store.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(values["status"], status)
        assert np.array_equal(values["qty"], qty)

    def test_missing_keys_not_found(self):
        store, keys, _, _ = build_store()
        missing = keys + 1  # gaps of 3 guarantee these are absent
        found, _ = store.lookup_batch(missing)
        assert not found.any()

    def test_mixed_hit_miss_batch(self):
        store, keys, status, _ = build_store()
        batch = np.array([keys[0], keys[0] + 1, keys[-1]])
        found, values = store.lookup_batch(batch)
        assert found.tolist() == [True, False, True]
        assert values["status"][0] == status[0]

    def test_duplicate_query_keys(self):
        store, keys, status, _ = build_store()
        batch = np.array([keys[5], keys[5], keys[5]])
        found, values = store.lookup_batch(batch)
        assert found.all()
        assert (values["status"] == status[5]).all()

    def test_keys_below_and_above_range(self):
        store, keys, _, _ = build_store()
        found, _ = store.lookup_batch([-100, int(keys.max()) + 100])
        assert not found.any()

    def test_empty_batch(self):
        store, _, _, _ = build_store()
        found, values = store.lookup_batch(np.empty(0, dtype=np.int64))
        assert found.size == 0
        assert values["qty"].size == 0

    def test_locate_boundaries(self):
        store, _, _, _ = build_store(n=2000, target=2048)
        metas = store.partitions
        pids = store.locate(np.array([metas[0].first_key, metas[0].last_key,
                                      metas[1].first_key]))
        assert pids.tolist() == [0, 0, 1]


class TestCodecs:
    @pytest.mark.parametrize("codec", ["none", "gzip", "zstd", "lzma"])
    def test_lookup_correct_under_every_codec(self, codec):
        store, keys, status, qty = build_store(n=300, codec=codec)
        found, values = store.lookup_batch(keys[:50])
        assert found.all()
        assert np.array_equal(values["qty"], qty[:50])

    def test_compressed_store_smaller_than_uncompressed(self):
        plain, _, _, _ = build_store(n=3000, codec="none")
        packed, _, _, _ = build_store(n=3000, codec="lzma")
        assert packed.stored_bytes() < plain.stored_bytes()

    def test_dictionary_encoding_roundtrip(self):
        store, keys, status, qty = build_store(n=500, dict_encode=True)
        found, values = store.lookup_batch(keys)
        assert found.all()
        assert np.array_equal(values["status"], status)


class TestBufferPoolIntegration:
    def test_partition_decompressed_once_per_batch(self):
        pool = BufferPool(budget_bytes=None)
        store, keys, _, _ = build_store(n=2000, target=2048, pool=pool)
        store.lookup_batch(keys)  # touches every partition once
        assert pool.stats.counters["pool_misses"] == len(store.partitions)
        store.lookup_batch(keys)
        assert pool.stats.counters["pool_misses"] == len(store.partitions)

    def test_tiny_pool_forces_reloads(self):
        pool = BufferPool(budget_bytes=1)  # nothing fits
        store, keys, _, _ = build_store(n=2000, target=2048, pool=pool)
        store.lookup_batch(keys)
        store.lookup_batch(keys)
        assert pool.stats.counters.get("pool_hits", 0) == 0

    def test_stats_cover_io_and_decompress(self):
        stats = StoreStats()
        store = SortedPartitionStore(codec="zstd", stats=stats,
                                     target_partition_bytes=1024)
        keys = np.arange(500, dtype=np.int64)
        store.build(keys, {"v": keys * 2})
        store.lookup_batch(keys)
        assert stats.seconds("decompress") > 0.0
        assert stats.seconds("io") > 0.0
        assert stats.seconds("locate") > 0.0


class TestScan:
    def test_scan_returns_all_rows_sorted(self):
        store, keys, status, qty = build_store(n=800, target=2048)
        got_keys, cols = store.scan()
        order = np.argsort(keys)
        assert np.array_equal(got_keys, keys[order])
        assert np.array_equal(cols["qty"], qty[order])

    def test_scan_empty_store(self):
        store = SortedPartitionStore()
        store.build(np.empty(0, dtype=np.int64), {"x": np.empty(0, dtype=np.int64)})
        got_keys, cols = store.scan()
        assert got_keys.size == 0


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                  max_size=150, unique=True),
    probe=st.lists(st.integers(min_value=0, max_value=10_000), max_size=50),
)
def test_partition_store_matches_dict_model(keys, probe):
    """Property: lookups agree with a plain dict over the same pairs."""
    keys_arr = np.array(keys, dtype=np.int64)
    vals = keys_arr * 7 + 1
    store = SortedPartitionStore(codec="zstd", target_partition_bytes=512)
    store.build(keys_arr, {"v": vals})
    model = dict(zip(keys, (vals).tolist()))

    found, values = store.lookup_batch(np.array(probe, dtype=np.int64))
    for i, key in enumerate(probe):
        if key in model:
            assert found[i]
            assert values["v"][i] == model[key]
        else:
            assert not found[i]


def test_rebuild_preserves_cohosted_pool_entries():
    """build() must only invalidate its own partitions: the sharded store
    co-hosts many stores' partitions in one shared pool."""
    import numpy as np

    from repro.storage import BufferPool, SortedPartitionStore

    pool = BufferPool()
    pool.put("foreign-partition", {"keys": np.arange(3)}, 24)

    store = SortedPartitionStore(pool=pool, name_prefix="mine")
    keys = np.arange(50, dtype=np.int64)
    store.build(keys, {"v": keys % 7})
    store.lookup_batch(keys[:5])  # fault own partitions into the pool
    assert "foreign-partition" in pool

    store.build(keys, {"v": keys % 3})  # rebuild (e.g. a compaction)
    assert "foreign-partition" in pool
    found, values = store.lookup_batch(np.array([9]))
    assert found[0] and values["v"][0] == 0
