"""Zero-copy payload container: roundtrips, view semantics, corruption."""

import mmap
import pickle

import numpy as np
import pytest

from repro.storage import zerocopy


def roundtrip(obj, zero_copy=False):
    return zerocopy.unpack(zerocopy.pack(obj), zero_copy=zero_copy)


class TestRoundtrip:
    def test_mixed_object_graph(self):
        obj = {
            "ints": np.arange(257, dtype=np.int64),
            "halves": np.linspace(0, 1, 33, dtype=np.float16),
            "matrix": np.ones((5, 7), dtype=np.float32),
            "blob": b"raw bytes",
            "text": "plain string",
            "nested": {"inner": np.array([1, 2, 3], dtype=np.uint8)},
            "empty": np.empty(0, dtype=np.int64),
        }
        out = roundtrip(obj)
        for key in ("ints", "halves", "matrix", "empty"):
            np.testing.assert_array_equal(out[key], obj[key])
            assert out[key].dtype == obj[key].dtype
        assert out["blob"] == obj["blob"]
        assert out["text"] == obj["text"]
        np.testing.assert_array_equal(out["nested"]["inner"],
                                      obj["nested"]["inner"])

    def test_object_dtype_arrays_survive(self):
        obj = np.array(["a", None, 3], dtype=object)
        out = roundtrip(obj)
        assert list(out) == list(obj)

    def test_scalar_only_payload_has_no_buffers(self):
        payload = zerocopy.pack({"n": 7})
        assert zerocopy.unpack(payload) == {"n": 7}


class TestViewSemantics:
    def test_default_mode_yields_writable_copies(self):
        out = roundtrip({"a": np.arange(10)}, zero_copy=False)
        assert out["a"].flags.writeable
        out["a"][0] = 99  # must not raise

    def test_zero_copy_yields_readonly_views(self):
        payload = zerocopy.pack({"a": np.arange(64, dtype=np.int64)})
        out = zerocopy.unpack(payload, zero_copy=True)
        assert not out["a"].flags.writeable
        assert out["a"].base is not None  # a view, not an owned copy
        with pytest.raises((ValueError, RuntimeError)):
            out["a"][0] = 1

    def test_zero_copy_views_stay_valid_over_mmap(self, tmp_path):
        path = tmp_path / "payload.bin"
        arr = np.arange(4096, dtype=np.int64)
        path.write_bytes(zerocopy.pack({"a": arr}))
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        out = zerocopy.unpack(memoryview(mapped), zero_copy=True)
        # Drop our direct references: the array's base chain must keep
        # the mapping alive on its own.
        del mapped
        np.testing.assert_array_equal(out["a"], arr)

    def test_buffer_segments_are_aligned_in_container(self):
        payload = zerocopy.pack({"a": np.arange(100, dtype=np.int64)})
        view = memoryview(payload)
        # First buffer offset is recorded right after the header.
        import struct
        base = len(zerocopy.MAGIC)
        _, _ = struct.unpack_from("<QQ", view, base)
        offset, _ = struct.unpack_from("<QQ", view, base + 16)
        assert offset % 64 == 0


class TestFormat:
    def test_is_packed_sniffs_magic(self):
        assert zerocopy.is_packed(zerocopy.pack(1))
        assert not zerocopy.is_packed(pickle.dumps(1))
        assert not zerocopy.is_packed(b"")

    def test_legacy_pickle_is_not_misdetected(self):
        legacy = pickle.dumps({"a": np.arange(5)},
                              protocol=pickle.HIGHEST_PROTOCOL)
        assert not zerocopy.is_packed(legacy)

    def test_unpack_rejects_plain_pickle(self):
        with pytest.raises(pickle.UnpicklingError):
            zerocopy.unpack(pickle.dumps({"a": 1}))

    def test_unpack_rejects_truncated_container(self):
        payload = zerocopy.pack({"a": np.arange(1000, dtype=np.int64)})
        with pytest.raises(pickle.UnpicklingError):
            zerocopy.unpack(payload[: len(payload) // 2])
