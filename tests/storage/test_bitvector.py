"""Unit and property tests for repro.storage.bitvector.BitVector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BitVector


class TestConstruction:
    def test_new_vector_is_all_zero(self):
        vec = BitVector(100)
        assert len(vec) == 100
        assert vec.count() == 0

    def test_filled_vector_is_all_one(self):
        vec = BitVector(100, fill=True)
        assert vec.count() == 100

    def test_filled_vector_masks_tail_bits(self):
        # 13 bits => final byte has 3 used bits; unused bits must stay zero.
        vec = BitVector(13, fill=True)
        assert vec.count() == 13

    def test_zero_size_vector(self):
        vec = BitVector(0)
        assert len(vec) == 0
        assert vec.count() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_from_indices(self):
        vec = BitVector.from_indices([0, 5, 9], size=10)
        assert vec.test(0) and vec.test(5) and vec.test(9)
        assert vec.count() == 3

    def test_from_bools(self):
        vec = BitVector.from_bools([True, False, True, True])
        assert vec.to_bools().tolist() == [True, False, True, True]


class TestScalarAccess:
    def test_set_and_test(self):
        vec = BitVector(16)
        vec.set(7)
        assert vec.test(7)
        assert not vec.test(6)

    def test_clear(self):
        vec = BitVector(16, fill=True)
        vec.set(3, False)
        assert not vec.test(3)
        assert vec.count() == 15

    def test_getitem_setitem(self):
        vec = BitVector(8)
        vec[2] = True
        assert vec[2]
        vec[2] = False
        assert not vec[2]

    def test_out_of_range_raises(self):
        vec = BitVector(8)
        with pytest.raises(IndexError):
            vec.test(8)
        with pytest.raises(IndexError):
            vec.set(-1)


class TestBatchAccess:
    def test_set_many_then_test_many(self):
        vec = BitVector(1000)
        idx = np.array([1, 10, 999, 500])
        vec.set_many(idx)
        assert vec.test_many(idx).all()
        assert not vec.test_many([0, 2, 998]).any()

    def test_set_many_with_duplicates(self):
        vec = BitVector(10)
        vec.set_many([3, 3, 3, 7])
        assert vec.count() == 2

    def test_clear_many(self):
        vec = BitVector(10, fill=True)
        vec.set_many([2, 4, 6], value=False)
        assert vec.count() == 7
        assert not vec.test_many([2, 4, 6]).any()

    def test_clear_many_with_duplicates_in_same_byte(self):
        vec = BitVector(8, fill=True)
        vec.set_many([0, 0, 1, 1], value=False)
        assert vec.to_bools().tolist() == [False, False] + [True] * 6

    def test_empty_batch_is_noop(self):
        vec = BitVector(10)
        vec.set_many(np.empty(0, dtype=np.int64))
        assert vec.count() == 0

    def test_batch_out_of_range_raises(self):
        vec = BitVector(10)
        with pytest.raises(IndexError):
            vec.set_many([10])
        with pytest.raises(IndexError):
            vec.test_many([-1])


class TestResize:
    def test_grow_preserves_bits(self):
        vec = BitVector.from_indices([0, 9], size=10)
        vec.resize(100)
        assert len(vec) == 100
        assert vec.test(0) and vec.test(9)
        assert vec.count() == 2

    def test_shrink_drops_tail(self):
        vec = BitVector(16, fill=True)
        vec.resize(5)
        assert len(vec) == 5
        assert vec.count() == 5


class TestSerialization:
    def test_roundtrip(self):
        vec = BitVector.from_indices([3, 77, 1000], size=1024)
        clone = BitVector.from_bytes(vec.to_bytes())
        assert clone == vec

    def test_nbytes_is_packed(self):
        assert BitVector(8).nbytes == 1
        assert BitVector(9).nbytes == 2
        assert BitVector(0).nbytes == 0

    def test_bad_payload_rejected(self):
        payload = BitVector(64).to_bytes()
        with pytest.raises(ValueError):
            BitVector.from_bytes(payload[:-1])

    def test_copy_is_independent(self):
        vec = BitVector(8)
        clone = vec.copy()
        clone.set(0)
        assert not vec.test(0)


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=300),
    data=st.data(),
)
def test_bitvector_matches_python_set_model(size, data):
    """Property: a BitVector behaves exactly like a set of indices."""
    vec = BitVector(size)
    model = set()
    ops = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from(["set", "clear"]),
                st.integers(min_value=0, max_value=size - 1),
            ),
            max_size=40,
        )
    )
    for op, idx in ops:
        if op == "set":
            vec.set(idx)
            model.add(idx)
        else:
            vec.set(idx, False)
            model.discard(idx)
    assert vec.count() == len(model)
    expect = np.zeros(size, dtype=bool)
    expect[list(model)] = True
    assert np.array_equal(vec.to_bools(), expect)


@settings(max_examples=40, deadline=None)
@given(
    indices=st.lists(st.integers(min_value=0, max_value=499), max_size=60),
)
def test_bitvector_serialization_roundtrip_property(indices):
    vec = BitVector.from_indices(indices, size=500)
    assert BitVector.from_bytes(vec.to_bytes()) == vec
