"""Tests for repro.storage.serializer: pickling and dictionary encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    deserialize_block,
    dictionary_decode,
    dictionary_encode,
    minimal_int_dtype,
    serialize_block,
    serialized_size,
)


class TestSerializeBlock:
    def test_roundtrip_dict_of_arrays(self):
        block = {"a": np.arange(10), "b": np.array(["x", "y"] * 5)}
        out = deserialize_block(serialize_block(block))
        assert np.array_equal(out["a"], block["a"])
        assert np.array_equal(out["b"], block["b"])

    def test_serialized_size_matches_len(self):
        block = {"a": np.arange(100)}
        assert serialized_size(block) == len(serialize_block(block))


class TestMinimalIntDtype:
    @pytest.mark.parametrize(
        "max_value,expected",
        [(0, np.uint8), (255, np.uint8), (256, np.uint16), (65535, np.uint16),
         (65536, np.uint32), (2**32 - 1, np.uint32), (2**32, np.uint64)],
    )
    def test_boundaries(self, max_value, expected):
        assert minimal_int_dtype(max_value) == np.dtype(expected)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            minimal_int_dtype(-1)


class TestDictionaryEncoding:
    def test_roundtrip_low_cardinality(self):
        cols = {"status": np.array(["OK", "FAIL", "OK", "OK", "FAIL"] * 100)}
        decoded = dictionary_decode(dictionary_encode(cols))
        assert np.array_equal(decoded["status"], cols["status"])

    def test_codes_use_minimal_dtype(self):
        cols = {"c": np.array([0, 1, 2] * 100)}
        encoded = dictionary_encode(cols)
        assert encoded["columns"]["c"]["codes"].dtype == np.uint8

    def test_high_cardinality_column_kept_raw(self):
        cols = {"id": np.arange(1000)}
        encoded = dictionary_encode(cols)
        assert "raw" in encoded["columns"]["id"]
        decoded = dictionary_decode(encoded)
        assert np.array_equal(decoded["id"], cols["id"])

    def test_encoding_shrinks_repetitive_strings(self):
        # Fixed-width numpy strings store every row in full, so the
        # vocabulary + uint8 codes representation must win decisively.
        cols = {"s": np.array(["a-long-categorical-value", "another-value"] * 1000)}
        raw = serialized_size(cols)
        enc = serialized_size(dictionary_encode(cols))
        assert enc < raw / 5

    def test_decode_requires_encoded_block(self):
        with pytest.raises(ValueError):
            dictionary_decode({"columns": {}})

    def test_empty_columns(self):
        encoded = dictionary_encode({"x": np.empty(0, dtype=np.int64)})
        decoded = dictionary_decode(encoded)
        assert decoded["x"].size == 0


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=200)
)
def test_dictionary_roundtrip_property_ints(values):
    cols = {"v": np.array(values, dtype=np.int64)}
    decoded = dictionary_decode(dictionary_encode(cols))
    assert np.array_equal(decoded["v"], cols["v"])


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.sampled_from(["alpha", "beta", "gamma", "delta"]), min_size=1, max_size=200
    )
)
def test_dictionary_roundtrip_property_strings(values):
    cols = {"v": np.array(values, dtype=object)}
    decoded = dictionary_decode(dictionary_encode(cols))
    assert list(decoded["v"]) == values
