"""Tests for StoreStats and Stopwatch."""

import time

from repro.storage import Stopwatch, StoreStats


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.timing():
            time.sleep(0.01)
        with watch.timing():
            time.sleep(0.01)
        assert watch.seconds >= 0.02
        assert watch.calls == 2

    def test_reset(self):
        watch = Stopwatch()
        with watch.timing():
            pass
        watch.reset()
        assert watch.seconds == 0.0
        assert watch.calls == 0

    def test_records_on_exception(self):
        watch = Stopwatch()
        try:
            with watch.timing():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert watch.calls == 1


class TestStoreStats:
    def test_counters_created_on_first_use(self):
        stats = StoreStats()
        stats.bump("reads")
        stats.bump("reads", 4)
        assert stats.counters["reads"] == 5

    def test_timer_registry(self):
        stats = StoreStats()
        with stats.timing("io"):
            pass
        assert stats.seconds("io") >= 0.0
        assert stats.seconds("never_used") == 0.0
        assert stats.timer("io") is stats.timer("io")

    def test_total_seconds_sums_timers(self):
        stats = StoreStats()
        with stats.timing("a"):
            time.sleep(0.005)
        with stats.timing("b"):
            time.sleep(0.005)
        assert stats.total_seconds() >= 0.01

    def test_snapshot_merges_counters_and_timers(self):
        stats = StoreStats()
        stats.bump("hits", 3)
        with stats.timing("io"):
            pass
        snap = stats.snapshot()
        assert snap["hits"] == 3
        assert "io_seconds" in snap

    def test_reset_clears_everything(self):
        stats = StoreStats()
        stats.bump("hits")
        with stats.timing("io"):
            pass
        stats.reset()
        assert stats.counters == {}
        assert stats.seconds("io") == 0.0
