"""Read accounting for remote (``http://`` / ``cached+http://``) opens.

The lazy-hydration claim (``docs/remote.md``): opening a sharded store
over HTTP downloads only the manifest (which carries router, filters,
and prune metadata) plus the config blob — **zero shard payload bytes**.
Shards hydrate on first routed touch: an all-miss batch that the
manifest filters prune answers without any new download, a batch routed
into one shard downloads exactly that shard, and every result is
bit-identical to the same store opened from the local directory.  The
``cached+http://`` tier makes a warm reopen revalidate with HEADs and
serve every blob from the local disk cache — zero GETs.  All of it is
asserted against the in-process range server's request log, including
under injected 5xx faults (retried transparently by the resilience
wrapper).
"""

import numpy as np
import pytest

import repro
from repro.data import synthetic
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.storage import LocalDirBackend, configure_hydration_cache
from repro.storage.blob_cache import payload_cache
from repro.storage.remote import _cache_config
from repro.testing import serve_backend

from ..core.conftest import fast_config


@pytest.fixture
def saved_store(tmp_path):
    table = synthetic.single_column(400, "high", seed=2)
    store = ShardedDeepMapping.fit(
        table, fast_config(epochs=2),
        ShardingConfig(n_shards=2, strategy="range"))
    url = str(tmp_path / "store")
    store.save(url)
    yield store, table, url
    store.close()


@pytest.fixture
def served(saved_store):
    """The saved store behind an in-process range server, cold caches."""
    store, table, url = saved_store
    payload_cache().clear()
    with serve_backend(LocalDirBackend(url, create=False)) as server:
        yield store, table, server
    payload_cache().clear()


@pytest.fixture
def cache_dir(tmp_path):
    """Point the hydration cache at a private, empty directory."""
    previous = dict(_cache_config)
    configure_hydration_cache(root=str(tmp_path / "hydration-cache"))
    yield
    _cache_config.clear()
    _cache_config.update(previous)


def shard_blob_gets(server):
    return [name for name in server.blobs_fetched() if name.endswith(".dm")]


def full_query(store, table):
    """Keys spanning both shards plus a guaranteed miss."""
    return {table.key[0]: np.concatenate([
        table.column(table.key[0])[:100],
        np.array([10 ** 8], dtype=np.int64)])}


def assert_identical(reference, result, store):
    np.testing.assert_array_equal(result.found, reference.found)
    for column in store.value_names:
        np.testing.assert_array_equal(result.values[column],
                                      reference.values[column])


class TestLazyHydration:
    def test_cold_open_downloads_no_shard_bytes(self, served):
        _, _, server = served
        opened = repro.open(server.url)
        assert shard_blob_gets(server) == [], (
            "cold remote open fetched shard payload bytes")
        assert len(opened) == 400  # answered from the manifest
        assert all(not shard.hydrated for shard in opened.shards
                   if shard is not None)
        opened.close()

    def test_all_miss_batch_stays_download_free(self, served):
        store, table, server = served
        misses = {table.key[0]: np.array([10 ** 8, 10 ** 8 + 1, -12345],
                                         dtype=np.int64)}
        reference = store.lookup_barrier(misses)
        opened = repro.open(server.url)
        result = opened.lookup(misses)
        assert_identical(reference, result, store)
        assert not result.found.any()
        assert shard_blob_gets(server) == [], (
            "manifest filters should have pruned the batch before any "
            "shard download")
        opened.close()

    def test_single_shard_batch_hydrates_only_that_shard(self, served):
        store, table, server = served
        # The smallest keys route to exactly one range shard.
        keys = np.sort(table.column(table.key[0]))[:5]
        query = {table.key[0]: keys}
        reference = store.lookup_barrier(query)
        opened = repro.open(server.url)
        result = opened.lookup(query)
        assert_identical(reference, result, store)
        assert len(shard_blob_gets(server)) == 1
        assert sum(1 for shard in opened.shards
                   if shard is not None and shard.hydrated) == 1
        opened.close()

    def test_full_fanout_is_bit_identical(self, served):
        store, table, server = served
        query = full_query(store, table)
        reference = store.lookup_barrier(query)
        opened = repro.open(server.url)
        assert_identical(reference, opened.lookup(query), store)
        assert len(shard_blob_gets(server)) == 2
        counters = opened.stats.counters
        assert counters["hydrated_shards"] == 2
        assert counters["range_requests"] > 0
        assert counters["hydrated_bytes"] > 0
        opened.close()

    def test_remote_opens_are_read_only(self, served):
        store, table, server = served
        opened = repro.open(server.url)
        row = {table.key[0]: np.array([10 ** 8], dtype=np.int64)}
        for column in store.value_names:
            row[column] = np.array([0], dtype=np.int64)
        with pytest.raises(PermissionError):
            opened.insert(row)
        opened.close()


class TestCachedTier:
    def test_warm_reopen_is_head_only(self, served, cache_dir):
        store, table, server = served
        query = full_query(store, table)
        reference = store.lookup_barrier(query)
        cached_url = "cached+" + server.url

        first = repro.open(cached_url)
        assert_identical(reference, first.lookup(query), store)
        assert first.stats.counters["cache_misses"] > 0
        first.close()

        payload_cache().clear()  # kill in-process sharing: disk must carry
        server.reset_requests()
        second = repro.open(cached_url)
        assert_identical(reference, second.lookup(query), store)
        assert server.request_count(method="GET") == 0, (
            "warm cached reopen should revalidate with HEADs only: "
            f"{server.requests}")
        assert second.stats.counters["cache_hits"] > 0
        second.close()

    def test_republished_blob_misses_to_fresh_bytes(self, served, cache_dir):
        store, table, server = served
        cached_url = "cached+" + server.url
        opened = repro.open(cached_url)
        opened.lookup(full_query(store, table))
        opened.close()
        payload_cache().clear()
        # Re-publish: rewrite every blob (new mtime => new version) the
        # way an updated store upload would.
        backend = server.backend
        for name in backend.list():
            payload = bytes(backend.read_bytes(name))
            backend.write_bytes(name, payload)
        server.reset_requests()
        reopened = repro.open(cached_url)
        reference = store.lookup_barrier(full_query(store, table))
        assert_identical(reference,
                         reopened.lookup(full_query(store, table)), store)
        assert server.request_count(method="GET") > 0, (
            "stale cache entries must not mask a re-published store")
        reopened.close()


class TestRemoteChaos:
    def test_injected_faults_are_retried_bit_identically(self, served):
        store, table, server = served
        query = full_query(store, table)
        reference = store.lookup_barrier(query)
        server.fail_next(2, status=503)
        opened = repro.open(server.url)
        assert_identical(reference, opened.lookup(query), store)
        statuses = [r.status for r in server.requests]
        assert statuses.count(503) == 2
        opened.close()

    def test_faults_mid_hydration_are_retried(self, served):
        store, table, server = served
        query = full_query(store, table)
        reference = store.lookup_barrier(query)
        opened = repro.open(server.url)  # clean open...
        server.fail_next(1, status=502)  # ...then the first fetch breaks
        assert_identical(reference, opened.lookup(query), store)
        opened.close()

    def test_missing_store_raises_typed_error(self, tmp_path):
        from repro.resilience.errors import StoreNotFoundError
        empty = LocalDirBackend(str(tmp_path / "empty"), create=True)
        with serve_backend(empty) as server:
            with pytest.raises(StoreNotFoundError):
                repro.open(server.url)
