"""Property-based tests for the BufferPool invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BufferPool


@settings(max_examples=50, deadline=None)
@given(
    budget=st.integers(min_value=1, max_value=200),
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=20),
                  st.integers(min_value=1, max_value=80)),
        max_size=60,
    ),
)
def test_pool_never_exceeds_budget(budget, ops):
    """Invariant 6 (DESIGN.md): used bytes never exceed the budget."""
    pool = BufferPool(budget_bytes=budget)
    for key, size in ops:
        pool.get(key, lambda s=size: (object(), s))
        assert pool.used_bytes <= budget
    assert pool.peak_bytes <= budget


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                 max_size=50),
)
def test_pool_serves_correct_object_per_key(ops):
    """Whatever the eviction pattern, get(key) returns key's object."""
    pool = BufferPool(budget_bytes=30)
    for key in ops:
        value = pool.get(key, lambda k=key: (f"object-{k}", 10))
        assert value == f"object-{key}"


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10), min_size=1,
                  max_size=40),
)
def test_unbounded_pool_loads_each_key_once(keys):
    pool = BufferPool(budget_bytes=None)
    loads = []
    for key in keys:
        pool.get(key, lambda k=key: (loads.append(k) or k, 1))
    assert len(loads) == len(set(keys))
