"""BlobCache lifetime rules: LRU byte budget, version stamps, invalidation."""

import threading

import numpy as np
import pytest

from repro.storage import (BlobCache, InMemoryBackend, LocalDirBackend,
                           ZipBackend, blob_version, configure_payload_cache,
                           payload_cache)


def loader_of(obj, size, counter=None):
    def loader():
        if counter is not None:
            counter.append(1)
        return obj, size
    return loader


class TestReadThrough:
    def test_miss_then_hit(self):
        backend = InMemoryBackend()
        backend.write_bytes("a", b"x" * 10)
        cache = BlobCache(budget_bytes=1000)
        calls = []
        assert cache.get(backend, "a", loader_of("obj", 10, calls)) == "obj"
        assert cache.get(backend, "a", loader_of("other", 10, calls)) == "obj"
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1

    def test_rewrite_misses_naturally(self):
        """A re-saved blob changes its version stamp: no explicit
        invalidation needed for freshness."""
        backend = InMemoryBackend()
        backend.write_bytes("a", b"v1")
        cache = BlobCache(budget_bytes=1000)
        assert cache.get(backend, "a", loader_of("one", 5)) == "one"
        backend.write_bytes("a", b"v2")
        assert cache.get(backend, "a", loader_of("two", 5)) == "two"
        assert cache.get(backend, "a", loader_of("three", 5)) == "two"

    def test_unversionable_backend_never_cached(self):
        class Plain:
            def read_bytes(self, name):
                return b"data"
        backend = Plain()
        cache = BlobCache(budget_bytes=1000)
        calls = []
        cache.get(backend, "a", loader_of("x", 5, calls))
        cache.get(backend, "a", loader_of("x", 5, calls))
        assert calls == [1, 1]
        assert len(cache) == 0

    def test_distinct_backends_distinct_entries(self):
        a, b = InMemoryBackend("ca"), InMemoryBackend("cb")
        a.write_bytes("blob", b"1")
        b.write_bytes("blob", b"2")
        cache = BlobCache(budget_bytes=1000)
        assert cache.get(a, "blob", loader_of("A", 1)) == "A"
        assert cache.get(b, "blob", loader_of("B", 1)) == "B"
        assert cache.get(a, "blob", loader_of("zzz", 1)) == "A"

    def test_shared_identity_across_instances(self):
        """Two LocalDirBackend objects over one directory share entries."""
        import tempfile
        root = tempfile.mkdtemp()
        one = LocalDirBackend(root)
        one.write_bytes("a", b"payload")
        two = LocalDirBackend(root)
        cache = BlobCache(budget_bytes=1000)
        assert cache.get(one, "a", loader_of("obj", 5)) == "obj"
        assert cache.get(two, "a", loader_of("fresh", 5)) == "obj"


class TestBudget:
    def test_lru_eviction_under_byte_budget(self):
        backend = InMemoryBackend()
        cache = BlobCache(budget_bytes=100)
        for name in ("a", "b", "c"):
            backend.write_bytes(name, b"x")
            cache.get(backend, name, loader_of(name.upper(), 40))
        # 3 * 40 > 100: the least recently used entry (a) was evicted.
        assert cache.used_bytes <= 100
        assert cache.evictions == 1
        keys = [k[1] for k in cache.cached_keys()]
        assert keys == ["b", "c"]

    def test_hit_refreshes_lru_position(self):
        backend = InMemoryBackend()
        cache = BlobCache(budget_bytes=100)
        for name in ("a", "b"):
            backend.write_bytes(name, b"x")
            cache.get(backend, name, loader_of(name, 40))
        cache.get(backend, "a", loader_of("ignored", 40))  # touch a
        backend.write_bytes("c", b"x")
        cache.get(backend, "c", loader_of("c", 40))
        keys = [k[1] for k in cache.cached_keys()]
        assert keys == ["a", "c"]  # b evicted, not a

    def test_oversized_entry_not_cached(self):
        backend = InMemoryBackend()
        backend.write_bytes("big", b"x")
        cache = BlobCache(budget_bytes=10)
        assert cache.get(backend, "big", loader_of("obj", 1000)) == "obj"
        assert len(cache) == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BlobCache(budget_bytes=0)


class TestInvalidation:
    def test_invalidate_one_blob(self):
        backend = InMemoryBackend()
        backend.write_bytes("a", b"x")
        cache = BlobCache()
        cache.get(backend, "a", loader_of("one", 5))
        cache.invalidate(backend, "a")
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_invalidate_backend_drops_only_its_entries(self):
        a, b = InMemoryBackend("inva"), InMemoryBackend("invb")
        cache = BlobCache()
        for backend, name in ((a, "x"), (a, "y"), (b, "x")):
            backend.write_bytes(name, b"p")
            cache.get(backend, name, loader_of(name, 5))
        cache.invalidate_backend(a)
        assert [k[1] for k in cache.cached_keys()] == ["x"]

    def test_clear(self):
        backend = InMemoryBackend()
        backend.write_bytes("a", b"x")
        cache = BlobCache()
        cache.get(backend, "a", loader_of("one", 5))
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0


class TestGlobalCache:
    def test_payload_cache_is_shared(self):
        assert payload_cache() is payload_cache()

    def test_configure_budget_evicts_to_new_bound(self):
        cache = BlobCache(budget_bytes=1000)
        backend = InMemoryBackend()
        for name in ("a", "b", "c"):
            backend.write_bytes(name, b"x")
            cache.get(backend, name, loader_of(name, 300))
        # Shrink the shared-path machinery via the same code path the
        # public helper uses (operate on a private cache to avoid
        # cross-test interference with the real global).
        import repro.storage.blob_cache as mod
        original = mod._payload_cache
        mod._payload_cache = cache
        try:
            configure_payload_cache(400)
            assert cache.used_bytes <= 400
        finally:
            mod._payload_cache = original

    def test_configure_rejects_invalid(self):
        with pytest.raises(ValueError):
            configure_payload_cache(-1)


class TestVersionStamps:
    def test_local_dir_version_tracks_replacement(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        assert blob_version(backend, "a") is None
        backend.write_bytes("a", b"one")
        first = blob_version(backend, "a")
        assert first is not None
        backend.write_bytes("a", b"two!")
        assert blob_version(backend, "a") != first

    def test_mem_version_counts_writes(self):
        backend = InMemoryBackend()
        backend.write_bytes("a", b"one")
        v1 = blob_version(backend, "a")
        backend.write_bytes("a", b"two")
        assert blob_version(backend, "a") != v1
        backend.delete("a")
        assert blob_version(backend, "a") is None

    def test_zip_version_moves_on_any_write(self, tmp_path):
        backend = ZipBackend(str(tmp_path / "c.zip"))
        backend.write_bytes("a", b"one")
        v1 = blob_version(backend, "a")
        backend.write_bytes("b", b"unrelated")
        assert blob_version(backend, "a") != v1


class TestConcurrency:
    def test_concurrent_gets_are_consistent(self):
        backend = InMemoryBackend()
        backend.write_bytes("a", b"x")
        cache = BlobCache(budget_bytes=10_000)
        results, errors = [], []

        def worker():
            try:
                for _ in range(50):
                    results.append(cache.get(backend, "a",
                                             loader_of("obj", 10)))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert set(results) == {"obj"}
