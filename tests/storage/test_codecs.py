"""Tests for repro.storage.codecs: roundtrips, registry, ratio ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    GzipCodec,
    IdentityCodec,
    LzmaCodec,
    ZstdCodec,
    available_codecs,
    get_codec,
    register_codec,
)

ALL_NAMES = ["none", "gzip", "zstd", "lzma"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_roundtrip_simple(name):
    codec = get_codec(name)
    payload = b"hello deepmapping" * 100
    assert codec.decompress(codec.compress(payload)) == payload


@pytest.mark.parametrize("name", ALL_NAMES)
def test_roundtrip_empty(name):
    codec = get_codec(name)
    assert codec.decompress(codec.compress(b"")) == b""


def test_registry_lists_builtins():
    assert set(ALL_NAMES) <= set(available_codecs())


def test_unknown_codec_raises_keyerror_with_candidates():
    with pytest.raises(KeyError, match="unknown codec"):
        get_codec("snappy")


def test_register_custom_codec():
    class ReverseCodec(IdentityCodec):
        name = "reverse"

        def compress(self, payload):
            return payload[::-1]

        def decompress(self, payload):
            return payload[::-1]

    register_codec("reverse", ReverseCodec)
    codec = get_codec("reverse")
    assert codec.decompress(codec.compress(b"abc")) == b"abc"


def test_compressible_payload_shrinks():
    payload = b"A" * 100_000
    for name in ("gzip", "zstd", "lzma"):
        assert len(get_codec(name).compress(payload)) < len(payload) / 10


def test_lzma_compresses_better_than_zstd_on_structured_data():
    """The paper's L codecs trade speed for ratio; keep that ordering."""
    payload = bytes(i % 251 for i in range(200_000))
    zstd_len = len(ZstdCodec().compress(payload))
    lzma_len = len(LzmaCodec().compress(payload))
    assert lzma_len < zstd_len


def test_gzip_level_validation():
    with pytest.raises(ValueError):
        GzipCodec(level=10)


def test_zstd_level_validation():
    with pytest.raises(ValueError):
        ZstdCodec(level=-1)


def test_lzma_preset_validation():
    with pytest.raises(ValueError):
        LzmaCodec(preset=11)


def test_identity_codec_is_verbatim():
    codec = IdentityCodec()
    payload = b"\x00\x01\x02"
    assert codec.compress(payload) is payload
    assert codec.decompress(payload) is payload


@settings(max_examples=30, deadline=None)
@given(payload=st.binary(max_size=5000), name=st.sampled_from(ALL_NAMES))
def test_roundtrip_property(payload, name):
    """Property: every codec losslessly round-trips arbitrary bytes."""
    codec = get_codec(name)
    assert codec.decompress(codec.compress(payload)) == payload
