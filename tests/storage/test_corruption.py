"""End-to-end corruption detection: a flipped byte anywhere in a
persisted store must surface as a typed :class:`StoreCorruptedError` —
never a silent wrong answer, never a raw ``struct.error`` — and absent
blobs must surface as :class:`StoreNotFoundError` naming blob and URL.
"""

import json
import os

import numpy as np
import pytest

import repro
from repro.resilience import StoreCorruptedError, StoreNotFoundError
from repro.storage import zerocopy
from repro.storage.backends import (InMemoryBackend, LocalDirBackend,
                                    ZipBackend)
from repro.storage.blob_cache import BlobCache
from repro.testing import FaultInjectingBackend


@pytest.fixture
def table():
    keys = np.arange(256, dtype=np.int64)
    return repro.ColumnTable(
        {"sku": keys, "price": (keys * 7) % 101}, key=("sku",))


def build_monolithic(table, path: str) -> None:
    repro.build(table, repro.DeepMappingConfig(epochs=1, seed=0),
                url=path).close()


def flip_file_byte(path, position: int) -> None:
    payload = bytearray(path.read_bytes())
    payload[position] ^= 0xFF
    path.write_bytes(bytes(payload))


def flip_blob_byte(backend, name: str, position: int) -> None:
    payload = bytearray(backend.read_bytes(name))
    payload[position] ^= 0xFF
    backend.write_bytes(name, bytes(payload))


class TestMonolithicCorruption:
    @pytest.mark.parametrize("where", ["head", "middle", "tail"])
    def test_single_flipped_byte_is_caught(self, tmp_path, table, where):
        path = tmp_path / "store.dm"
        build_monolithic(table, str(path))
        size = len(path.read_bytes())
        position = {"head": len(zerocopy.MAGIC) + 1,
                    "middle": size // 2,
                    "tail": size - 9}[where]
        flip_file_byte(path, position)
        with pytest.raises(StoreCorruptedError):
            repro.open(str(path))

    def test_truncated_payload_is_caught(self, tmp_path, table):
        path = tmp_path / "store.dm"
        build_monolithic(table, str(path))
        payload = path.read_bytes()
        path.write_bytes(payload[:len(payload) // 2])
        with pytest.raises(StoreCorruptedError):
            repro.open(str(path))

    def test_error_is_still_an_unpickling_error(self, tmp_path, table):
        # The pre-resilience facade caught pickle.UnpicklingError; the
        # typed error must remain catchable there.
        import pickle
        path = tmp_path / "store.dm"
        build_monolithic(table, str(path))
        flip_file_byte(path, len(path.read_bytes()) // 2)
        with pytest.raises(pickle.UnpicklingError):
            repro.open(str(path))

    def test_healthy_reopen_unaffected(self, tmp_path, table):
        url = str(tmp_path / "store.dm")
        store = repro.build(table, repro.DeepMappingConfig(epochs=1, seed=0),
                            url=url)
        want = store.lookup({"sku": np.arange(64, dtype=np.int64)})
        store.close()
        with repro.open(url) as reopened:
            got = reopened.lookup({"sku": np.arange(64, dtype=np.int64)})
        assert np.array_equal(got.found, want.found)
        assert np.array_equal(got.values["price"], want.values["price"])


class TestShardedCorruption:
    def test_flipped_byte_in_one_shard_payload(self, tmp_path, table):
        url = str(tmp_path / "sharded")
        repro.build(table, repro.DeepMappingConfig(epochs=1, seed=0),
                    shards=4, url=url).close()
        backend = LocalDirBackend(url)
        shard_blobs = sorted(n for n in backend.list()
                             if n.startswith("shard-"))
        assert shard_blobs
        flip_blob_byte(backend, shard_blobs[0],
                       len(backend.read_bytes(shard_blobs[0])) // 2)
        with pytest.raises(StoreCorruptedError):
            repro.open(url)

    def test_corrupt_manifest_names_blob_and_url(self, tmp_path, table):
        url = str(tmp_path / "sharded")
        repro.build(table, repro.DeepMappingConfig(epochs=1, seed=0),
                    shards=2, url=url).close()
        backend = LocalDirBackend(url)
        backend.write_bytes("manifest.json", b"{not json")
        with pytest.raises(StoreCorruptedError, match="manifest.json"):
            repro.open(url)

    def test_wrong_format_manifest_is_corruption(self, tmp_path, table):
        url = str(tmp_path / "sharded")
        repro.build(table, repro.DeepMappingConfig(epochs=1, seed=0),
                    shards=2, url=url).close()
        backend = LocalDirBackend(url)
        backend.write_bytes("manifest.json",
                            json.dumps({"format": "who-knows"}).encode())
        with pytest.raises(StoreCorruptedError):
            repro.open(url)


class TestNotFound:
    def test_missing_blob_names_blob_and_url(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        with pytest.raises(StoreNotFoundError) as info:
            backend.read_bytes("absent.bin")
        message = str(info.value)
        assert "absent.bin" in message
        assert backend.url in message

    def test_memory_and_zip_backends_agree(self, tmp_path):
        memory = InMemoryBackend()
        with pytest.raises(StoreNotFoundError, match="nothing"):
            memory.read_bytes("nothing")
        archive = ZipBackend(str(tmp_path / "store.zip"))
        archive.write_bytes("present", b"x")
        with pytest.raises(StoreNotFoundError, match="gone"):
            archive.read_bytes("gone")

    def test_open_absent_store_is_not_found(self, tmp_path):
        with pytest.raises(StoreNotFoundError):
            repro.open(str(tmp_path / "never-built"))
        # and still a FileNotFoundError for pre-resilience callers
        with pytest.raises(FileNotFoundError):
            repro.open(str(tmp_path / "never-built"))

    def test_unreadable_zip_is_corruption(self, tmp_path):
        path = tmp_path / "broken.zip"
        path.write_bytes(b"PK\x03\x04 this is no longer a zip")
        with pytest.raises(StoreCorruptedError):
            ZipBackend(str(path)).read_bytes("anything")

    def test_transient_zip_oserror_is_not_corruption(self, tmp_path,
                                                     monkeypatch):
        # EIO/EACCES while opening the archive is a transient I/O fault
        # ResilientBackend should retry — labeling it corruption put it
        # in the give-up class and made it permanently unretryable.
        path = tmp_path / "store.zip"
        ZipBackend(str(path)).write_bytes("blob", b"payload")
        fresh = ZipBackend(str(path))  # cold cache: must touch disk

        def flaky_open(*args, **kwargs):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr("repro.storage.backends.zipfile.ZipFile",
                            flaky_open)
        with pytest.raises(OSError) as info:
            fresh.read_bytes("blob")
        assert not isinstance(info.value, StoreCorruptedError)
        assert info.value.errno == 5


class TestReadSideRetry:
    def test_blob_cache_retries_torn_read_once(self, table):
        # A corrupt first read followed by a clean re-read (the torn-read
        # race with an atomic replace) must heal invisibly.
        backend = InMemoryBackend()
        payload = zerocopy.pack({"arr": np.arange(32)})
        backend.write_bytes("blob", payload)
        flaky = FaultInjectingBackend(backend)
        cache = BlobCache(budget_bytes=None)
        attempts = []

        def loader():
            raw = flaky.read_bytes("blob")
            if not attempts:
                raw = flaky.corrupt_byte(raw, position=len(raw) // 2)
            attempts.append(1)
            return zerocopy.unpack(raw), len(raw)

        state = cache.get(flaky, "blob", loader)
        assert np.array_equal(state["arr"], np.arange(32))
        assert len(attempts) == 2
        assert cache.corruption_retries == 1

    def test_persistent_corruption_propagates_typed(self, table):
        backend = InMemoryBackend()
        payload = bytearray(zerocopy.pack({"arr": np.arange(32)}))
        payload[len(payload) // 2] ^= 0xFF
        backend.write_bytes("blob", bytes(payload))
        cache = BlobCache(budget_bytes=None)

        def loader():
            raw = backend.read_bytes("blob")
            return zerocopy.unpack(raw), len(raw)

        with pytest.raises(StoreCorruptedError):
            cache.get(backend, "blob", loader)
        assert cache.corruption_retries == 1  # retried once, then raised


class TestLegacyContainers:
    def _as_v1(self, payload: bytes, n_buffers: int) -> bytes:
        # v1 is the identical layout minus the CRC footer, under the old
        # magic. Reconstruct one from a v2 payload to prove old stores
        # written before checksumming still load.
        footer = 4 * (n_buffers + 1)
        return zerocopy.MAGIC_V1 + bytes(payload[len(zerocopy.MAGIC):-footer])

    def test_v1_container_still_unpacks(self):
        obj = {"arr": np.arange(128, dtype=np.float32), "tag": "legacy"}
        packed = zerocopy.pack(obj)
        n_buffers = len(pickle_buffer_count(obj))
        legacy = self._as_v1(bytes(packed), n_buffers)
        assert zerocopy.is_packed(legacy)
        restored = zerocopy.unpack(legacy)
        assert restored["tag"] == "legacy"
        assert np.array_equal(restored["arr"], obj["arr"])

    def test_v1_corruption_goes_undetected_but_v2_catches_it(self):
        # The whole point of the v2 footer: the same bit flip that v1
        # silently absorbs (or fails unpredictably on) is a typed error
        # under v2.
        obj = {"arr": np.arange(128, dtype=np.float32)}
        packed = bytearray(zerocopy.pack(obj))
        packed[len(packed) // 2] ^= 0xFF
        with pytest.raises(StoreCorruptedError):
            zerocopy.unpack(packed)


def pickle_buffer_count(obj):
    import pickle
    buffers = []
    pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    return buffers


class TestDurability:
    def test_write_is_atomic_and_dir_synced(self, tmp_path):
        # Behavioral floor for the fsync-the-directory change: the write
        # goes through the temp-file + rename path, leaves no temp
        # droppings, and the payload is durable and byte-exact.
        backend = LocalDirBackend(str(tmp_path / "container"))
        backend.write_bytes("blob.bin", b"\x00" * 1024)
        backend.write_bytes("blob.bin", b"replacement")
        files = os.listdir(str(tmp_path / "container"))
        assert files == ["blob.bin"]  # no orphaned temp files
        assert backend.read_bytes("blob.bin") == b"replacement"
