"""Tests for DiskStore."""

import os

import pytest

from repro.storage import DiskStore, StoreStats


class TestReadWrite:
    def test_write_then_read(self, tmp_store_dir):
        with DiskStore(tmp_store_dir) as store:
            store.write("p0", b"hello")
            assert store.read("p0") == b"hello"

    def test_missing_blob_raises_keyerror(self, tmp_store_dir):
        with DiskStore(tmp_store_dir) as store:
            with pytest.raises(KeyError):
                store.read("nope")

    def test_overwrite(self, tmp_store_dir):
        with DiskStore(tmp_store_dir) as store:
            store.write("p0", b"one")
            store.write("p0", b"two!")
            assert store.read("p0") == b"two!"
            assert store.size("p0") == 4

    def test_delete(self, tmp_store_dir):
        with DiskStore(tmp_store_dir) as store:
            store.write("p0", b"x")
            store.delete("p0")
            assert not store.exists("p0")
            store.delete("p0")  # idempotent

    def test_names_sorted(self, tmp_store_dir):
        with DiskStore(tmp_store_dir) as store:
            store.write("b", b"2")
            store.write("a", b"1")
            assert list(store.names()) == ["a", "b"]


class TestAccounting:
    def test_total_bytes(self, tmp_store_dir):
        with DiskStore(tmp_store_dir) as store:
            store.write("a", b"12345")
            store.write("b", b"123")
            assert store.total_bytes() == 8

    def test_io_stats_recorded(self, tmp_store_dir):
        stats = StoreStats()
        with DiskStore(tmp_store_dir, stats=stats) as store:
            store.write("a", b"12345")
            store.read("a")
        assert stats.counters["blobs_read"] == 1
        assert stats.counters["bytes_read"] == 5
        assert stats.seconds("io") >= 0.0
        assert stats.timers["io"].calls == 1


class TestLifecycle:
    def test_temporary_directory_removed_on_close(self):
        store = DiskStore()
        directory = store.directory
        store.write("a", b"1")
        assert os.path.isdir(directory)
        store.close()
        assert not os.path.isdir(directory)

    def test_user_directory_preserved_on_close(self, tmp_store_dir):
        store = DiskStore(tmp_store_dir)
        store.write("a", b"1")
        store.close()
        assert os.path.isdir(tmp_store_dir)

    def test_blob_name_with_separator_is_sanitized(self, tmp_store_dir):
        with DiskStore(tmp_store_dir) as store:
            store.write("a/b", b"1")
            assert store.read("a/b") == b"1"
