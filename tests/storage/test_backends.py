"""Unit tests for the pluggable persistence backends."""

import os
import threading
import zipfile

import pytest

from repro.storage.backends import (MONOLITHIC_BLOB, URL_SCHEMES,
                                    InMemoryBackend, LocalDirBackend,
                                    StorageBackend, ZipBackend,
                                    backend_for_url, parse_url,
                                    resolve_blob_url)


@pytest.fixture(params=["local", "mem", "zip"])
def backend(request, tmp_path):
    if request.param == "local":
        return LocalDirBackend(str(tmp_path / "blobs"))
    if request.param == "mem":
        return InMemoryBackend()
    return ZipBackend(str(tmp_path / "blobs.zip"))


class TestBackendContract:
    """Every implementation satisfies the same observable contract."""

    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_write_read_round_trip(self, backend):
        payload = b"\x00\x01binary\xff" * 100
        assert backend.write_bytes("a.bin", payload) == len(payload)
        assert backend.read_bytes("a.bin") == payload

    def test_overwrite_replaces(self, backend):
        backend.write_bytes("x", b"old")
        backend.write_bytes("x", b"new")
        assert backend.read_bytes("x") == b"new"

    def test_missing_blob_raises_keyerror(self, backend):
        with pytest.raises(KeyError, match="nope"):
            backend.read_bytes("nope")

    def test_list_is_sorted_names(self, backend):
        for name in ("c", "a", "b"):
            backend.write_bytes(name, b"!")
        assert backend.list() == ["a", "b", "c"]

    def test_exists_and_delete(self, backend):
        backend.write_bytes("gone", b"!")
        assert backend.exists("gone")
        backend.delete("gone")
        assert not backend.exists("gone")
        backend.delete("gone")  # absent delete is a no-op

    def test_rejects_path_traversal_names(self, backend):
        for bad in ("../escape", "a/b", "", "."):
            with pytest.raises(ValueError):
                backend.write_bytes(bad, b"!")

    def test_concurrent_writers_leave_whole_blobs(self, backend):
        payloads = [bytes([i]) * 4096 for i in range(8)]

        def write(i):
            for _ in range(5):
                backend.write_bytes("contested", payloads[i])

        threads = [threading.Thread(target=write, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = backend.read_bytes("contested")
        assert final in payloads  # one complete payload, never a tear


class TestLocalDirBackend:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        backend.write_bytes("blob", b"payload")
        assert backend.list() == ["blob"]
        assert sorted(os.listdir(tmp_path)) == ["blob"]

    def test_url(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        assert backend.url == f"file://{tmp_path}"


class TestInMemoryRegistry:
    def test_named_returns_same_container(self):
        a = InMemoryBackend.named("registry-test")
        b = InMemoryBackend.named("registry-test")
        assert a is b
        a.write_bytes("k", b"v")
        assert b.read_bytes("k") == b"v"
        InMemoryBackend.discard("registry-test")

    def test_discard_forgets(self):
        a = InMemoryBackend.named("registry-drop")
        a.write_bytes("k", b"v")
        InMemoryBackend.discard("registry-drop")
        assert not InMemoryBackend.named("registry-drop").exists("k")
        InMemoryBackend.discard("registry-drop")

    def test_anonymous_instances_are_private(self):
        assert InMemoryBackend()._blobs is not InMemoryBackend()._blobs


class TestZipBackend:
    def test_archive_is_a_real_zipfile(self, tmp_path):
        path = str(tmp_path / "store.zip")
        backend = ZipBackend(path)
        backend.write_bytes("one", b"1")
        backend.write_bytes("two", b"2")
        with zipfile.ZipFile(path) as archive:
            assert sorted(archive.namelist()) == ["one", "two"]
            assert archive.read("one") == b"1"

    def test_fresh_instance_sees_previous_writes(self, tmp_path):
        path = str(tmp_path / "store.zip")
        ZipBackend(path).write_bytes("k", b"v")
        assert ZipBackend(path).read_bytes("k") == b"v"

    def test_detects_external_rewrite(self, tmp_path):
        path = str(tmp_path / "store.zip")
        backend = ZipBackend(path)
        backend.write_bytes("k", b"old")
        other = ZipBackend(path)
        other.write_bytes("k", b"new")
        # Force a distinguishable stamp even on coarse mtime filesystems.
        os.utime(path, (1, 1))
        assert backend.read_bytes("k") == b"new"

    def test_batch_defers_to_one_flush(self, tmp_path, monkeypatch):
        path = str(tmp_path / "store.zip")
        backend = ZipBackend(path)
        flushes = []
        real_flush = ZipBackend._flush

        def counting_flush(self):
            flushes.append(1)
            real_flush(self)

        monkeypatch.setattr(ZipBackend, "_flush", counting_flush)
        with backend.batch():
            for i in range(10):
                backend.write_bytes(f"blob-{i}", bytes([i]))
            backend.delete("blob-0")
        assert len(flushes) == 1
        assert ZipBackend(path).list() == [f"blob-{i}" for i in range(1, 10)]

    def test_batch_abandons_staged_writes_on_error(self, tmp_path):
        path = str(tmp_path / "store.zip")
        backend = ZipBackend(path)
        backend.write_bytes("committed", b"1")
        with pytest.raises(RuntimeError):
            with backend.batch():
                backend.write_bytes("staged", b"2")
                raise RuntimeError("save failed")
        assert backend.list() == ["committed"]
        assert ZipBackend(path).list() == ["committed"]

    def test_delete_rewrites_archive(self, tmp_path):
        path = str(tmp_path / "store.zip")
        backend = ZipBackend(path)
        backend.write_bytes("keep", b"1")
        backend.write_bytes("drop", b"2")
        backend.delete("drop")
        with zipfile.ZipFile(path) as archive:
            assert archive.namelist() == ["keep"]


class TestUrlResolution:
    def test_schemes_constant(self):
        assert URL_SCHEMES == ("file", "mem", "zip", "http", "https",
                               "cached+http", "cached+https")

    @pytest.mark.parametrize("url,expected", [
        ("plain/path.dm", ("file", "plain/path.dm")),
        ("file:///abs/dir", ("file", "/abs/dir")),
        ("mem://scratch", ("mem", "scratch")),
        ("zip:///data/a.zip", ("zip", "/data/a.zip")),
    ])
    def test_parse(self, url, expected):
        assert parse_url(url) == expected

    def test_unknown_scheme_names_accepted(self):
        with pytest.raises(ValueError) as excinfo:
            parse_url("s3://bucket")
        message = str(excinfo.value)
        for scheme in ("file://", "mem://", "zip://"):
            assert scheme in message

    def test_backend_for_url_dispatch(self, tmp_path):
        assert isinstance(backend_for_url(str(tmp_path)), LocalDirBackend)
        assert isinstance(backend_for_url("mem://x"), InMemoryBackend)
        assert isinstance(backend_for_url(f"zip://{tmp_path}/a.zip"),
                          ZipBackend)

    def test_resolve_blob_url_file_names_the_blob(self, tmp_path):
        backend, blob = resolve_blob_url(str(tmp_path / "orders.dm"))
        assert isinstance(backend, LocalDirBackend)
        assert blob == "orders.dm"

    def test_resolve_blob_url_containers_use_canonical_name(self, tmp_path):
        for url in ("mem://resolve-test", f"zip://{tmp_path}/a.zip"):
            _backend, blob = resolve_blob_url(url)
            assert blob == MONOLITHIC_BLOB
        InMemoryBackend.discard("resolve-test")
