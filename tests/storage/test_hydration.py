"""Unit tests for the lazy-hydration layer (``storage/hydration.py``).

``RangeReader`` must reassemble a zero-copy container from ranged reads
bit-for-bit — checksums verifying — while fetching the index once and
coalescing adjacent extents into few requests.  ``LazyShard`` must load
exactly once, answer ``len()`` from the manifest before hydration, and
account contention.
"""

import threading
import time

import numpy as np
import pytest

from repro.storage import InMemoryBackend, LocalDirBackend, StoreStats
from repro.storage.hydration import (COALESCE_GAP, SNIFF_BYTES, LazyShard,
                                     RangeReader)
from repro.storage.zerocopy import pack, unpack


def packed_blob(n_arrays=4, rows=5000, seed=0):
    rng = np.random.default_rng(seed)
    obj = {f"arr{i}": rng.integers(0, 1 << 30, rows).astype(np.int64)
           for i in range(n_arrays)}
    obj["meta"] = {"n": rows, "names": [f"arr{i}" for i in range(n_arrays)]}
    return obj, bytes(pack(obj))


@pytest.fixture
def backend():
    return InMemoryBackend("hydration-test")


class TestRangeReader:
    def test_round_trips_bit_identically(self, backend):
        obj, blob = packed_blob()
        backend.write_bytes("shard.dm", blob)
        reader = RangeReader(backend, "shard.dm")
        assert reader.packed and reader.version == 2
        assert reader.total_size == len(blob)
        image = reader.fetch()
        assert bytes(image) == blob
        # Checksums verify on the assembled image, like a whole read.
        loaded = unpack(image)
        for name in obj["meta"]["names"]:
            np.testing.assert_array_equal(loaded[name], obj[name])

    def test_small_blob_arrives_whole_in_the_sniff(self, backend):
        blob = b"tiny json-ish blob"
        backend.write_bytes("manifest.json", blob)
        reader = RangeReader(backend, "manifest.json")
        assert reader.whole == blob
        assert not reader.packed
        assert bytes(reader.fetch()) == blob
        # One request total: the sniff covered everything.
        assert len(reader.ranges_fetched) == 1

    def test_unrecognized_large_blob_refuses_fetch(self, backend):
        backend.write_bytes("legacy.bin", bytes(SNIFF_BYTES * 2))
        reader = RangeReader(backend, "legacy.bin")
        assert reader.whole is None and not reader.packed
        with pytest.raises(ValueError, match="not a zero-copy container"):
            reader.fetch()

    def test_requests_are_coalesced(self, backend):
        _, blob = packed_blob(n_arrays=6)
        backend.write_bytes("shard.dm", blob)
        reader = RangeReader(backend, "shard.dm")
        reader.fetch()
        # Sniff + the coalesced tail; segments sit within COALESCE_GAP
        # of each other (64-byte alignment), so the whole remainder
        # merges into one request.
        assert len(reader.ranges_fetched) == 2
        # The accounting adds up to at least the blob (gap bytes may
        # ride along inside merged ranges).
        assert reader.bytes_fetched >= len(blob) - SNIFF_BYTES

    def test_giant_slot_table_fetches_index_remainder(self, backend):
        # 300 buffers * 16 bytes of slots > the 4 KiB sniff: the reader
        # must complete the index with a follow-up request, then still
        # reassemble bit-identically.
        obj = {f"a{i}": np.full(7, i, dtype=np.int64) for i in range(300)}
        blob = bytes(pack(obj))
        backend.write_bytes("wide.dm", blob)
        reader = RangeReader(backend, "wide.dm")
        assert reader.packed
        assert reader.index_size > SNIFF_BYTES
        assert bytes(reader.fetch()) == blob
        unpack(memoryview(bytes(blob)))  # sanity: source container valid

    def test_partial_fetch_covers_chosen_segments(self, backend):
        obj, blob = packed_blob(n_arrays=4)
        backend.write_bytes("shard.dm", blob)
        reader = RangeReader(backend, "shard.dm")
        image = reader.fetch(segments=[0, 1])
        for idx in (0, 1):
            off, length = reader.slots[idx]
            assert bytes(image[off:off + length]) == blob[off:off + length]
        full = RangeReader(backend, "shard.dm")
        assert full.fetch(segments=None).nbytes == len(blob)
        # The sparse plan fetched strictly less than the full plan.
        assert reader.bytes_fetched < full.bytes_fetched

    def test_coalesce_merges_within_gap(self):
        extents = [(0, 10), (12, 20), (20 + COALESCE_GAP + 1, 30000)]
        merged = RangeReader.coalesce(extents, gap=COALESCE_GAP)
        assert merged == [(0, 20), (20 + COALESCE_GAP + 1, 30000)]
        assert RangeReader.coalesce([], gap=1) == []

    def test_works_over_local_dir_backend(self, tmp_path):
        _, blob = packed_blob()
        backend = LocalDirBackend(str(tmp_path))
        backend.write_bytes("shard.dm", blob)
        reader = RangeReader(backend, "shard.dm")
        assert bytes(reader.fetch()) == blob


class TestLazyShard:
    def test_loads_once_on_first_touch(self):
        calls = []

        class Target:
            attribute = "value"

            def __len__(self):
                return 123

        def loader():
            calls.append(1)
            return Target()

        proxy = LazyShard(loader, n_rows=42, label="shard-0000.dm")
        assert not proxy.hydrated
        assert len(proxy) == 42          # manifest row count, no load
        assert not calls
        assert proxy.attribute == "value"  # first touch hydrates
        assert proxy.hydrated
        assert len(proxy) == 123         # now answered by the target
        proxy.hydrate()
        assert len(calls) == 1

    def test_stats_account_hydrations(self):
        stats = StoreStats()
        proxy = LazyShard(lambda: object(), stats=stats)
        proxy.hydrate()
        proxy.hydrate()
        assert stats.counters["hydrated_shards"] == 1

    def test_contended_hydration_counts_waits(self):
        stats = StoreStats()
        release = threading.Event()
        entered = threading.Event()

        def slow_loader():
            entered.set()
            release.wait(timeout=5.0)
            return object()

        proxy = LazyShard(slow_loader, stats=stats)
        first = threading.Thread(target=proxy.hydrate)
        first.start()
        assert entered.wait(timeout=5.0)
        second = threading.Thread(target=proxy.hydrate)
        second.start()
        # The wait counter bumps *before* the second thread blocks on
        # the held lock — observe it, then let the loader finish.
        deadline = time.monotonic() + 5.0
        while stats.counters.get("hydration_waits", 0) == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.005)
        release.set()
        first.join(timeout=5.0)
        second.join(timeout=5.0)
        assert proxy.hydrated
        assert stats.counters["hydration_waits"] == 1
        assert stats.counters["hydrated_shards"] == 1
