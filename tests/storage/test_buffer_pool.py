"""Tests for the LRU byte-budgeted BufferPool."""

import pytest

from repro.storage import BufferPool, MemoryBudgetError, StoreStats


def make_loader(obj, size, calls):
    def loader():
        calls.append(obj)
        return obj, size
    return loader


class TestBasics:
    def test_miss_then_hit(self):
        pool = BufferPool(budget_bytes=100)
        calls = []
        assert pool.get("a", make_loader("A", 10, calls)) == "A"
        assert pool.get("a", make_loader("A", 10, calls)) == "A"
        assert len(calls) == 1
        assert pool.stats.counters["pool_hits"] == 1
        assert pool.stats.counters["pool_misses"] == 1

    def test_used_bytes_tracked(self):
        pool = BufferPool(budget_bytes=100)
        pool.put("a", "A", 30)
        pool.put("b", "B", 20)
        assert pool.used_bytes == 50
        assert len(pool) == 2

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(budget_bytes=0)

    def test_unbounded_pool_never_evicts(self):
        pool = BufferPool(budget_bytes=None)
        for i in range(100):
            pool.put(i, i, 1_000_000)
        assert len(pool) == 100
        assert pool.stats.counters.get("pool_evictions", 0) == 0


class TestEviction:
    def test_lru_eviction_order(self):
        pool = BufferPool(budget_bytes=30)
        pool.put("a", "A", 10)
        pool.put("b", "B", 10)
        pool.put("c", "C", 10)
        # Touch "a" so "b" becomes the LRU entry.
        pool.get("a", make_loader("A", 10, []))
        pool.put("d", "D", 10)
        assert "b" not in pool
        assert "a" in pool and "c" in pool and "d" in pool

    def test_eviction_counter(self):
        pool = BufferPool(budget_bytes=10)
        pool.put("a", "A", 10)
        pool.put("b", "B", 10)
        assert pool.stats.counters["pool_evictions"] == 1

    def test_budget_respected_after_every_insert(self):
        pool = BufferPool(budget_bytes=25)
        for i in range(50):
            pool.put(i, i, 10)
            assert pool.used_bytes <= 25

    def test_peak_bytes_recorded(self):
        pool = BufferPool(budget_bytes=100)
        pool.put("a", "A", 60)
        pool.put("b", "B", 40)
        assert pool.peak_bytes == 100


class TestOversizedObjects:
    def test_oversized_object_passes_through_uncached(self):
        pool = BufferPool(budget_bytes=10)
        calls = []
        assert pool.get("big", make_loader("BIG", 100, calls)) == "BIG"
        assert "big" not in pool
        # Loaded again on next access: the pool cannot retain it.
        assert pool.get("big", make_loader("BIG", 100, calls)) == "BIG"
        assert len(calls) == 2

    def test_strict_pool_raises_on_oversized(self):
        pool = BufferPool(budget_bytes=10, strict=True)
        with pytest.raises(MemoryBudgetError):
            pool.get("big", make_loader("BIG", 100, []))

    def test_strict_put_raises_on_oversized(self):
        pool = BufferPool(budget_bytes=10, strict=True)
        with pytest.raises(MemoryBudgetError):
            pool.put("big", "BIG", 100)


class TestInvalidation:
    def test_invalidate_frees_bytes(self):
        pool = BufferPool(budget_bytes=100)
        pool.put("a", "A", 40)
        pool.invalidate("a")
        assert pool.used_bytes == 0
        assert "a" not in pool

    def test_invalidate_missing_is_noop(self):
        pool = BufferPool(budget_bytes=100)
        pool.invalidate("missing")

    def test_clear(self):
        pool = BufferPool(budget_bytes=100)
        pool.put("a", "A", 40)
        pool.put("b", "B", 40)
        pool.clear()
        assert len(pool) == 0
        assert pool.used_bytes == 0

    def test_put_replaces_existing_entry(self):
        pool = BufferPool(budget_bytes=100)
        pool.put("a", "A", 40)
        pool.put("a", "A2", 10)
        assert pool.used_bytes == 10
        assert pool.get("a", make_loader("x", 1, [])) == "A2"


def test_shared_stats_sink():
    stats = StoreStats()
    pool = BufferPool(budget_bytes=10, stats=stats)
    pool.get("a", make_loader("A", 1, []))
    assert stats.counters["pool_misses"] == 1


class TestThreadSafety:
    def test_concurrent_get_with_eviction_races(self):
        """Shared pool under a tight budget: hammered from several threads
        (the sharded store's fan-out), no KeyError / accounting drift."""
        import threading

        pool = BufferPool(budget_bytes=120)
        errors = []

        def worker(seed):
            try:
                for i in range(400):
                    key = f"k{(seed + i) % 6}"
                    value = pool.get(key, make_loader(key.upper(), 30, []))
                    assert value == key.upper()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert 0 <= pool.used_bytes <= 120

    def test_concurrent_put_invalidate(self):
        import threading

        pool = BufferPool(budget_bytes=1000)

        def churn(seed):
            for i in range(300):
                key = f"k{(seed + i) % 4}"
                pool.put(key, seed, 10)
                pool.invalidate(key)

        threads = [threading.Thread(target=churn, args=(s,))
                   for s in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert pool.used_bytes >= 0

    def test_inflight_load_straddling_invalidate_is_not_cached(self):
        """A loader that started before invalidate() must not resurrect
        the retired content into the cache (rebuilds reuse blob names)."""
        import threading

        pool = BufferPool(budget_bytes=1000)
        loader_entered = threading.Event()
        release_loader = threading.Event()

        def slow_loader():
            loader_entered.set()
            release_loader.wait(timeout=5)
            return "STALE", 10

        result = {}

        def reader():
            result["value"] = pool.get("part", slow_loader)

        thread = threading.Thread(target=reader)
        thread.start()
        assert loader_entered.wait(timeout=5)
        pool.invalidate("part")  # the rebuild retiring the blob name
        release_loader.set()
        thread.join(timeout=5)

        assert result["value"] == "STALE"  # caller still gets its read...
        assert "part" not in pool          # ...but nothing was cached
        calls = []
        assert pool.get("part", make_loader("FRESH", 10, calls)) == "FRESH"


class TestFaultDeduplication:
    """Concurrent faults on one key run the loader exactly once."""

    def test_thundering_herd_runs_loader_once(self):
        import threading

        stats = StoreStats()
        pool = BufferPool(budget_bytes=1000, stats=stats)
        gate = threading.Event()
        load_calls = []
        lock = threading.Lock()

        def slow_loader():
            with lock:
                load_calls.append(1)
            gate.wait(timeout=5)  # hold every concurrent faulter at the gate
            return "BLOCK", 10

        results, errors = [], []

        def reader():
            try:
                results.append(pool.get("part", slow_loader))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Give followers time to pile onto the in-flight fault.
        import time
        deadline = time.time() + 5
        while stats.counters.get("pool_waits", 0) < 7 \
                and time.time() < deadline:
            time.sleep(0.005)
        gate.set()
        for thread in threads:
            thread.join(timeout=5)

        assert not errors, errors
        assert results == ["BLOCK"] * 8
        assert len(load_calls) == 1            # the herd collapsed
        assert stats.counters["pool_misses"] == 1
        assert stats.counters["pool_waits"] == 7

    def test_followers_share_uncacheable_object(self):
        """Even an over-budget object is handed to the waiting followers
        (nobody re-runs the decompression)."""
        import threading

        pool = BufferPool(budget_bytes=5)
        gate = threading.Event()
        calls = []

        def big_loader():
            calls.append(1)
            gate.wait(timeout=5)
            return "HUGE", 1000

        results = []
        threads = [threading.Thread(
            target=lambda: results.append(pool.get("big", big_loader)))
            for _ in range(4)]
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert results == ["HUGE"] * 4
        assert len(calls) == 1
        assert "big" not in pool

    def test_leader_failure_lets_followers_retry(self):
        import threading

        pool = BufferPool(budget_bytes=1000)
        gate = threading.Event()
        attempts = []
        lock = threading.Lock()

        def flaky_loader():
            with lock:
                attempts.append(1)
                first = len(attempts) == 1
            if first:
                gate.wait(timeout=5)
                raise OSError("disk hiccup")
            return "RECOVERED", 10

        results, errors = [], []

        def reader():
            try:
                results.append(pool.get("part", flaky_loader))
            except OSError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=5)
        # Exactly one caller saw the leader's error; everyone else
        # recovered through a retry that re-led the fault.
        assert len(errors) == 1
        assert results == ["RECOVERED"] * 3

    def test_strict_oversized_fault_raises_for_every_caller(self):
        pool = BufferPool(budget_bytes=5, strict=True)
        with pytest.raises(MemoryBudgetError):
            pool.get("big", make_loader("HUGE", 1000, []))
        # The fault record is cleaned up: the next get retries cleanly.
        with pytest.raises(MemoryBudgetError):
            pool.get("big", make_loader("HUGE", 1000, []))

    def test_getter_after_invalidate_does_not_adopt_inflight_fault(self):
        """A reader arriving after invalidate() must lead a fresh load,
        never share the retired content the detached leader returns."""
        import threading

        pool = BufferPool(budget_bytes=1000)
        loader_entered = threading.Event()
        release_loader = threading.Event()

        def stale_loader():
            loader_entered.set()
            release_loader.wait(timeout=5)
            return "STALE", 10

        result = {}
        leader = threading.Thread(
            target=lambda: result.update(a=pool.get("part", stale_loader)))
        leader.start()
        assert loader_entered.wait(timeout=5)
        pool.invalidate("part")  # rebuild retires the blob name
        # This get starts AFTER the invalidation: it must not wait on
        # (or adopt) the stale in-flight fault.
        fresh = pool.get("part", make_loader("FRESH", 10, []))
        release_loader.set()
        leader.join(timeout=5)
        assert fresh == "FRESH"
        assert result["a"] == "STALE"  # the straddling caller keeps its read
        # The fresh content is what stays cached.
        assert pool.get("part", make_loader("NEVER", 10, [])) == "FRESH"
