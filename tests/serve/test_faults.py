"""Fault injection: one bad request must never sink its batchmates.

Containment layers under test:

1. malformed keys (bad dtype/shape) raise at admission — only that
   caller sees the error, the forming batch is untouched;
2. a merged store call that fails falls back to per-request isolation —
   requests that succeed alone still succeed, the poisoned one gets its
   exception, and ``stats.batch_fallbacks`` records the event;
3. a store that dies mid-flight fails every awaiting future with the
   store's error — promptly, not by hanging;
4. closing the server cancels queued requests (``CancelledError``) and
   drains in-flight batches.
"""

import threading
import time
from asyncio import CancelledError
from concurrent.futures import CancelledError as FutureCancelledError
from concurrent.futures import Future

import numpy as np
import pytest

import repro
from repro.serve import AdmissionPolicy, Client, QueueFullError

from .harness import assert_identical


def keys_of(values) -> dict:
    return {"sku": np.asarray(values, dtype=np.int64)}


class ProxyStore:
    """Delegating store wrapper the fault tests subclass."""

    def __init__(self, inner):
        self._inner = inner

    @property
    def key_names(self):
        return self._inner.key_names

    @property
    def value_names(self):
        return self._inner.value_names

    def lookup(self, keys):
        return self._inner.lookup(keys)

    def lookup_async(self, keys):
        return self._inner.lookup_async(keys)

    def close(self):
        pass


class PoisonKeyStore(ProxyStore):
    """Fails any lookup whose batch contains ``poison`` — including the
    merged batch, which is exactly the mid-batch failure scenario."""

    def __init__(self, inner, poison: int):
        super().__init__(inner)
        self.poison = poison

    def lookup_async(self, keys):
        if self.poison in np.asarray(keys["sku"]):
            raise ValueError(f"poison key {self.poison}")
        return self._inner.lookup_async(keys)


class DeadStore(ProxyStore):
    """Every lookup fails — the store was closed under the server."""

    def lookup_async(self, keys):
        raise RuntimeError("store is closed")


class BlockingStore(ProxyStore):
    """Holds every merged lookup until ``release`` is set (in-flight
    batches for the shutdown-drain test)."""

    def __init__(self, inner):
        super().__init__(inner)
        self.release = threading.Event()
        self.entered = threading.Event()

    def lookup_async(self, keys):
        inner = self._inner

        def blocked():
            self.entered.set()
            assert self.release.wait(timeout=60)
            return inner.lookup(keys)

        future: Future = Future()

        def run():
            try:
                future.set_result(blocked())
            except BaseException as exc:
                future.set_exception(exc)

        threading.Thread(target=run, daemon=True).start()
        return future


class TestAdmissionContainment:
    def test_bad_dtype_fails_only_its_own_future(self, sharded_store):
        policy = AdmissionPolicy(max_batch_keys=100_000, max_delay_ms=25.0)
        with repro.serving(sharded_store, policy=policy) as client:
            good_queries = [keys_of([3 * i, 12]) for i in range(8)]
            good = [client.submit(q) for q in good_queries]
            bad = client.submit({"sku": np.array(["a", "b"])})
            with pytest.raises(TypeError, match="integer"):
                bad.result(timeout=30)
            for query, future in zip(good_queries, good):
                assert assert_identical(future.result(timeout=30),
                                        sharded_store.lookup(query),
                                        "good batchmate") is None
            assert client.stats.rejected == 1

    def test_wrong_shape_and_mismatched_lengths_rejected(self, sharded_store):
        with repro.serving(sharded_store) as client:
            with pytest.raises(TypeError, match="1-D"):
                client.lookup({"sku": np.zeros((2, 2), dtype=np.int64)})
            with pytest.raises(TypeError, match="integer"):
                client.lookup({"sku": np.array([1.5, 2.5])})

    def test_queue_full_rejects_newcomer_only(self, sharded_store):
        policy = AdmissionPolicy(max_batch_keys=100_000,
                                 max_delay_ms=500.0, max_queue_requests=2)
        with repro.serving(sharded_store, policy=policy) as client:
            first = client.submit(keys_of([3]))
            second = client.submit(keys_of([6]))
            # Wait until both are genuinely queued before overflowing.
            deadline = time.monotonic() + 5
            while client.stats.queue_depth < 2:
                assert time.monotonic() < deadline
                time.sleep(0.001)
            third = client.submit(keys_of([9]))
            with pytest.raises(QueueFullError):
                third.result(timeout=30)
            assert first.result(timeout=30).found.tolist() == [True]
            assert second.result(timeout=30).found.tolist() == [True]


class TestMidBatchContainment:
    def test_poisoned_batch_falls_back_per_request(self, sharded_store):
        store = PoisonKeyStore(sharded_store, poison=999_999)
        policy = AdmissionPolicy(max_batch_keys=100_000, max_delay_ms=25.0)
        with Client(store, policy=policy) as client:
            good_queries = [keys_of([3 * i, 6]) for i in range(6)]
            good = [client.submit(q) for q in good_queries]
            poisoned = client.submit(keys_of([3, 999_999]))
            with pytest.raises(ValueError, match="poison key"):
                poisoned.result(timeout=30)
            for query, future in zip(good_queries, good):
                assert assert_identical(future.result(timeout=30),
                                        sharded_store.lookup(query),
                                        "survivor") is None
            snap = client.stats.snapshot()
        assert snap["batch_fallbacks"] >= 1
        assert snap["tenants"]["default"]["errors"] == 1

    def test_dead_store_fails_fast_not_hangs(self, sharded_store):
        with Client(DeadStore(sharded_store)) as client:
            futures = [client.submit(keys_of([3 * i])) for i in range(4)]
            for future in futures:
                with pytest.raises(RuntimeError, match="store is closed"):
                    future.result(timeout=30)


class TestShutdown:
    def test_close_cancels_queued_requests_cleanly(self, sharded_store):
        # Delay so long the batch can only leave the queue via close().
        policy = AdmissionPolicy(max_batch_keys=100_000,
                                 max_delay_ms=60_000.0)
        client = repro.serving(sharded_store, policy=policy)
        queued = client.submit(keys_of([3]))
        deadline = time.monotonic() + 5
        while client.stats.queue_depth < 1:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        client.close()
        # Depending on the Python build the two CancelledError classes
        # may or may not be unified; both are "clean cancellation".
        with pytest.raises((CancelledError, FutureCancelledError)):
            queued.result(timeout=30)

    def test_close_drains_in_flight_batches(self, sharded_store):
        store = BlockingStore(sharded_store)
        policy = AdmissionPolicy(max_batch_keys=1)  # flush immediately
        client = Client(store, policy=policy)
        in_flight = client.submit(keys_of([3]))
        assert store.entered.wait(timeout=30)

        closer = threading.Thread(target=client.close, daemon=True)
        closer.start()
        time.sleep(0.05)          # close() is now waiting on the batch
        store.release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        # The in-flight request completed normally despite the shutdown.
        assert in_flight.result(timeout=30).found.tolist() == [True]
        with pytest.raises(RuntimeError, match="closed"):
            client.lookup(keys_of([6]))
