"""Hypothesis property: coalescing is invisible to every caller.

For ANY partition of a key batch across concurrent requests — with
overlapping keys, duplicate keys, in-domain misses, and out-of-domain
misses — each request's response through the coalescing server is
bit-identical to one direct ``store.lookup`` of its own keys.  Checked
under both the serial and the threads executor strategy, over both the
sharded and the monolithic store.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import AdmissionPolicy, Client

from .conftest import N_ROWS
from .harness import assert_identical

#: Keys span live values (multiples of 3), in-domain gaps, and a margin
#: past the domain, so every miss path is reachable.
KEY_DOMAIN = st.integers(min_value=0, max_value=N_ROWS * 3 + 500)

#: 1..6 concurrent requests of 0..24 keys each; hypothesis shrinks over
#: the whole partition shape, overlaps included.
PARTITIONS = st.lists(
    st.lists(KEY_DOMAIN, min_size=0, max_size=24),
    min_size=1, max_size=6)

RELAXED = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


def _serve_and_compare(store, partition, executor_name):
    """Submit every request concurrently; compare each to the oracle."""
    queries = [{"sku": np.asarray(chunk, dtype=np.int64)}
               for chunk in partition]
    expected = [store.lookup(q) for q in queries]

    previous = store.executor
    store.set_executor(executor_name)
    try:
        policy = AdmissionPolicy(max_batch_keys=100_000, max_delay_ms=10.0)
        with Client(store, policy=policy) as client:
            with ThreadPoolExecutor(max_workers=len(queries)) as pool:
                futures = [pool.submit(client.lookup, q) for q in queries]
                results = [f.result(timeout=60) for f in futures]
    finally:
        store.set_executor(previous)

    for index, (got, want) in enumerate(zip(results, expected)):
        mismatch = assert_identical(got, want, f"request {index}")
        assert mismatch is None, mismatch


class TestPartitionParity:
    @RELAXED
    @given(partition=PARTITIONS)
    def test_sharded_serial_executor(self, sharded_store, partition):
        _serve_and_compare(sharded_store, partition, "serial")

    @RELAXED
    @given(partition=PARTITIONS)
    def test_sharded_threads_executor(self, sharded_store, partition):
        _serve_and_compare(sharded_store, partition, "threads")

    @RELAXED
    @given(partition=PARTITIONS)
    def test_monolithic_threads_executor(self, mono_store, partition):
        _serve_and_compare(mono_store, partition, "threads")

    @RELAXED
    @given(partition=PARTITIONS)
    def test_dedup_math_alone(self, partition):
        """merge/scatter round-trips any partition without a store:
        scattering the identity over merged uniques must reproduce every
        request's own keys."""
        from repro.core.deep_mapping import LookupResult
        from repro.serve.batcher import (PendingRequest, merge_requests,
                                         normalize_request_keys,
                                         scatter_result)

        requests = [
            PendingRequest(
                normalize_request_keys({"sku": np.asarray(chunk,
                                                          dtype=np.int64)},
                                       ("sku",)),
                "t", future=None, admitted_at=0.0)
            for chunk in partition]
        unique_cols, inverse, slices = merge_requests(("sku",), requests)
        uniques = unique_cols["sku"]
        # Uniqueness and coverage.
        assert np.unique(uniques).size == uniques.size
        fake = LookupResult(found=np.ones(uniques.size, dtype=bool),
                            values={"echo": uniques.copy()})
        for request, (lo, hi) in zip(requests, slices):
            sliced = scatter_result(fake, inverse, lo, hi)
            np.testing.assert_array_equal(sliced.values["echo"],
                                          request.key_cols["sku"])
