"""Chaos acceptance: the serving tier under injected faults.

The resilience layer's end-to-end bar, driven through the same 64-client
seeded harness as the healthy-path acceptance suite:

1. deadlines hold — against a wedged store, no request outlives its
   ``deadline_ms`` budget by more than one batch window (plus scheduling
   slack), and every one fails with a typed :class:`DeadlineExceeded`;
2. partial results hold — with one shard broken, responses that reach
   clients are bit-identical to the healthy oracle on every healthy-shard
   position and mark broken-shard keys as failed/not-found;
3. errors are contained — probabilistic store errors fail only the
   requests they hit (every completed response stays bit-identical), and
   the server keeps serving once the chaos stops.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro.resilience import DeadlineExceeded, PartialResult
from repro.serve import AdmissionPolicy, BackgroundTCPServer, TCPClient
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.testing import ChaosStore, break_shard

from .conftest import _config, _table
from .harness import assert_identical, build_scripts, run_clients

#: One batch window: the max_delay_ms used throughout this module.
WINDOW_MS = 20.0
#: Scheduling slack for loaded CI machines — generous, but still two
#: orders of magnitude under the injected hang.
SLACK_S = 1.0


@pytest.fixture(scope="module")
def partial_store():
    """A 4-shard store in ``on_shard_error="partial"`` mode."""
    store = ShardedDeepMapping.fit(
        _table(), _config(),
        ShardingConfig(n_shards=4, on_shard_error="partial"))
    yield store
    store.close()


class DeadlineClient:
    """Harness adapter: every lookup carries the same deadline budget."""

    def __init__(self, client, deadline_ms):
        self._client = client
        self._deadline_ms = deadline_ms

    def lookup(self, keys, tenant="default"):
        return self._client.lookup(keys, tenant=tenant,
                                   deadline_ms=self._deadline_ms)

    @property
    def stats(self):
        return self._client.stats


def drive_concurrently(n_clients, make_request):
    """Run ``make_request(client_index)`` on ``n_clients`` barrier-released
    threads; returns (outcomes, elapsed_seconds) index-aligned lists where
    each outcome is the return value or the raised exception."""
    outcomes = [None] * n_clients
    elapsed = [None] * n_clients
    barrier = threading.Barrier(n_clients)

    def drive(index):
        barrier.wait()
        start = time.monotonic()
        try:
            outcomes[index] = make_request(index)
        except BaseException as exc:  # noqa: BLE001 — recorded, asserted on
            outcomes[index] = exc
        elapsed[index] = time.monotonic() - start

    threads = [threading.Thread(target=drive, args=(i,), daemon=True)
               for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), \
        "chaos clients wedged"
    return outcomes, elapsed


class TestDeadlinesUnderChaos:
    def test_64_clients_healthy_with_deadlines_armed(self, sharded_store,
                                                     live_keys):
        """Deadline plumbing must be invisible when nothing goes wrong:
        full bit-identical parity, zero expirations."""
        scripts = build_scripts("sku", live_keys, n_clients=64,
                                requests_per_client=2, keys_per_request=16,
                                seed=20260808)
        policy = AdmissionPolicy(max_batch_keys=16_384,
                                 max_delay_ms=WINDOW_MS)
        with repro.serving(sharded_store, policy=policy) as client:
            report = run_clients(DeadlineClient(client, 30_000.0),
                                 sharded_store, scripts)
        report.raise_on_mismatch()
        assert report.stats["deadline_expired"] == 0
        assert report.stats["requests_coalesced"] == report.n_requests

    def test_no_request_outlives_deadline_against_hung_store(
            self, sharded_store, live_keys):
        """64 clients against a wedged store: every request fails with
        DeadlineExceeded inside budget + one batch window + slack."""
        deadline_ms = 250.0
        chaos = ChaosStore(sharded_store, hang_s=30.0)
        scripts = build_scripts("sku", live_keys, n_clients=64,
                                requests_per_client=1, keys_per_request=8,
                                seed=5)
        policy = AdmissionPolicy(max_batch_keys=16_384,
                                 max_delay_ms=WINDOW_MS)
        try:
            with repro.serving(chaos, policy=policy) as client:
                outcomes, elapsed = drive_concurrently(
                    64, lambda i: client.lookup(
                        scripts[i].requests[0], tenant=scripts[i].tenant,
                        deadline_ms=deadline_ms))
                snapshot = client.stats.snapshot()
        finally:
            chaos.release()  # free the wedged worker threads
        bound = deadline_ms / 1000.0 + WINDOW_MS / 1000.0 + SLACK_S
        for index, (outcome, took) in enumerate(zip(outcomes, elapsed)):
            assert isinstance(outcome, DeadlineExceeded), \
                f"client {index}: expected DeadlineExceeded, got {outcome!r}"
            assert isinstance(outcome, TimeoutError)  # stdlib catchability
            assert took <= bound, \
                f"client {index} outlived its deadline: {took:.3f}s > " \
                f"{bound:.3f}s"
        assert snapshot["deadline_expired"] == 64
        assert chaos.injected_hangs > 0

    def test_expired_deadline_rejected_at_admission(self, sharded_store):
        policy = AdmissionPolicy(max_delay_ms=WINDOW_MS)
        with repro.serving(sharded_store, policy=policy) as client:
            with pytest.raises(ValueError):
                client.lookup({"sku": np.array([0], dtype=np.int64)},
                              deadline_ms=0.0)
            with pytest.raises(ValueError):
                client.lookup({"sku": np.array([0], dtype=np.int64)},
                              deadline_ms=-5.0)


class TestPartialResultsThroughServing:
    def test_broken_shard_partial_parity_through_client(
            self, partial_store, live_keys):
        """16 concurrent clients, one broken shard: every response is a
        PartialResult, bit-identical to the healthy oracle on healthy
        positions, found=False on every failed position."""
        scripts = build_scripts("sku", live_keys, n_clients=16,
                                requests_per_client=1, keys_per_request=24,
                                seed=77)
        oracle = [partial_store.lookup(s.requests[0]) for s in scripts]
        policy = AdmissionPolicy(max_batch_keys=16_384,
                                 max_delay_ms=WINDOW_MS)
        restore = break_shard(partial_store, 1)
        try:
            with repro.serving(partial_store, policy=policy) as client:
                outcomes, _ = drive_concurrently(
                    16, lambda i: client.lookup(scripts[i].requests[0],
                                                tenant=scripts[i].tenant))
        finally:
            restore()
        saw_failed = 0
        for index, got in enumerate(outcomes):
            assert not isinstance(got, BaseException), repr(got)
            want = oracle[index]
            failed = getattr(got, "failed_mask", None)
            if failed is None:
                # every key of this request happened to route to healthy
                # shards — plain result, full parity
                assert assert_identical(got, want,
                                        f"client {index}") is None
                continue
            assert isinstance(got, PartialResult)
            assert 1 in got.shard_errors
            saw_failed += 1
            healthy = ~failed
            assert not got.found[failed].any()
            assert np.array_equal(got.found[healthy], want.found[healthy])
            for name in want.values:
                assert np.array_equal(got.values[name][healthy],
                                      want.values[name][healthy])
        # The seeded mix guarantees shard 1 traffic somewhere.
        assert saw_failed > 0

    def test_partial_store_heals_after_restore(self, partial_store,
                                               live_keys):
        scripts = build_scripts("sku", live_keys, n_clients=8,
                                requests_per_client=2, keys_per_request=12,
                                seed=31)
        policy = AdmissionPolicy(max_delay_ms=WINDOW_MS)
        with repro.serving(partial_store, policy=policy) as client:
            report = run_clients(client, partial_store, scripts)
        report.raise_on_mismatch()


class TestErrorContainment:
    def test_merged_batch_failure_falls_back_to_isolation(
            self, sharded_store, live_keys):
        """One scripted failure on the merged call: the server retries
        requests individually and every client still gets bit-identical
        results — the chaos is absorbed, not surfaced."""
        chaos = ChaosStore(sharded_store, latency_s=0.001, seed=13)
        chaos.fail_next(1)
        scripts = build_scripts("sku", live_keys, n_clients=32,
                                requests_per_client=1, keys_per_request=12,
                                seed=41)
        oracle = [sharded_store.lookup(s.requests[0]) for s in scripts]
        policy = AdmissionPolicy(max_batch_keys=16_384,
                                 max_delay_ms=WINDOW_MS)
        with repro.serving(chaos, policy=policy) as client:
            outcomes, _ = drive_concurrently(
                32, lambda i: client.lookup(scripts[i].requests[0],
                                            tenant=scripts[i].tenant))
            snapshot = client.stats.snapshot()
        assert chaos.injected_errors >= 1
        failures = [o for o in outcomes if isinstance(o, BaseException)]
        # The scripted failure hit a *merged* call; per-request fallback
        # re-ran everyone, so at most the one request that absorbed the
        # retry-side failure may error — with one scripted fault, none.
        assert not failures, f"contained failure leaked: {failures[0]!r}"
        for index, got in enumerate(outcomes):
            assert assert_identical(got, oracle[index],
                                    f"client {index}") is None
        assert snapshot["batch_fallbacks"] >= 1

    def test_deadline_propagates_over_tcp(self, sharded_store):
        """A wire-level ``deadline_ms`` bounds a hung store: the client
        gets the typed error name back, inside the same budget."""
        deadline_ms = 250.0
        chaos = ChaosStore(sharded_store, hang_s=30.0)
        policy = AdmissionPolicy(max_delay_ms=WINDOW_MS)
        try:
            with BackgroundTCPServer(chaos, policy=policy) as server:
                with server.connect(timeout=10) as tcp:
                    start = time.monotonic()
                    with pytest.raises(RuntimeError,
                                       match="DeadlineExceeded"):
                        tcp.lookup({"sku": [0, 3, 6]},
                                   deadline_ms=deadline_ms)
                    took = time.monotonic() - start
        finally:
            chaos.release()
        assert took <= deadline_ms / 1000.0 + WINDOW_MS / 1000.0 + SLACK_S

    def test_tcp_connect_retries_ride_out_slow_listener(self):
        """The client's bounded connect retry absorbs a listener that
        is bound but not yet accepting."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now

        listener = socket.socket()

        def listen_late():
            time.sleep(0.05)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)

        thread = threading.Thread(target=listen_late, daemon=True)
        thread.start()
        try:
            client = TCPClient("127.0.0.1", port, timeout=5,
                               connect_attempts=8)
            client.close()
        finally:
            thread.join()
            listener.close()

    def test_tcp_connect_gives_up_after_bounded_attempts(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        start = time.monotonic()
        with pytest.raises(OSError):
            TCPClient("127.0.0.1", port, timeout=1, connect_attempts=2)
        assert time.monotonic() - start < 5.0  # bounded, not hung

    def test_server_keeps_serving_after_chaos_stops(self, sharded_store):
        chaos = ChaosStore(sharded_store, error_rate=1.0, seed=3)
        keys = {"sku": np.array([0, 3, 6], dtype=np.int64)}
        policy = AdmissionPolicy(max_delay_ms=WINDOW_MS)
        with repro.serving(chaos, policy=policy) as client:
            with pytest.raises(RuntimeError, match="injected store error"):
                client.lookup(keys)
            chaos.error_rate = 0.0  # the dependency recovers
            got = client.lookup(keys)
        assert assert_identical(got, sharded_store.lookup(keys),
                                "recovery") is None
