"""The acceptance harness: 64 concurrent clients, bit-identical parity.

ISSUE 6's headline check: 64 concurrent clients with seeded mixed
hit/miss key sets over a 4-shard store must receive exactly what direct
``lookup`` returns, with a measured coalesce ratio > 1.  A smaller
smoke-sized variant runs the same machinery for quick local loops, and
one variant drives the TCP transport instead of the in-process client.
"""

import numpy as np

import repro
from repro.serve import AdmissionPolicy, BackgroundTCPServer

from .harness import build_scripts, run_clients


class TestConcurrencyHarness:
    def test_16_clients_quick(self, sharded_store, live_keys):
        scripts = build_scripts("sku", live_keys, n_clients=16,
                                requests_per_client=2, keys_per_request=12,
                                seed=7)
        policy = AdmissionPolicy(max_batch_keys=4096, max_delay_ms=10.0)
        with repro.serving(sharded_store, policy=policy) as client:
            report = run_clients(client, sharded_store, scripts)
        report.raise_on_mismatch()
        assert report.stats["requests_coalesced"] == report.n_requests

    def test_64_clients_acceptance(self, sharded_store, live_keys):
        """The ISSUE acceptance bar, verbatim."""
        scripts = build_scripts("sku", live_keys, n_clients=64,
                                requests_per_client=3, keys_per_request=16,
                                seed=20240806)
        policy = AdmissionPolicy(max_batch_keys=16_384, max_delay_ms=20.0)
        with repro.serving(sharded_store, policy=policy) as client:
            report = run_clients(client, sharded_store, scripts)
        report.raise_on_mismatch()
        assert report.n_clients == 64
        assert report.stats["requests_coalesced"] == 64 * 3
        # Coalescing must actually happen, not just parity by accident.
        assert report.stats["coalesce_ratio"] > 1.0
        assert report.stats["batches_formed"] < report.n_requests
        # The shared hot-key pool guarantees cross-request dedup work.
        assert report.stats["dedup_ratio"] > 1.0
        assert report.stats["max_queue_depth"] > 1
        # Every tenant bucket (4 tenants round-robin) saw traffic and
        # has latency percentiles.
        tenants = report.stats["tenants"]
        assert len(tenants) == 4
        for record in tenants.values():
            assert record["requests"] == 16 * 3
            assert record["p50_seconds"] is not None
            assert record["p99_seconds"] >= record["p50_seconds"]

    def test_64_clients_serial_executor(self, sharded_store, live_keys):
        """Same bar under the serial strategy: coalescing must not
        depend on the store's own fan-out concurrency."""
        scripts = build_scripts("sku", live_keys, n_clients=64,
                                requests_per_client=1, keys_per_request=16,
                                seed=99)
        previous = sharded_store.executor
        sharded_store.set_executor("serial")
        try:
            policy = AdmissionPolicy(max_batch_keys=16_384,
                                     max_delay_ms=20.0)
            with repro.serving(sharded_store, policy=policy) as client:
                report = run_clients(client, sharded_store, scripts)
        finally:
            sharded_store.set_executor(previous)
        report.raise_on_mismatch()
        assert report.stats["coalesce_ratio"] > 1.0

    def test_tcp_transport_parity(self, sharded_store, live_keys):
        """The harness through real sockets: 12 TCP clients."""
        scripts = build_scripts("sku", live_keys, n_clients=12,
                                requests_per_client=2, keys_per_request=8,
                                seed=3)
        policy = AdmissionPolicy(max_batch_keys=4096, max_delay_ms=10.0)
        # JSON carries values as plain lists; decode back into the
        # store's dtypes so bit-identity is comparable.
        dtypes = {name: arr.dtype for name, arr in sharded_store.lookup(
            {"sku": np.empty(0, dtype=np.int64)}).values.items()}
        with BackgroundTCPServer(sharded_store, policy=policy) as server:

            class TCPAdapter:
                """Quacks like the in-process client for run_clients."""

                stats = server.server.stats

                def lookup(self, keys, tenant="default"):
                    from repro.core.deep_mapping import LookupResult
                    with server.connect() as tcp:
                        response = tcp.lookup(keys, tenant=tenant)
                    return LookupResult(
                        found=np.asarray(response["found"], dtype=bool),
                        values={name: np.asarray(vals, dtype=dtypes[name])
                                for name, vals in
                                response["values"].items()})

            report = run_clients(TCPAdapter(), sharded_store, scripts)
        report.raise_on_mismatch()
        assert report.stats["requests_coalesced"] == report.n_requests
