"""Shared fixtures for the serving-tier suite.

One 4-shard store (and one monolithic sibling) is built per session —
the suite hammers it from many threads but never mutates it, which is
exactly the ``repro.open(url, writable=False)`` serving contract.
"""

import numpy as np
import pytest

from repro.core import DeepMapping, DeepMappingConfig
from repro.data import ColumnTable
from repro.shard import ShardedDeepMapping, ShardingConfig

#: Live keys stride 3 so two thirds of the contiguous domain are
#: in-domain misses; values exercise two dtypes.
N_ROWS = 900


def _table() -> ColumnTable:
    keys = np.arange(N_ROWS, dtype=np.int64) * 3
    return ColumnTable(
        {"sku": keys,
         "price": (keys * 7) % 127,
         "qty": (keys % 11).astype(np.int64)},
        key=("sku",))


def _config() -> DeepMappingConfig:
    return DeepMappingConfig(epochs=2, batch_size=256, shared_sizes=(24,),
                             private_sizes=(12,), seed=7)


@pytest.fixture(scope="session")
def live_keys():
    return np.arange(N_ROWS, dtype=np.int64) * 3


@pytest.fixture(scope="session")
def sharded_store():
    store = ShardedDeepMapping.fit(_table(), _config(),
                                   ShardingConfig(n_shards=4))
    yield store
    store.close()


@pytest.fixture(scope="session")
def mono_store():
    store = DeepMapping.fit(_table(), _config())
    yield store
    store.close()
