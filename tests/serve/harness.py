"""Deterministic concurrency harness for the coalescing lookup server.

The serving tier's whole risk is correctness under concurrency, so the
harness is the deliverable as much as the server: it drives N client
threads with *seeded* key mixes (hits, in-domain misses, out-of-domain
misses, and a shared hot set that overlaps across clients), releases
them through one barrier so their requests genuinely contend for the
same forming batches, and asserts every response is **bit-identical** to
a direct ``store.lookup`` of the same keys — the oracle is computed
serially before any thread starts.

Everything is parameterized by one integer seed: same seed, same key
mixes, same oracle.  (Thread interleaving still varies run to run — the
point is that *any* interleaving must produce the same bytes.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.deep_mapping import LookupResult


@dataclass
class ClientScript:
    """One client's scripted requests (each a dict of key columns)."""

    tenant: str
    requests: List[Dict[str, np.ndarray]]


@dataclass
class HarnessReport:
    """What a run observed; ``raise_on_mismatch`` is the test gate."""

    n_clients: int
    n_requests: int
    n_keys: int
    mismatches: List[str] = field(default_factory=list)
    errors: List[BaseException] = field(default_factory=list)
    stats: Optional[dict] = None

    @property
    def parity(self) -> bool:
        return not self.mismatches and not self.errors

    def raise_on_mismatch(self) -> None:
        if self.errors:
            raise self.errors[0]
        if self.mismatches:
            raise AssertionError(
                f"{len(self.mismatches)} parity mismatches; first: "
                f"{self.mismatches[0]}")


def seeded_key_mix(key_name: str, live: np.ndarray, rng, n_keys: int,
                   hot_keys: Optional[np.ndarray] = None) -> Dict[str, np.ndarray]:
    """One request's keys: ~40% live, ~20% shared-hot, rest misses.

    Misses split between in-domain gaps (exercise the existence gate)
    and out-of-domain keys (exercise the router's miss path).  With a
    ``hot_keys`` pool, every client draws from the same handful of keys,
    so cross-request dedup has real work to do.
    """
    lo, hi = int(live.min()), int(live.max())
    parts = []
    n_hot = n_keys // 5 if hot_keys is not None and hot_keys.size else 0
    n_live = int(n_keys * 0.4)
    n_rest = n_keys - n_hot - n_live
    if n_live:
        parts.append(rng.choice(live, size=n_live, replace=True))
    if n_hot:
        parts.append(rng.choice(hot_keys, size=n_hot, replace=True))
    if n_rest:
        # In-domain gaps and past-the-domain keys, half and half.
        gaps = rng.integers(lo, hi + 1, size=n_rest // 2 + n_rest % 2)
        beyond = rng.integers(hi + 1, hi + 1 + max(hi - lo, 4),
                              size=n_rest // 2)
        parts.extend([gaps, beyond])
    keys = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    rng.shuffle(keys)
    return {key_name: keys.astype(np.int64)}


def build_scripts(key_name: str, live: np.ndarray, n_clients: int,
                  requests_per_client: int, keys_per_request: int, seed: int,
                  n_hot: int = 16) -> List[ClientScript]:
    """Seeded per-client request scripts with a shared hot-key pool.

    ``live`` is the store's live keyset (the builder knows it — the
    table it fit over); everything else is derived from ``seed``.
    """
    base = np.random.default_rng(seed)
    live = np.sort(np.asarray(live, dtype=np.int64))
    hot = base.choice(live, size=min(n_hot, live.size), replace=False) \
        if live.size else np.empty(0, dtype=np.int64)
    scripts = []
    for client in range(n_clients):
        rng = np.random.default_rng(seed * 1_000_003 + client)
        scripts.append(ClientScript(
            tenant=f"tenant-{client % 4}",
            requests=[seeded_key_mix(key_name, live, rng,
                                     keys_per_request, hot)
                      for _ in range(requests_per_client)]))
    return scripts


def assert_identical(got: LookupResult, want: LookupResult,
                     label: str) -> Optional[str]:
    """None on bit-identity, else a description of the first divergence."""
    if not np.array_equal(got.found, want.found):
        return f"{label}: found mask differs"
    for name, arr in want.values.items():
        if not np.array_equal(got.values[name], arr):
            return f"{label}: column {name!r} differs"
        if got.values[name].dtype != arr.dtype:
            return (f"{label}: column {name!r} dtype "
                    f"{got.values[name].dtype} != {arr.dtype}")
    return None


def run_clients(client, store, scripts: List[ClientScript]) -> HarnessReport:
    """Drive every script on its own thread through ``client``.

    ``client`` is anything with ``lookup(keys, tenant)`` returning a
    :class:`LookupResult` (the in-process :class:`repro.serve.Client`);
    ``store`` is the oracle.  Expected results are computed serially
    up front, threads are released together through a barrier, and the
    report carries every mismatch and raised error.
    """
    expected = [[store.lookup(keys) for keys in script.requests]
                for script in scripts]
    report = HarnessReport(
        n_clients=len(scripts),
        n_requests=sum(len(s.requests) for s in scripts),
        n_keys=sum(int(next(iter(keys.values())).size)
                   for s in scripts for keys in s.requests))
    barrier = threading.Barrier(len(scripts))
    lock = threading.Lock()

    def drive(index: int) -> None:
        script = scripts[index]
        barrier.wait()
        for request_index, keys in enumerate(script.requests):
            label = f"client {index} request {request_index}"
            try:
                got = client.lookup(keys, tenant=script.tenant)
            except BaseException as exc:  # noqa: BLE001 — reported, not hidden
                with lock:
                    report.errors.append(exc)
                return
            mismatch = assert_identical(
                got, expected[index][request_index], label)
            if mismatch:
                with lock:
                    report.mismatches.append(mismatch)

    threads = [threading.Thread(target=drive, args=(i,), daemon=True)
               for i in range(len(scripts))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    if any(thread.is_alive() for thread in threads):
        report.errors.append(TimeoutError("harness clients did not finish"))
    report.stats = client.stats.snapshot()
    return report
