"""Overload acceptance: backpressure × deadlines, typed wire errors,
and an end-to-end flood scenario.

The scaled-down twin of ``benchmarks/bench_serving.py --overload`` (the
numeric p99/goodput gates live there): one tenant floods, light tenants
keep getting served, every admitted request settles — shed requests
fail *typed* with a retry hint, and a drain loses nothing.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.resilience import DeadlineExceeded
from repro.serve import (AdmissionPolicy, BackgroundTCPServer, Client,
                         LoadShedder, LookupServer, QueueFullError,
                         ServerOverloadedError, SheddingPolicy)
from repro.testing import ChaosStore

from .harness import assert_identical


def keys_of(values) -> dict:
    return {"sku": np.asarray(values, dtype=np.int64)}


class TestBackpressureMeetsDeadlines:
    def test_expired_waiter_frees_its_queue_slot(self, mono_store):
        # Satellite contract: a queued waiter whose deadline has passed
        # must not hold its slot against a live admission — the full
        # queue evicts it (failing it alone, typed) and admits the
        # newcomer.  Cancelling the server's timer simulates the loop
        # being too busy to flush before the waiter died.
        async def scenario():
            server = LookupServer(
                mono_store,
                AdmissionPolicy(max_queue_requests=1, max_batch_keys=10_000,
                                max_delay_ms=10_000.0))
            doomed = asyncio.ensure_future(
                server.lookup(keys_of([3]), tenant="dead", deadline_ms=5.0))
            await asyncio.sleep(0)  # admit; timer armed at half-budget
            assert len(server._batcher) == 1
            server._timer.cancel()
            server._timer = None
            await asyncio.sleep(0.01)  # the waiter's 5 ms budget lapses
            got = await server.lookup(keys_of([6]), tenant="live")
            assert got.found.tolist() == [True]
            with pytest.raises(DeadlineExceeded):
                await doomed
            snap = server.stats.snapshot()
            assert snap["deadline_expired"] == 1
            assert snap["tenants"]["dead"]["errors"] == 1
            assert snap["tenants"]["live"]["errors"] == 0
            assert snap["tenants"]["live"]["requests"] == 1
        asyncio.run(scenario())

    def test_queue_full_rejects_land_on_the_rejecting_tenant_only(
            self, mono_store):
        # A live waiter holds the only slot: the newcomer is rejected,
        # and the reject is attributed to the *newcomer's* tenant — the
        # queued tenant's stats stay clean.
        async def scenario():
            server = LookupServer(
                mono_store,
                AdmissionPolicy(max_queue_requests=1, max_batch_keys=10_000,
                                max_delay_ms=10_000.0))
            waiting = asyncio.ensure_future(
                server.lookup(keys_of([3]), tenant="patient"))
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError) as info:
                await server.lookup(keys_of([6]), tenant="pushy")
            assert not isinstance(info.value, ServerOverloadedError)
            snap = server.stats.snapshot()
            assert snap["rejected"] == 1
            assert snap["tenants"]["pushy"]["errors"] == 1
            assert snap["tenants"]["pushy"]["requests"] == 0
            assert snap["tenants"]["patient"]["errors"] == 0
            server._flush()
            assert (await waiting).found.tolist() == [True]
        asyncio.run(scenario())


class TestTypedWireErrors:
    def test_shed_over_tcp_carries_retry_after(self, mono_store):
        chaos = ChaosStore(mono_store, hang_s=30.0)
        shedder = LoadShedder(SheddingPolicy(target_delay_ms=5.0,
                                             hard_delay_ms=10.0,
                                             min_observations=1))
        shedder.observe_batch(1000, 1.0)
        server = BackgroundTCPServer(
            chaos, AdmissionPolicy(max_batch_keys=4, max_delay_ms=1.0),
            shedder=shedder)
        try:
            stuck = {}

            def wedge():
                with server.connect(timeout=60) as tcp:
                    stuck["response"] = tcp.lookup({"sku": [0, 3, 6, 9]})

            worker = threading.Thread(target=wedge)
            worker.start()
            for _ in range(400):
                if server.server.health["inflight_batches"]:
                    break
                time.sleep(0.005)
            with server.connect() as tcp:
                with pytest.raises(ServerOverloadedError) as info:
                    tcp.lookup({"sku": list(range(0, 60, 3))})
                # The hint crossed the wire and came back in seconds.
                assert info.value.retry_after_s is not None
                assert info.value.retry_after_s > 0
                # Typed errors stay catchable as the RuntimeError older
                # clients expect.
                assert isinstance(info.value, RuntimeError)
                assert tcp.health()["shed_level"] in ("shedding", "critical")
            chaos.release()
            worker.join(timeout=30)
            assert stuck["response"]["found"] == [True] * 4
        finally:
            chaos.release()
            server.close()

    def test_queue_full_over_tcp_is_typed(self, mono_store):
        chaos = ChaosStore(mono_store, hang_s=30.0)
        server = BackgroundTCPServer(
            chaos, AdmissionPolicy(max_queue_requests=1, max_batch_keys=4,
                                   max_delay_ms=10_000.0))
        try:
            holder = {}

            def occupy():
                with server.connect(timeout=60) as tcp:
                    holder["response"] = tcp.lookup({"sku": [3]})

            worker = threading.Thread(target=occupy)
            worker.start()
            for _ in range(400):
                if server.server.health["queued_requests"]:
                    break
                time.sleep(0.005)
            with server.connect() as tcp:
                with pytest.raises(ServerOverloadedError):
                    tcp.lookup({"sku": [6]})
            chaos.release()
            worker.join(timeout=30)
            assert holder["response"]["found"] == [True]
        finally:
            chaos.release()
            server.close()


class TestFloodScenario:
    def test_flood_is_contained_and_nothing_is_lost(self, mono_store):
        # One tenant floods 2x what the (slowed) store can absorb; four
        # light tenants trickle.  Light requests must all succeed (with
        # bounded typed retries), flood requests must each settle —
        # served or shed, never hung — and the closing drain must lose
        # zero admitted work.
        chaos = ChaosStore(mono_store, latency_s=0.02)
        shedder = LoadShedder(SheddingPolicy(target_delay_ms=10.0,
                                             hard_delay_ms=200.0,
                                             min_observations=1))
        client = Client(
            chaos,
            AdmissionPolicy(max_batch_keys=64, max_delay_ms=5.0,
                            tenant_quota_keys=256),
            shedder=shedder)
        flood_futures = []
        light_failures = []
        light_parity = []
        try:
            def flood():
                rng = np.random.default_rng(11)
                for _ in range(30):
                    request = keys_of(rng.integers(0, 900, size=32) * 3)
                    flood_futures.append(
                        client.submit(request, tenant="flood"))
                    time.sleep(0.002)

            def light(tenant_index):
                rng = np.random.default_rng(100 + tenant_index)
                tenant = f"light-{tenant_index}"
                for _ in range(5):
                    request = keys_of(rng.integers(0, 900, size=4) * 3)
                    want = mono_store.lookup(request)
                    for _attempt in range(50):
                        try:
                            got = client.lookup(request, tenant=tenant)
                            break
                        except ServerOverloadedError as exc:
                            time.sleep(exc.retry_after_s or 0.005)
                    else:
                        light_failures.append(tenant)
                        return
                    mismatch = assert_identical(got, want, tenant)
                    if mismatch:
                        light_parity.append(mismatch)
                    time.sleep(0.005)

            threads = [threading.Thread(target=flood)] + \
                [threading.Thread(target=light, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
            assert light_failures == []
            assert light_parity == []
            # Every flood submission settles: a result or a typed shed.
            served = shed = 0
            for future in flood_futures:
                try:
                    result = future.result(timeout=60)
                    assert result.found.size == 32
                    served += 1
                except QueueFullError:
                    shed += 1
            assert served + shed == 30
            assert served >= 1  # the flood was degraded, not blackholed
            report = client.drain(timeout=120)
            assert "awaited_batches" in report
            snap = client.stats.snapshot()
            assert snap["tenants"]["flood"]["requests"] == served
        finally:
            chaos.release()
            try:
                client.close()
            except RuntimeError:
                pass
