"""Server behavior: parity, coalescing, stats, transports, facade, CLI."""

import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro.serve import AdmissionPolicy, BackgroundTCPServer, ServeStats

from .harness import assert_identical

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


def keys_of(values) -> dict:
    return {"sku": np.asarray(values, dtype=np.int64)}


class TestSingleRequestParity:
    def test_hit_and_miss_mix(self, sharded_store):
        query = keys_of([0, 1, 3, 6, 9999, 3 * 899, 5])
        with repro.serving(sharded_store) as client:
            got = client.lookup(query)
        assert assert_identical(got, sharded_store.lookup(query),
                                "single") is None

    def test_monolithic_store_served_identically(self, mono_store):
        query = keys_of([0, 3, 4, 12, 10_000])
        with repro.serving(mono_store) as client:
            got = client.lookup(query)
        assert assert_identical(got, mono_store.lookup(query),
                                "mono") is None

    def test_lookup_one_convenience(self, sharded_store):
        with repro.serving(sharded_store) as client:
            row = client.lookup_one(sku=6)
            assert row is not None and row["price"] == (6 * 7) % 127
            assert client.lookup_one(sku=7) is None

    def test_empty_request_resolves_empty(self, sharded_store):
        with repro.serving(sharded_store) as client:
            got = client.lookup(keys_of([]))
        assert len(got) == 0
        assert set(got.values) == set(sharded_store.value_names)


class TestCoalescing:
    def test_concurrent_requests_share_batches(self, sharded_store):
        policy = AdmissionPolicy(max_batch_keys=100_000, max_delay_ms=25.0)
        with repro.serving(sharded_store, policy=policy) as client:
            queries = [keys_of([3 * i, 3 * i + 1, 12, 9999])
                       for i in range(32)]
            futures = [client.submit(q) for q in queries]
            results = [f.result(timeout=60) for f in futures]
            snap = client.stats.snapshot()
        for query, got in zip(queries, results):
            assert assert_identical(got, sharded_store.lookup(query),
                                    "coalesced") is None
        # 32 requests admitted inside one 25 ms window: far fewer store
        # calls than requests, and the shared keys deduped.
        assert snap["requests_coalesced"] == 32
        assert snap["batches_formed"] < 32
        assert snap["coalesce_ratio"] > 1.0
        assert snap["dedup_ratio"] > 1.0

    def test_duplicate_keys_within_one_request_survive(self, sharded_store):
        query = keys_of([6, 6, 6, 7, 7, 6])
        with repro.serving(sharded_store) as client:
            got = client.lookup(query)
        assert assert_identical(got, sharded_store.lookup(query),
                                "dupes") is None

    def test_per_tenant_stats_separate(self, sharded_store):
        with repro.serving(sharded_store) as client:
            client.lookup(keys_of([3, 6]), tenant="alpha")
            client.lookup(keys_of([9]), tenant="beta")
            client.lookup(keys_of([12]), tenant="alpha")
            snap = client.stats.snapshot()
        assert snap["tenants"]["alpha"]["requests"] == 2
        assert snap["tenants"]["alpha"]["keys"] == 3
        assert snap["tenants"]["beta"]["requests"] == 1
        assert snap["tenants"]["alpha"]["p50_seconds"] is not None
        assert snap["tenants"]["alpha"]["p99_seconds"] is not None

    def test_shared_stats_sink(self, sharded_store):
        sink = ServeStats()
        with repro.serving(sharded_store, stats=sink) as client:
            client.lookup(keys_of([3]))
        assert sink.batches_formed == 1
        assert sink.requests_coalesced == 1


class TestServingFacade:
    def test_serving_url_opens_read_only_and_owns_store(self, tmp_path):
        keys = np.arange(120, dtype=np.int64) * 2
        table = repro.ColumnTable({"k": keys, "v": keys % 17}, key=("k",))
        url = str(tmp_path / "store")
        repro.build(table, repro.DeepMappingConfig(epochs=1, seed=0),
                    shards=2, url=url).close()
        client = repro.serving(url)
        try:
            store = client.store
            with pytest.raises(PermissionError):
                store.insert({"k": np.array([999], dtype=np.int64),
                              "v": np.array([1], dtype=np.int64)})
            got = client.lookup({"k": np.array([4, 5], dtype=np.int64)})
            assert got.found.tolist() == [True, False]
        finally:
            client.close()

    def test_serving_rejects_other_targets(self):
        with pytest.raises(TypeError):
            repro.serving(42)

    def test_closed_client_refuses_new_lookups(self, sharded_store):
        client = repro.serving(sharded_store)
        client.close()
        client.close()  # idempotent
        with pytest.raises(RuntimeError):
            client.lookup(keys_of([3]))


class TestTCPTransport:
    def test_round_trip_and_stats(self, sharded_store):
        with BackgroundTCPServer(sharded_store) as server:
            with server.connect() as tcp:
                assert tcp.ping()
                response = tcp.lookup({"sku": [3, 4, 9999]}, tenant="net")
                want = sharded_store.lookup(keys_of([3, 4, 9999]))
                assert response["found"] == [bool(b) for b in want.found]
                for name in sharded_store.value_names:
                    assert response["values"][name] == \
                        np.asarray(want.values[name]).tolist()
                stats = tcp.stats()
                assert stats["requests_coalesced"] >= 1
                assert stats["tenants"]["net"]["requests"] == 1

    def test_concurrent_tcp_clients_coalesce(self, sharded_store):
        policy = AdmissionPolicy(max_batch_keys=100_000, max_delay_ms=25.0)
        with BackgroundTCPServer(sharded_store, policy=policy) as server:
            def one(i):
                with server.connect() as tcp:
                    return tcp.lookup({"sku": [3 * i, 12, 9999]})
            with ThreadPoolExecutor(16) as pool:
                responses = list(pool.map(one, range(16)))
            snap = server.stats.snapshot()
        for i, response in enumerate(responses):
            want = sharded_store.lookup(keys_of([3 * i, 12, 9999]))
            assert response["found"] == [bool(b) for b in want.found]
        assert snap["batches_formed"] < 16
        assert snap["coalesce_ratio"] > 1.0

    def test_bad_requests_fail_alone_connection_stays_up(self, sharded_store):
        with BackgroundTCPServer(sharded_store) as server:
            with server.connect() as tcp:
                # Malformed JSON: answered with an error line, not a drop.
                tcp._file.write(b"{not json\n")
                tcp._file.flush()
                assert "bad JSON" in json.loads(tcp._file.readline())["error"]
                # Unknown op: error carries the op name.
                assert "frobnicate" in tcp._call({"op": "frobnicate"})["error"]
                # Bad key dtype: rejected at admission, per-request.
                with pytest.raises(RuntimeError, match="TypeError"):
                    tcp.lookup({"sku": ["strings", "not", "ints"]})
                # The connection survived all three failures.
                assert tcp.ping()
                good = tcp.lookup({"sku": [3]})
                assert good["found"] == [True]


class TestServeCLI:
    def test_parser_wires_serve_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["serve", "mem://x", "--port", "7"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.port == 7
        assert args.max_batch_keys == 8192
        assert args.max_delay_ms == 2.0

    def test_cli_serves_a_saved_store_over_tcp(self, tmp_path):
        keys = np.arange(150, dtype=np.int64) * 2
        table = repro.ColumnTable({"k": keys, "v": keys % 23}, key=("k",))
        url = str(tmp_path / "cli-store")
        repro.build(table, repro.DeepMappingConfig(epochs=1, seed=0),
                    shards=2, url=url).close()

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", url, "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True)
        try:
            ready = proc.stdout.readline()
            assert "serving" in ready and "127.0.0.1:" in ready, ready
            port = int(ready.split("127.0.0.1:")[1].split()[0])
            from repro.serve import TCPClient
            deadline = time.monotonic() + 30
            while True:
                try:
                    tcp = TCPClient("127.0.0.1", port, timeout=10)
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            with tcp:
                response = tcp.lookup({"k": [4, 5]})
                assert response["found"] == [True, False]
                assert response["values"]["v"][0] == 4 % 23
        finally:
            proc.terminate()
            proc.wait(timeout=30)
            proc.stdout.close()
