"""Admission-policy behavior under a fake clock.

The :class:`~repro.serve.batcher.Batcher` is event-loop-free by design:
these tests advance a fake monotonic clock explicitly and check the two
flush triggers and the idle contract — then one real-loop test pins the
"zero busy-wait wakeups while idle" claim on the live server.
"""

import time

import numpy as np
import pytest

import repro
from repro.resilience import Deadline
from repro.serve import AdmissionPolicy, Batcher, QueueFullError
from repro.serve.batcher import PendingRequest, normalize_request_keys


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def request(n_keys: int, tenant: str = "t",
            deadline=None) -> PendingRequest:
    keys = normalize_request_keys(
        {"sku": np.arange(n_keys, dtype=np.int64)}, ("sku",))
    return PendingRequest(keys, tenant, future=None, admitted_at=0.0,
                          deadline=deadline)


class TestPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_batch_keys=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_delay_ms=-1)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_requests=0)

    def test_delay_converts_to_seconds(self):
        assert AdmissionPolicy(max_delay_ms=250.0).max_delay_seconds == 0.25


class TestDelayTrigger:
    def test_partial_batch_flushes_at_deadline(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=1000,
                                          max_delay_ms=5.0), clock=clock)
        assert batcher.add(request(3)) is False
        assert batcher.deadline() == pytest.approx(clock.now + 0.005)
        clock.advance(0.004)
        assert not batcher.due()
        clock.advance(0.002)
        assert batcher.due()
        batch = batcher.take()
        assert [r.n_keys for r in batch] == [3]

    def test_later_requests_do_not_extend_the_deadline(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=1000,
                                          max_delay_ms=5.0), clock=clock)
        batcher.add(request(1))
        first_deadline = batcher.deadline()
        clock.advance(0.003)
        batcher.add(request(1))  # the oldest waiter still bounds the delay
        assert batcher.deadline() == first_deadline

    def test_take_resets_the_clock(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_delay_ms=5.0), clock=clock)
        batcher.add(request(1))
        batcher.take()
        assert batcher.deadline() is None
        assert not batcher.due()
        # A fresh batch starts a fresh window from "now".
        clock.advance(60.0)
        batcher.add(request(1))
        assert batcher.deadline() == pytest.approx(clock.now + 0.005)


class TestUrgentWaiterMargin:
    def test_urgent_pull_leaves_service_budget(self):
        # Regression: the flush point used to be pulled to exactly the
        # urgent waiter's expiry, so the timer fired with zero budget
        # left and the waiter was always expired, never served.
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=1000,
                                          max_delay_ms=20.0), clock=clock)
        deadline = Deadline(0.005, clock=clock)  # 5 ms budget
        batcher.add(request(1, deadline=deadline))
        due = batcher.deadline()
        # Pulled ahead of the 20 ms policy point, but NOT to the expiry:
        # the flush keeps half the remaining budget for the store call.
        assert due == pytest.approx(clock.now + 0.0025)
        clock.now = due
        assert batcher.due()
        assert not deadline.expired

    def test_relaxed_deadline_does_not_pull_the_flush(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=1000,
                                          max_delay_ms=2.0), clock=clock)
        batcher.add(request(1, deadline=Deadline(1.0, clock=clock)))
        assert batcher.deadline() == pytest.approx(clock.now + 0.002)

    def test_more_urgent_waiter_pulls_again_never_later(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=1000,
                                          max_delay_ms=20.0), clock=clock)
        batcher.add(request(1, deadline=Deadline(0.010, clock=clock)))
        first = batcher.deadline()
        batcher.add(request(1, deadline=Deadline(0.002, clock=clock)))
        second = batcher.deadline()
        assert second < first
        assert second == pytest.approx(clock.now + 0.001)
        # a laggard with a roomy budget never moves the flush back
        batcher.add(request(1, deadline=Deadline(0.500, clock=clock)))
        assert batcher.deadline() == second


class TestSizeTrigger:
    def test_reaching_max_batch_keys_flushes_early(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=10,
                                          max_delay_ms=1000.0), clock=clock)
        assert batcher.add(request(4)) is False
        assert batcher.add(request(5)) is False
        assert batcher.add(request(1)) is True  # 10 keys: flush now
        assert batcher.pending_keys == 10
        assert len(batcher.take()) == 3

    def test_single_oversized_request_flushes_immediately(self):
        batcher = Batcher(AdmissionPolicy(max_batch_keys=8), clock=FakeClock())
        assert batcher.add(request(64)) is True

    def test_queue_bound_rejects_without_dropping_queued(self):
        batcher = Batcher(AdmissionPolicy(max_batch_keys=1000,
                                          max_queue_requests=2),
                          clock=FakeClock())
        batcher.add(request(1))
        batcher.add(request(1))
        with pytest.raises(QueueFullError):
            batcher.add(request(1))
        assert len(batcher) == 2  # the queued pair is untouched


class TestIdleContract:
    def test_idle_batcher_has_no_deadline(self):
        batcher = Batcher(AdmissionPolicy(), clock=FakeClock())
        assert batcher.deadline() is None
        assert not batcher.due()

    def test_idle_server_schedules_zero_wakeups(self, sharded_store):
        """An idle server must not poll: no timer armed, no wakeups."""
        with repro.serving(sharded_store,
                           policy=AdmissionPolicy(max_delay_ms=1.0)) as client:
            server = client.server
            time.sleep(0.2)  # plenty of 1 ms windows to wake up in, if polling
            assert server.stats.timer_wakeups == 0
            assert not server.timer_armed
            assert server.idle
            # One small request arms exactly one timer, which fires once.
            client.lookup({"sku": np.array([3], dtype=np.int64)})
            assert server.stats.timer_wakeups <= 1
            time.sleep(0.05)
            assert server.stats.timer_wakeups <= 1  # no residual polling
            assert not server.timer_armed

    def test_size_triggered_flush_needs_no_wakeup(self, sharded_store):
        """A full batch flushes inline — the armed timer is cancelled."""
        policy = AdmissionPolicy(max_batch_keys=4, max_delay_ms=60_000.0)
        with repro.serving(sharded_store, policy=policy) as client:
            client.lookup({"sku": np.arange(4, dtype=np.int64) * 3})
            assert client.stats.batches_formed == 1
            assert client.stats.timer_wakeups == 0
            assert not client.server.timer_armed
