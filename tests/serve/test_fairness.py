"""Per-tenant fair admission: quotas, weights, and the DRR drain.

The overload-control contract (``docs/serving.md``): a flooding tenant
is clipped to its weighted share of the queue (admission quota) and of
every fused batch (deficit-round-robin drain), while light tenants keep
admitting and ride the next flush.  All batcher-level — driven with a
fake clock, no event loop.
"""

import numpy as np
import pytest

from repro.resilience import Deadline
from repro.serve import (AdmissionPolicy, Batcher, QueueFullError,
                         TenantQuotaError)
from repro.serve.batcher import PendingRequest, normalize_request_keys


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def request(n_keys: int, tenant: str = "t", admitted_at: float = 0.0,
            deadline=None) -> PendingRequest:
    keys = normalize_request_keys(
        {"sku": np.arange(n_keys, dtype=np.int64)}, ("sku",))
    return PendingRequest(keys, tenant, future=None,
                          admitted_at=admitted_at, deadline=deadline)


class TestPolicyKnobs:
    def test_rejects_bad_fairness_knobs(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(tenant_quota_keys=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(tenant_weights={"a": 0.0})
        with pytest.raises(ValueError):
            AdmissionPolicy(tenant_weights={"a": -2.0})

    def test_weight_defaults_to_one(self):
        policy = AdmissionPolicy(tenant_weights={"gold": 3.0})
        assert policy.weight("gold") == 3.0
        assert policy.weight("anyone-else") == 1.0
        assert AdmissionPolicy().weight("x") == 1.0

    def test_quota_scales_with_weight(self):
        policy = AdmissionPolicy(tenant_quota_keys=100,
                                 tenant_weights={"gold": 2.5})
        assert policy.quota_keys("gold") == 250.0
        assert policy.quota_keys("bronze") == 100.0
        assert AdmissionPolicy().quota_keys("x") is None


class TestTenantQuota:
    def test_quota_rejects_one_tenant_not_its_neighbors(self):
        batcher = Batcher(AdmissionPolicy(max_batch_keys=10_000,
                                          tenant_quota_keys=10),
                          clock=FakeClock())
        batcher.add(request(8, tenant="flood"))
        # 8 + 3 > 10: the flooding tenant is clipped...
        with pytest.raises(TenantQuotaError):
            batcher.add(request(3, tenant="flood"))
        # ...but a TenantQuotaError is catchable as QueueFullError, and
        # other tenants keep admitting.
        with pytest.raises(QueueFullError):
            batcher.add(request(3, tenant="flood"))
        batcher.add(request(3, tenant="light"))
        assert batcher.tenant_queued_keys("flood") == 8
        assert batcher.tenant_queued_keys("light") == 3

    def test_quota_frees_as_batches_drain(self):
        batcher = Batcher(AdmissionPolicy(max_batch_keys=10_000,
                                          tenant_quota_keys=10),
                          clock=FakeClock())
        batcher.add(request(10, tenant="flood"))
        with pytest.raises(TenantQuotaError):
            batcher.add(request(1, tenant="flood"))
        batcher.take()
        batcher.add(request(10, tenant="flood"))  # quota freed by drain

    def test_weighted_quota(self):
        batcher = Batcher(AdmissionPolicy(max_batch_keys=10_000,
                                          tenant_quota_keys=10,
                                          tenant_weights={"gold": 2.0}),
                          clock=FakeClock())
        batcher.add(request(15, tenant="gold"))  # 15 <= 20: fine
        with pytest.raises(TenantQuotaError):
            batcher.add(request(15, tenant="bronze"))


class TestOverFairShare:
    def test_single_tenant_is_never_over_share(self):
        batcher = Batcher(AdmissionPolicy(), clock=FakeClock())
        batcher.add(request(500, tenant="only"))
        assert not batcher.over_fair_share("only", 500)

    def test_flooding_tenant_is_over_share_light_is_not(self):
        batcher = Batcher(AdmissionPolicy(), clock=FakeClock())
        batcher.add(request(90, tenant="flood"))
        batcher.add(request(10, tenant="light"))
        assert batcher.over_fair_share("flood", 10)
        assert not batcher.over_fair_share("light", 10)

    def test_weights_move_the_share(self):
        batcher = Batcher(AdmissionPolicy(tenant_weights={"gold": 3.0}),
                          clock=FakeClock())
        batcher.add(request(60, tenant="gold"))
        batcher.add(request(30, tenant="bronze"))
        # gold holds 60/90 but its fair share is 3/4 of the queue.
        assert not batcher.over_fair_share("gold")
        assert batcher.over_fair_share("bronze", 10)


class TestDRRDrain:
    def test_underfull_queue_drains_whole_in_arrival_order(self):
        # The historical behavior is untouched when everything fits.
        batcher = Batcher(AdmissionPolicy(max_batch_keys=100),
                          clock=FakeClock())
        for i, tenant in enumerate(["a", "b", "a", "c"]):
            batcher.add(request(5, tenant=tenant))
        batch = batcher.take()
        assert [r.tenant for r in batch] == ["a", "b", "a", "c"]
        assert len(batcher) == 0
        assert batcher.deadline() is None

    def test_overfull_queue_clips_the_flooding_tenant(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=10,
                                          max_delay_ms=5.0), clock=clock)
        for _ in range(8):
            batcher.add(request(3, tenant="flood", admitted_at=clock.now))
        batcher.add(request(2, tenant="light", admitted_at=clock.now))
        batch = batcher.take()
        # The light tenant's lone request rides the FIRST batch even
        # though the flooder queued 24 keys ahead of it.
        assert "light" in {r.tenant for r in batch}
        taken_keys = sum(r.n_keys for r in batch)
        assert taken_keys >= 10  # batch filled (may overshoot one req)
        assert taken_keys <= 10 + 3
        # Leftovers stay queued, attributed to their tenant, with the
        # delay clock re-pointed (not idle).
        assert len(batcher) == 9 - len(batch)
        assert batcher.tenant_queued_keys("flood") == batcher.pending_keys
        assert batcher.deadline() is not None

    def test_leftovers_drain_in_fifo_order_across_takes(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=6), clock=clock)
        for i in range(6):
            req = request(3, tenant="flood")
            req.key_cols["sku"] = np.full(3, i, dtype=np.int64)
            batcher.add(req)
        seen = []
        while len(batcher):
            for r in batcher.take():
                seen.append(int(r.key_cols["sku"][0]))
        assert seen == sorted(seen)  # per-tenant FIFO is preserved

    def test_weighted_drr_gives_heavier_tenant_more_of_each_batch(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=12,
                                          tenant_weights={"gold": 2.0}),
                          clock=clock)
        for _ in range(12):
            batcher.add(request(2, tenant="gold"))
            batcher.add(request(2, tenant="bronze"))
        batch = batcher.take()
        gold = sum(r.n_keys for r in batch if r.tenant == "gold")
        bronze = sum(r.n_keys for r in batch if r.tenant == "bronze")
        assert gold > bronze

    def test_oversized_request_still_flushes(self):
        # One request larger than max_batch_keys must not wedge the DRR
        # loop (deficit accumulates until it covers the head).
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=8), clock=clock)
        batcher.add(request(3, tenant="a"))
        batcher.add(request(64, tenant="b"))
        drained = []
        while len(batcher):
            drained.extend(batcher.take())
        assert sum(r.n_keys for r in drained) == 67

    def test_leftover_deadline_tracks_oldest_remaining_waiter(self):
        clock = FakeClock()
        policy = AdmissionPolicy(max_batch_keys=4, max_delay_ms=5.0)
        batcher = Batcher(policy, clock=clock)
        batcher.add(request(4, tenant="flood", admitted_at=clock.now))
        clock.advance(0.002)
        batcher.add(request(4, tenant="flood", admitted_at=clock.now))
        batcher.take()  # clips to the first request
        assert len(batcher) == 1
        # The leftover was admitted at now-0 (the second add): its
        # policy point is its own admission + max_delay.
        assert batcher.deadline() == pytest.approx(clock.now + 0.005)

    def test_leftover_with_urgent_deadline_pulls_the_point_earlier(self):
        clock = FakeClock()
        policy = AdmissionPolicy(max_batch_keys=4, max_delay_ms=50.0)
        batcher = Batcher(policy, clock=clock)
        batcher.add(request(4, tenant="flood", admitted_at=clock.now))
        urgent = Deadline(0.004, clock=clock)
        batcher.add(request(4, tenant="flood", admitted_at=clock.now,
                            deadline=urgent))
        batcher.take()
        # Leftover point flushes within the urgent waiter's half-budget,
        # not the 50 ms policy delay.
        assert batcher.deadline() <= clock.now + 0.002 + 1e-9


class TestEvictExpired:
    def test_expired_waiters_are_evicted_and_returned(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(max_batch_keys=1000), clock=clock)
        dead = request(3, tenant="a", deadline=Deadline(0.001, clock=clock))
        batcher.add(dead)
        batcher.add(request(2, tenant="b"))
        clock.advance(0.01)
        evicted = batcher.evict_expired()
        assert evicted == [dead]
        assert len(batcher) == 1
        assert batcher.pending_keys == 2
        assert batcher.tenant_queued_keys("a") == 0
        assert batcher.tenant_queued_keys("b") == 2

    def test_nothing_expired_is_a_noop(self):
        clock = FakeClock()
        batcher = Batcher(AdmissionPolicy(), clock=clock)
        batcher.add(request(3))
        assert batcher.evict_expired() == []
        assert len(batcher) == 1
