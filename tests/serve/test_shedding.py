"""Adaptive load shedding: the EWMA shedder and its server wiring.

The degradation ladder's middle rungs (``docs/serving.md``): when the
estimated backlog delay crosses ``target_delay_ms`` the server refuses
over-fair-share work early with a retry-after hint; past
``hard_delay_ms`` it refuses everything new.  Cold shedders admit all.
"""

import threading

import numpy as np
import pytest

from repro.serve import (AdmissionPolicy, Client, LoadShedder,
                         ServerOverloadedError, SheddingPolicy)
from repro.testing import ChaosStore


class TestSheddingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SheddingPolicy(target_delay_ms=0.0)
        with pytest.raises(ValueError):
            SheddingPolicy(target_delay_ms=50.0, hard_delay_ms=20.0)
        with pytest.raises(ValueError):
            SheddingPolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            SheddingPolicy(min_observations=0)


class TestLoadShedder:
    def _warm(self, shedder: LoadShedder, keys_per_s: float = 1000.0,
              batches: int = 3) -> None:
        for _ in range(batches):
            shedder.observe_batch(int(keys_per_s), 1.0)

    def test_cold_shedder_admits_everything(self):
        shedder = LoadShedder(SheddingPolicy(min_observations=3))
        assert shedder.admit(10_000, 1_000_000, over_share=True) is None
        assert shedder.estimated_delay_ms(500) is None
        assert shedder.service_rate_keys_per_s is None
        assert shedder.level == "healthy"
        # Two observations are still below min_observations.
        shedder.observe_batch(100, 0.1)
        shedder.observe_batch(100, 0.1)
        assert shedder.admit(10_000, 1_000_000, over_share=True) is None

    def test_delay_estimate_follows_the_rate(self):
        shedder = LoadShedder(SheddingPolicy(min_observations=1))
        shedder.observe_batch(1000, 1.0)  # 1000 keys/s
        assert shedder.estimated_delay_ms(100) == pytest.approx(100.0)
        assert shedder.service_rate_keys_per_s == pytest.approx(1000.0)

    def test_healthy_backlog_admits(self):
        shedder = LoadShedder(SheddingPolicy(target_delay_ms=20.0,
                                             hard_delay_ms=100.0))
        self._warm(shedder)  # 1000 keys/s -> 10 keys = 10 ms
        assert shedder.admit(5, 5, over_share=True) is None
        assert shedder.level == "healthy"

    def test_over_target_sheds_only_over_share_tenants(self):
        shedder = LoadShedder(SheddingPolicy(target_delay_ms=20.0,
                                             hard_delay_ms=100.0))
        self._warm(shedder)  # 50 backlog keys = 50 ms: between the rungs
        assert shedder.admit(10, 40, over_share=False) is None
        retry = shedder.admit(10, 40, over_share=True)
        assert retry is not None and retry > 0
        assert shedder.level == "shedding"

    def test_over_hard_sheds_everyone(self):
        shedder = LoadShedder(SheddingPolicy(target_delay_ms=20.0,
                                             hard_delay_ms=100.0))
        self._warm(shedder)  # 200 backlog keys = 200 ms: underwater
        retry = shedder.admit(10, 190, over_share=False)
        assert retry is not None
        assert shedder.level == "critical"
        # The hint estimates the drain back to target: ~180 ms.
        assert retry == pytest.approx(0.180, rel=0.05)

    def test_retry_after_is_floored(self):
        shedder = LoadShedder(SheddingPolicy(target_delay_ms=20.0,
                                             hard_delay_ms=100.0,
                                             min_retry_after_ms=5.0))
        self._warm(shedder)
        retry = shedder.admit(1, 21, over_share=True)  # 22 ms: barely over
        assert retry is not None
        assert retry >= 0.005

    def test_snapshot_shape(self):
        shedder = LoadShedder()
        snap = shedder.snapshot()
        assert snap["level"] == "healthy"
        assert snap["service_rate_keys_per_s"] is None
        assert snap["observations"] == 0


class TestServerShedding:
    def _keys(self, n: int, start: int = 0):
        return {"sku": (np.arange(n, dtype=np.int64) + start) * 3}

    def test_overloaded_server_sheds_with_retry_after(self, mono_store):
        # Wedge the store so admitted work piles up as in-flight backlog,
        # pre-warm the shedder's rate estimate, and watch the next
        # admission bounce with a typed, hinted error.
        chaos = ChaosStore(mono_store, hang_s=30.0)
        shedder = LoadShedder(SheddingPolicy(target_delay_ms=5.0,
                                             hard_delay_ms=10.0,
                                             min_observations=1))
        shedder.observe_batch(1000, 1.0)  # 1000 keys/s
        client = Client(chaos, AdmissionPolicy(max_batch_keys=4,
                                               max_delay_ms=1.0),
                        shedder=shedder)
        try:
            # 4 keys flush immediately and wedge: 4 in-flight keys plus
            # the next request's own 20 -> 24 ms estimated delay > hard.
            stuck = client.submit(self._keys(4), tenant="flood")
            deadline = threading.Event()
            for _ in range(200):
                if client.server.health["inflight_batches"]:
                    break
                deadline.wait(0.005)
            with pytest.raises(ServerOverloadedError) as info:
                client.lookup(self._keys(20), tenant="flood")
            assert info.value.retry_after_s is not None
            assert info.value.retry_after_s > 0
            snap = client.stats.snapshot()
            assert snap["shed"] == 1
            assert snap["tenants"]["flood"]["shed"] == 1
            assert client.server.health["shed_level"] in ("shedding",
                                                          "critical")
            chaos.release()
            assert stuck.result(timeout=30) is not None
        finally:
            chaos.release()
            client.close()

    def test_light_tenant_admits_while_flooder_sheds(self, mono_store):
        # Soft tier: delay between target and hard sheds only tenants
        # over their fair share of the queue.
        chaos = ChaosStore(mono_store, hang_s=30.0)
        shedder = LoadShedder(SheddingPolicy(target_delay_ms=5.0,
                                             hard_delay_ms=10_000.0,
                                             min_observations=1))
        shedder.observe_batch(1000, 1.0)
        client = Client(chaos, AdmissionPolicy(max_batch_keys=1000,
                                               max_delay_ms=500.0),
                        shedder=shedder)
        try:
            # Two tenants in the forming batch: flood holds ~95% of the
            # queued keys (over its half share), light is far under.
            flood = client.submit(self._keys(40), tenant="flood")
            light = client.submit(self._keys(2, start=200), tenant="light")
            for _ in range(200):
                if client.server.health["queued_keys"] >= 42:
                    break
                threading.Event().wait(0.005)
            # Estimated delay ~50 ms: over target, under hard — only the
            # over-share tenant is refused.
            with pytest.raises(ServerOverloadedError):
                client.lookup(self._keys(8, start=100), tenant="flood")
            more_light = client.submit(self._keys(2, start=300),
                                       tenant="light")
            snap = client.stats.snapshot()
            assert snap["tenants"]["flood"]["shed"] == 1
            assert snap["tenants"].get("light", {}).get("shed", 0) == 0
            chaos.release()
            assert flood.result(timeout=30) is not None
            assert light.result(timeout=30) is not None
            assert more_light.result(timeout=30) is not None
        finally:
            chaos.release()
            client.close()

    def test_shed_errors_do_not_reach_the_store(self, mono_store):
        # A shed is an early refusal: the store must see zero calls.
        calls = []
        original = mono_store.lookup_async

        class Counting:
            def __getattr__(self, name):
                return getattr(mono_store, name)

            def lookup_async(self, keys, **kwargs):
                calls.append(1)
                return original(keys, **kwargs)

        shedder = LoadShedder(SheddingPolicy(target_delay_ms=1.0,
                                             hard_delay_ms=1.0,
                                             min_observations=1))
        shedder.observe_batch(10, 10.0)  # 1 key/s: everything is overload
        client = Client(Counting(), shedder=shedder)
        try:
            with pytest.raises(ServerOverloadedError):
                client.lookup(self._keys(50), tenant="t")
            assert calls == []
        finally:
            client.close()
