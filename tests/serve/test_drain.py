"""Zero-downtime drain, the health surface, and graceful CLI shutdown.

The drain contract (``docs/serving.md``): from the instant a drain
starts, new admissions are refused with ``ServerDrainingError`` and
``health["ready"]`` reads false — but every request already admitted,
queued or in an executing batch, completes normally.  Zero in-flight
work is lost.  ``python -m repro serve`` wires SIGTERM/SIGINT to the
same path and exits 0.
"""

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
from repro.serve import (AdmissionPolicy, BackgroundTCPServer, Client,
                         LookupServer, ServerDrainingError, TCPClient)
from repro.testing import ChaosStore

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


def keys_of(values) -> dict:
    return {"sku": np.asarray(values, dtype=np.int64)}


class TestServerDrain:
    def test_drain_before_first_request_just_seals(self, mono_store):
        async def scenario():
            server = LookupServer(mono_store)
            report = await server.drain()
            assert report == {"flushed_requests": 0, "awaited_batches": 0}
            with pytest.raises(RuntimeError):
                await server.lookup(keys_of([3]))
        asyncio.run(scenario())

    def test_drain_completes_queued_and_inflight_work(self, mono_store):
        # Requests in three states when drain starts: resolved, queued in
        # the forming batch, and mid-store-call.  Drain must finish the
        # latter two and refuse the late arrival.
        chaos = ChaosStore(mono_store, latency_s=0.05)

        async def scenario():
            server = LookupServer(
                chaos, AdmissionPolicy(max_batch_keys=4, max_delay_ms=60.0))
            inflight = asyncio.ensure_future(
                server.lookup(keys_of([0, 3, 6, 9])))     # flushes: size
            while not server._inflight:
                await asyncio.sleep(0.001)
            queued = asyncio.ensure_future(server.lookup(keys_of([12])))
            await asyncio.sleep(0)                         # let it admit
            assert len(server._batcher) == 1
            draining = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0)  # drain has started, not finished
            # Mid-drain arrivals are refused typed (route elsewhere)...
            with pytest.raises(ServerDrainingError):
                await server.lookup(keys_of([15]))
            report = await draining
            # ...and post-drain the server is plain closed.
            with pytest.raises(RuntimeError):
                await server.lookup(keys_of([18]))
            first, second = await inflight, await queued
            assert first.found.tolist() == [True] * 4
            assert second.found.tolist() == [True]
            assert report["flushed_requests"] == 1
            assert report["awaited_batches"] >= 1
        asyncio.run(scenario())

    def test_drain_is_idempotent(self, mono_store):
        async def scenario():
            server = LookupServer(mono_store)
            await server.lookup(keys_of([3]))
            await server.drain()
            report = await server.drain()
            assert report["flushed_requests"] == 0
        asyncio.run(scenario())

    def test_drain_flushes_drr_leftovers(self, mono_store):
        # Overload can leave requests the DRR clip didn't fit; drain
        # must loop flushes until the queue is truly empty.
        async def scenario():
            # Two tenants around a 10-key budget: the size-triggered
            # flush DRR-clips and leaves one flood request queued for
            # the (distant) delay timer.
            server = LookupServer(
                mono_store,
                AdmissionPolicy(max_batch_keys=10, max_delay_ms=5_000.0))
            waiters = [asyncio.ensure_future(
                server.lookup(keys_of([9 * i, 9 * i + 3, 9 * i + 6]),
                              tenant="flood"))
                for i in range(3)]
            waiters.append(asyncio.ensure_future(
                server.lookup(keys_of([300, 303, 306, 309]),
                              tenant="light")))
            await asyncio.sleep(0.05)
            assert len(server._batcher) >= 1  # leftover waiting on timer
            report = await server.drain()
            results = await asyncio.gather(*waiters)
            assert all(r.found.tolist() == [True] * r.found.size
                       for r in results)
            assert report["flushed_requests"] >= 1
            assert len(server._batcher) == 0
        asyncio.run(scenario())

    def test_health_transitions(self, mono_store):
        async def scenario():
            server = LookupServer(mono_store)
            await server.lookup(keys_of([3]))
            health = server.health
            assert health["ready"] and health["live"]
            assert not health["draining"]
            assert health["shed_level"] == "healthy"
            await server.drain()
            health = server.health
            assert not health["ready"]
            assert not health["live"]  # fully closed after drain returns
            assert health["draining"]
        asyncio.run(scenario())


class TestClientDrain:
    def test_sync_drain_loses_nothing(self, mono_store):
        chaos = ChaosStore(mono_store, latency_s=0.03)
        client = Client(chaos, AdmissionPolicy(max_batch_keys=8,
                                               max_delay_ms=20.0))
        futures = [client.submit(keys_of([3 * i]), tenant=f"t{i % 4}")
                   for i in range(24)]
        report = client.drain(timeout=60)
        for future in futures:
            assert future.result(timeout=30).found.tolist() == [True]
        assert report["awaited_batches"] >= 1
        with pytest.raises(RuntimeError):
            client.lookup(keys_of([3]))
        client.drain()  # idempotent, returns zeros
        mono_store_alive = mono_store.lookup(keys_of([3]))
        assert mono_store_alive.found.tolist() == [True]

    def test_drain_report_counts_queued_flushes(self, mono_store):
        client = Client(mono_store, AdmissionPolicy(max_batch_keys=10_000,
                                                    max_delay_ms=5_000.0))
        futures = [client.submit(keys_of([3 * i])) for i in range(5)]
        for _ in range(200):
            if client.server.health["queued_requests"] == 5:
                break
            time.sleep(0.005)
        report = client.drain(timeout=60)
        assert report["flushed_requests"] == 5
        assert all(f.result(timeout=10).found.tolist() == [True]
                   for f in futures)


class TestTCPDrain:
    def test_health_and_drain_verbs(self, sharded_store):
        server = BackgroundTCPServer(sharded_store)
        try:
            with server.connect() as tcp:
                health = tcp.health()
                assert health["ready"] and health["live"]
                tcp.lookup({"sku": [3, 9999]})
                report = tcp.drain()
                assert report["flushed_requests"] == 0
                health = tcp.health()
                assert not health["ready"]
                assert not health["live"]
                with pytest.raises(RuntimeError):
                    tcp.lookup({"sku": [3]})  # drained == closed
        finally:
            server.close()

    def test_background_server_drain_stops_listener(self, sharded_store):
        server = BackgroundTCPServer(sharded_store)
        with server.connect() as tcp:
            tcp.lookup({"sku": [3]})
        report = server.drain()
        assert "flushed_requests" in report
        with pytest.raises(OSError):
            TCPClient(server.host, server.port, timeout=0.5,
                      connect_attempts=1)
        server.drain()  # idempotent
        server.close()  # also a no-op now

    def test_inflight_tcp_request_survives_drain(self, mono_store):
        # A lookup racing the drain verb on another connection must
        # complete (admitted work finishes) or be refused typed (never
        # admitted) — nothing hangs, nothing is dropped untyped.
        chaos = ChaosStore(mono_store, latency_s=0.05)
        server = BackgroundTCPServer(
            chaos, AdmissionPolicy(max_batch_keys=4, max_delay_ms=10.0))
        outcome = {}

        def slow_lookup():
            with server.connect(timeout=30) as tcp:
                try:
                    outcome["result"] = tcp.lookup({"sku": [0, 3, 6, 9]})
                except ServerDrainingError as exc:
                    outcome["refused"] = exc

        worker = threading.Thread(target=slow_lookup)
        worker.start()
        while not server.server._inflight \
                and not len(server.server._batcher) \
                and worker.is_alive():
            time.sleep(0.002)
        report = server.drain()
        worker.join(timeout=30)
        assert not worker.is_alive()
        if "result" in outcome:
            assert outcome["result"]["found"] == [True] * 4
        else:
            assert isinstance(outcome["refused"], ServerDrainingError)
        assert "awaited_batches" in report


class TestCLIGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        keys = np.arange(150, dtype=np.int64) * 2
        table = repro.ColumnTable({"k": keys, "v": keys % 23}, key=("k",))
        url = str(tmp_path / "drain-store")
        repro.build(table, repro.DeepMappingConfig(epochs=1, seed=0),
                    shards=2, url=url).close()

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", url, "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True)
        try:
            ready = proc.stdout.readline()
            assert "drains" in ready, ready  # shutdown contract advertised
            port = int(ready.split("127.0.0.1:")[1].split()[0])
            deadline = time.monotonic() + 30
            while True:
                try:
                    tcp = TCPClient("127.0.0.1", port, timeout=10)
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            with tcp:
                assert tcp.lookup({"k": [4]})["found"] == [True]
                assert tcp.health()["ready"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
            proc.stdout.close()
