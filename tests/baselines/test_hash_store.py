"""Tests for the hash-based baselines (HB / HBC-*)."""

import numpy as np
import pytest

from repro.baselines import ArrayStore, HashStore
from repro.data import synthetic
from repro.storage import BufferPool


@pytest.fixture(scope="module")
def table():
    return synthetic.multi_column(2000, "low")


class TestBuildLookup:
    def test_exact_lookup(self, table):
        store = HashStore(codec="zstd").build(table)
        res = store.lookup({"key": table.column("key")})
        assert res.found.all()
        for c in table.value_columns:
            got = res.values[c]
            want = table.column(c)
            assert all(got[i] == want[i] for i in range(table.n_rows))

    def test_missing_keys(self, table):
        store = HashStore().build(table)
        res = store.lookup({"key": np.array([10**6])})
        assert not res.found.any()

    def test_multiple_partitions(self, table):
        store = HashStore(target_partition_bytes=4096).build(table)
        assert store.partition_count > 1

    def test_naming(self):
        assert HashStore(codec="none").name == "HB"
        assert HashStore(codec="zstd").name == "HBC-Z"
        assert HashStore(codec="lzma").name == "HBC-L"

    def test_partition_bytes_validated(self):
        with pytest.raises(ValueError):
            HashStore(target_partition_bytes=0)


class TestPaperCharacteristics:
    def test_hash_bigger_than_array(self, table):
        """Sec. V-C: dict representations cost more storage than arrays."""
        hb = HashStore(codec="none").build(table).stored_bytes()
        ab = ArrayStore(codec="none").build(table).stored_bytes()
        assert hb > ab

    def test_compressed_variants_smaller(self, table):
        hb = HashStore(codec="none").build(table).stored_bytes()
        hbc_z = HashStore(codec="zstd").build(table).stored_bytes()
        hbc_l = HashStore(codec="lzma").build(table).stored_bytes()
        assert hbc_l < hbc_z < hb

    def test_tiny_pool_forces_partition_reloads(self, table):
        pool = BufferPool(budget_bytes=1)
        store = HashStore(codec="zstd", target_partition_bytes=4096,
                          pool=pool).build(table)
        store.lookup({"key": table.column("key")[:200]})
        store.lookup({"key": table.column("key")[:200]})
        assert pool.stats.counters.get("pool_hits", 0) == 0
        assert store.stats.seconds("deserialize") > 0


class TestMutations:
    def test_insert(self, table):
        store = HashStore(codec="zstd").build(table)
        batch = synthetic.insert_batch(table, 50, "low")
        store.insert(batch)
        res = store.lookup({"key": batch.column("key")})
        assert res.found.all()
        assert len(store) == table.n_rows + 50

    def test_delete(self, table):
        store = HashStore(codec="zstd").build(table)
        victims = table.column("key")[:30]
        assert store.delete({"key": victims}) == 30
        assert not store.lookup({"key": victims}).found.any()

    def test_insert_rewrites_touched_partitions(self, table):
        store = HashStore(codec="zstd", target_partition_bytes=4096).build(table)
        writes_before = store.stats.counters.get("blobs_read", 0)
        batch = synthetic.insert_batch(table, 20, "low")
        store.insert(batch)
        # Each touched partition was read back (deserialize) during insert.
        assert store.stats.counters.get("blobs_read", 0) >= writes_before
