"""Tests for the DeepSqueeze baseline (lossy semantic compression)."""

import numpy as np
import pytest

from repro.baselines import ArrayStore, DeepSqueeze
from repro.data import ColumnTable, synthetic
from repro.storage import BufferPool, MemoryBudgetError


@pytest.fixture(scope="module")
def table():
    return synthetic.multi_column(1500, "low")


class TestBuildLookup:
    def test_lookup_exact_thanks_to_outliers(self, table):
        """With ε=0.001 on coarse categorical grids, every cell that the
        autoencoder misses lands in the outlier table, so point lookups
        happen to be exact — at the cost of storing almost everything."""
        store = DeepSqueeze(epochs=10).build(table)
        res = store.lookup({"key": table.column("key")[:300]})
        assert res.found.all()
        for c in table.value_columns:
            got = res.values[c]
            want = table.column(c)[:300]
            assert all(got[i] == want[i] for i in range(300))

    def test_missing_keys(self, table):
        store = DeepSqueeze(epochs=5).build(table)
        res = store.lookup({"key": np.array([10**6])})
        assert not res.found.any()

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            DeepSqueeze(epsilon=0.0)


class TestPaperCharacteristics:
    def test_categorical_outliers_dominate(self, table):
        """The paper's mechanism for DS's poor ratio: quantization bins
        cannot capture categorical data, so the outlier table bloats."""
        store = DeepSqueeze(epochs=10).build(table)
        assert store.outlier_fraction() > 0.5

    def test_worse_ratio_than_syntactic_compressors(self, table):
        ds = DeepSqueeze(epochs=10).build(table).stored_bytes()
        abc_z = ArrayStore(codec="zstd").build(table).stored_bytes()
        assert ds > abc_z

    def test_oom_under_strict_memory_budget(self, table):
        """Table I's 'failed' entries: decoding the whole table does not
        fit a constrained pool."""
        pool = BufferPool(budget_bytes=1024, strict=True)
        store = DeepSqueeze(epochs=5, pool=pool).build(table)
        with pytest.raises(MemoryBudgetError):
            store.lookup({"key": table.column("key")[:10]})

    def test_numeric_like_data_compresses_better(self):
        """On a smooth high-cardinality column the autoencoder earns its
        keep: fewer outliers than on categorical noise."""
        keys = np.arange(4000, dtype=np.int64)
        smooth = ColumnTable(
            {
                "key": keys,
                "a": (np.sin(keys / 300.0) * 500 + 500).astype(np.int64),
                "b": (keys // 4).astype(np.int64),
            },
            key=("key",),
        )
        noisy_store = DeepSqueeze(epochs=15).build(
            synthetic.multi_column(4000, "low"))
        smooth_store = DeepSqueeze(epochs=15).build(smooth)
        assert smooth_store.outlier_fraction() < noisy_store.outlier_fraction()

    def test_reconstruction_cached_between_batches(self, table):
        store = DeepSqueeze(epochs=5).build(table)
        store.lookup({"key": table.column("key")[:10]})
        misses = store.pool.stats.counters["pool_misses"]
        store.lookup({"key": table.column("key")[10:20]})
        assert store.pool.stats.counters["pool_misses"] == misses
