"""Tests for the baseline factory."""

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.data import synthetic


@pytest.fixture(scope="module")
def table():
    return synthetic.single_column(800, "low")


@pytest.mark.parametrize("name", BASELINE_NAMES)
def test_every_name_builds_and_answers(name, table):
    store = make_baseline(name, target_partition_bytes=8192).build(table)
    assert store.name == name
    res = store.lookup({"key": table.column("key")[:50]})
    assert res.found.all()


def test_unknown_name_rejected():
    with pytest.raises(KeyError, match="unknown baseline"):
        make_baseline("LSM")


def test_all_stores_agree_with_each_other(table):
    """Every representation returns identical values (DS included — its
    outlier table patches the lossy reconstruction on this data)."""
    probe = {"key": table.column("key")[::7]}
    reference = None
    for name in BASELINE_NAMES:
        store = make_baseline(name).build(table)
        values = store.lookup(probe).values["value"]
        if reference is None:
            reference = [str(v) for v in values]
        else:
            assert [str(v) for v in values] == reference, name
