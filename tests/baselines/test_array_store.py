"""Tests for the array-based baselines (AB / ABC-*)."""

import numpy as np
import pytest

from repro.baselines import ArrayStore
from repro.data import ColumnTable, synthetic, tpch


@pytest.fixture(scope="module")
def table():
    return synthetic.multi_column(2000, "low")


class TestBuildLookup:
    def test_exact_lookup(self, table):
        store = ArrayStore(codec="zstd").build(table)
        res = store.lookup({"key": table.column("key")})
        assert res.found.all()
        for c in table.value_columns:
            np.testing.assert_array_equal(res.values[c], table.column(c))

    def test_missing_keys(self, table):
        store = ArrayStore().build(table)
        res = store.lookup({"key": np.array([10**6, -3])})
        assert not res.found.any()

    def test_duplicate_keys_rejected(self):
        bad = ColumnTable({"k": np.array([1, 1]), "v": np.array([1, 2])},
                          key=("k",))
        with pytest.raises(ValueError, match="uniquely"):
            ArrayStore().build(bad)

    def test_lookup_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            ArrayStore().lookup({"key": np.array([1])})

    def test_composite_key(self):
        lineitem = tpch.generate("lineitem", scale=0.02)
        store = ArrayStore(codec="zstd").build(lineitem)
        res = store.lookup(lineitem)
        assert res.found.all()
        np.testing.assert_array_equal(
            res.values["l_shipmode"], lineitem.column("l_shipmode"))


class TestNaming:
    @pytest.mark.parametrize("codec,dict_encode,expected", [
        ("none", False, "AB"),
        ("none", True, "ABC-D"),
        ("gzip", False, "ABC-G"),
        ("zstd", False, "ABC-Z"),
        ("lzma", False, "ABC-L"),
    ])
    def test_paper_names(self, codec, dict_encode, expected):
        assert ArrayStore(codec=codec, dict_encode=dict_encode).name == expected


class TestSizes:
    def test_compression_ordering(self, table):
        """The paper's storage ordering: AB > ABC-D > ABC-Z > ABC-L."""
        sizes = {
            name: ArrayStore(codec=codec, dict_encode=de).build(table)
            .stored_bytes()
            for name, codec, de in [
                ("AB", "none", False), ("ABC-D", "none", True),
                ("ABC-Z", "zstd", False), ("ABC-L", "lzma", False)]
        }
        assert sizes["AB"] > sizes["ABC-D"] > sizes["ABC-Z"] > sizes["ABC-L"]

    def test_partition_size_knob(self, table):
        small = ArrayStore(target_partition_bytes=2048).build(table)
        large = ArrayStore(target_partition_bytes=1 << 20).build(table)
        assert small.partition_count > large.partition_count


class TestMutations:
    def test_insert_visible_and_sorted(self, table):
        store = ArrayStore(codec="zstd").build(table)
        batch = synthetic.insert_batch(table, 100, "low")
        store.insert(batch)
        res = store.lookup({"key": batch.column("key")})
        assert res.found.all()
        assert len(store) == table.n_rows + 100

    def test_append_partition_fast_path(self, table):
        store = ArrayStore(codec="zstd").build(table)
        partitions_before = store.partition_count
        batch = synthetic.insert_batch(table, 100, "low")
        store.append_partition(batch)
        assert store.partition_count == partitions_before + 1
        res = store.lookup({"key": batch.column("key")})
        assert res.found.all()

    def test_append_requires_monotone_keys(self, table):
        store = ArrayStore().build(table)
        overlapping = {
            "key": np.array([5]),
            **{c: table.column(c)[:1] for c in table.value_columns},
        }
        with pytest.raises(ValueError, match="beyond the range"):
            store.append_partition(overlapping)

    def test_delete(self, table):
        store = ArrayStore(codec="zstd").build(table)
        victims = table.column("key")[:50]
        assert store.delete({"key": victims}) == 50
        assert not store.lookup({"key": victims}).found.any()
        assert len(store) == table.n_rows - 50

    def test_delete_absent_returns_zero(self, table):
        store = ArrayStore().build(table)
        assert store.delete({"key": np.array([10**6])}) == 0
