"""Tests for key/value encoders and the decode map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CompositeKeyCodec, DecodeMap, KeyEncoder, ValueEncoder


class TestCompositeKeyCodec:
    def test_single_column_flatten_roundtrip(self):
        codec = CompositeKeyCodec(["k"]).fit({"k": np.array([5, 9, 7])})
        flat = codec.flatten({"k": np.array([5, 9, 7])})
        assert flat.tolist() == [0, 4, 2]
        back = codec.unflatten(flat)
        assert back["k"].tolist() == [5, 9, 7]

    def test_composite_flatten_is_bijective(self):
        cols = {
            "a": np.repeat(np.arange(10), 5),
            "b": np.tile(np.arange(5), 10),
        }
        codec = CompositeKeyCodec(["a", "b"]).fit(cols)
        flat = codec.flatten(cols)
        assert np.unique(flat).size == 50
        back = codec.unflatten(flat)
        assert np.array_equal(back["a"], cols["a"])
        assert np.array_equal(back["b"], cols["b"])

    def test_domain_size(self):
        cols = {"a": np.array([0, 9]), "b": np.array([0, 4])}
        codec = CompositeKeyCodec(["a", "b"]).fit(cols)
        assert codec.domain_size == 50

    def test_headroom_extends_domain(self):
        codec = CompositeKeyCodec(["k"]).fit({"k": np.array([0, 9])}, headroom=10)
        assert codec.domain_size == 20
        codec.flatten({"k": np.array([15])})  # inside the widened domain

    def test_out_of_domain_rejected(self):
        codec = CompositeKeyCodec(["k"]).fit({"k": np.array([0, 9])})
        with pytest.raises(ValueError):
            codec.flatten({"k": np.array([10])})

    def test_oversized_domain_rejected(self):
        cols = {"a": np.array([0, 2**21]), "b": np.array([0, 2**21])}
        with pytest.raises(ValueError, match="domain"):
            CompositeKeyCodec(["a", "b"]).fit(cols)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CompositeKeyCodec(["k"]).flatten({"k": np.array([1])})

    def test_state_roundtrip(self):
        cols = {"a": np.array([3, 10]), "b": np.array([0, 4])}
        codec = CompositeKeyCodec(["a", "b"]).fit(cols)
        clone = CompositeKeyCodec.from_state(codec.to_state())
        probe = {"a": np.array([7]), "b": np.array([2])}
        assert clone.flatten(probe) == codec.flatten(probe)

    def test_empty_key_names_rejected(self):
        with pytest.raises(ValueError):
            CompositeKeyCodec([])


class TestKeyEncoder:
    def test_fit_width(self):
        assert KeyEncoder(base=10).fit(0).width == 1
        assert KeyEncoder(base=10).fit(9).width == 1
        assert KeyEncoder(base=10).fit(10).width == 2
        assert KeyEncoder(base=2).fit(7).width == 3
        assert KeyEncoder(base=2).fit(8).width == 4

    def test_input_dim(self):
        enc = KeyEncoder(base=10).fit(999)
        assert enc.input_dim == 30

    def test_one_hot_structure(self):
        enc = KeyEncoder(base=10).fit(99)
        out = enc.encode([42])
        assert out.shape == (1, 20)
        assert out.sum() == 2.0  # one hot per digit
        # Digit blocks: position 0 = most significant.
        assert out[0, 0 * 10 + 4] == 1.0
        assert out[0, 1 * 10 + 2] == 1.0

    def test_digits(self):
        enc = KeyEncoder(base=10).fit(999)
        assert enc.digits([305]).tolist() == [[3, 0, 5]]

    def test_distinct_keys_distinct_encodings(self):
        enc = KeyEncoder(base=10).fit(999)
        encoded = enc.encode(np.arange(1000))
        assert np.unique(encoded, axis=0).shape[0] == 1000

    def test_negative_key_rejected(self):
        enc = KeyEncoder().fit(10)
        with pytest.raises(ValueError):
            enc.encode([-1])

    def test_base_validation(self):
        with pytest.raises(ValueError):
            KeyEncoder(base=1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KeyEncoder().encode([1])

    def test_state_roundtrip(self):
        enc = KeyEncoder(base=4).fit(100)
        clone = KeyEncoder.from_state(enc.to_state())
        np.testing.assert_array_equal(clone.encode([37]), enc.encode([37]))


class TestValueEncoder:
    def test_roundtrip_strings(self):
        enc = ValueEncoder("status").fit(np.array(["O", "F", "P", "F"]))
        codes = enc.encode(np.array(["P", "F"]))
        assert enc.decode(codes).tolist() == ["P", "F"]
        assert enc.cardinality == 3

    def test_out_of_vocab_rejected(self):
        enc = ValueEncoder("x").fit(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            enc.encode(np.array([4]))

    def test_try_encode_flags_oov(self):
        enc = ValueEncoder("x").fit(np.array([10, 20]))
        codes, ok = enc.try_encode(np.array([10, 15, 20]))
        assert ok.tolist() == [True, False, True]
        assert codes[0] == 0 and codes[2] == 1

    def test_decode_range_checked(self):
        enc = ValueEncoder("x").fit(np.array([1, 2]))
        with pytest.raises(ValueError):
            enc.decode(np.array([2]))

    def test_state_roundtrip(self):
        enc = ValueEncoder("x").fit(np.array(["a", "b", "c"]))
        clone = ValueEncoder.from_state(enc.to_state())
        assert clone.decode(np.array([1]))[0] == "b"

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ValueEncoder("x").encode(np.array([1]))


class TestDecodeMap:
    def test_fit_encode_decode(self):
        cols = {
            "a": np.array(["x", "y", "x"]),
            "b": np.array([5, 6, 5]),
        }
        fdecode = DecodeMap.fit(cols)
        codes = fdecode.encode(cols)
        back = fdecode.decode(codes)
        assert back["a"].tolist() == ["x", "y", "x"]
        assert back["b"].tolist() == [5, 6, 5]

    def test_columns_sorted(self):
        fdecode = DecodeMap.fit({"b": np.array([1]), "a": np.array([2])})
        assert fdecode.columns == ("a", "b")

    def test_cardinalities(self):
        fdecode = DecodeMap.fit({"a": np.array(["x", "y", "z"])})
        assert fdecode.cardinalities() == {"a": 3}

    def test_nbytes_positive(self):
        fdecode = DecodeMap.fit({"a": np.array(["x"])})
        assert fdecode.nbytes > 0

    def test_state_roundtrip(self):
        fdecode = DecodeMap.fit({"a": np.array(["x", "y"])})
        clone = DecodeMap.from_state(fdecode.to_state())
        assert clone.decode({"a": np.array([1])})["a"][0] == "y"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DecodeMap({})


@settings(max_examples=40, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                     max_size=100))
def test_key_encoder_digits_invert_property(keys):
    """Property: digit decomposition reconstructs the key."""
    enc = KeyEncoder(base=10).fit(max(keys))
    digits = enc.digits(keys)
    powers = 10 ** np.arange(enc.width - 1, -1, -1, dtype=np.int64)
    np.testing.assert_array_equal(digits @ powers, np.array(keys))


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.one_of(st.integers(min_value=-100, max_value=100)),
        min_size=1, max_size=100,
    )
)
def test_value_encoder_roundtrip_property(values):
    arr = np.array(values)
    enc = ValueEncoder("v").fit(arr)
    np.testing.assert_array_equal(enc.decode(enc.encode(arr)), arr)
