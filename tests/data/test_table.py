"""Tests for ColumnTable."""

import numpy as np
import pytest

from repro.data import ColumnTable


def make_table(n=10):
    return ColumnTable(
        {
            "k": np.arange(n, dtype=np.int64),
            "v": np.arange(n) * 2,
            "s": np.array([f"s{i % 3}" for i in range(n)]),
        },
        key=("k",),
        name="t",
    )


class TestConstruction:
    def test_basic_properties(self):
        table = make_table()
        assert table.n_rows == 10
        assert len(table) == 10
        assert table.column_names == ("k", "v", "s")
        assert table.value_columns == ("v", "s")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ColumnTable({"a": np.arange(3), "b": np.arange(4)}, key=("a",))

    def test_missing_key_column_rejected(self):
        with pytest.raises(KeyError):
            ColumnTable({"a": np.arange(3)}, key=("b",))

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            ColumnTable({"a": np.arange(3)}, key=())

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            ColumnTable({}, key=("a",))


class TestAccess:
    def test_column_access(self):
        table = make_table()
        assert np.array_equal(table.column("v"), np.arange(10) * 2)
        assert np.array_equal(table["v"], table.column("v"))

    def test_key_and_value_dicts(self):
        table = make_table()
        assert set(table.key_columns_dict()) == {"k"}
        assert set(table.value_columns_dict()) == {"v", "s"}

    def test_row(self):
        row = make_table().row(2)
        assert row["k"] == 2
        assert row["v"] == 4


class TestTransforms:
    def test_take(self):
        sub = make_table().take([1, 3])
        assert sub.n_rows == 2
        assert sub.column("k").tolist() == [1, 3]
        assert sub.key == ("k",)

    def test_head(self):
        assert make_table().head(3).n_rows == 3
        assert make_table().head(100).n_rows == 10

    def test_concat(self):
        a, b = make_table(5), make_table(3)
        merged = a.concat(b)
        assert merged.n_rows == 8

    def test_concat_schema_mismatch_rejected(self):
        a = make_table()
        b = ColumnTable({"k": np.arange(3)}, key=("k",))
        with pytest.raises(ValueError):
            a.concat(b)

    def test_sample_rows(self, rng):
        sample = make_table(100).sample_rows(10, rng)
        assert sample.n_rows == 10


class TestAccounting:
    def test_uncompressed_bytes_positive_and_grows(self):
        small = make_table(10).uncompressed_bytes()
        large = make_table(1000).uncompressed_bytes()
        assert 0 < small < large

    def test_equals(self):
        assert make_table().equals(make_table())
        other = make_table().take(np.arange(9))
        assert not make_table().equals(other)
