"""Tests for the TPC-DS generator."""

import numpy as np
import pytest

from repro.data import tpcds


class TestGenerate:
    @pytest.mark.parametrize("table", tpcds.TPCDS_TABLES)
    def test_all_tables_generate(self, table):
        data = tpcds.generate(table, scale=0.2)
        assert data.n_rows > 0

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            tpcds.generate("web_sales")

    def test_deterministic(self):
        a = tpcds.generate("catalog_sales", scale=0.1, seed=5)
        b = tpcds.generate("catalog_sales", scale=0.1, seed=5)
        assert a.equals(b)

    @pytest.mark.parametrize("table", tpcds.TPCDS_TABLES)
    def test_schema_conformance(self, table):
        data = tpcds.generate(table, scale=0.1)
        schema = tpcds.schema_for(table)
        assert set(data.column_names) == set(schema.column_names)
        assert data.key == schema.key


class TestCustomerDemographics:
    """The flagship high-correlation table: a pure cross product."""

    def test_every_column_is_function_of_key(self):
        data = tpcds.generate("customer_demographics", scale=0.1)
        keys = data.column("cd_demo_sk")
        # Regenerate and check identical mapping for a key subset.
        again = tpcds.generate("customer_demographics", scale=0.2)
        idx = np.searchsorted(again.column("cd_demo_sk"), keys)
        for name in data.value_columns:
            assert np.array_equal(again.column(name)[idx], data.column(name))

    def test_cross_product_structure(self):
        data = tpcds.generate("customer_demographics", scale=0.05)
        gender = data.column("cd_gender")
        # Fastest-varying dimension is the last: dep_count cycles every row.
        dep = data.column("cd_dep_count")
        assert dep[0] != dep[1]
        # Gender is the slowest dimension: constant over long prefixes.
        assert (gender[:100] == gender[0]).all()

    def test_dimension_vocabularies(self):
        data = tpcds.generate("customer_demographics", scale=0.1)
        for name, vocab in tpcds.CD_DIMENSIONS:
            assert set(np.unique(data.column(name))) <= set(vocab.tolist())

    def test_keys_dense_from_one(self):
        data = tpcds.generate("customer_demographics", scale=0.1)
        keys = data.column("cd_demo_sk")
        assert keys[0] == 1
        assert np.array_equal(keys, np.arange(1, keys.size + 1))


class TestFactTables:
    def test_catalog_sales_larger_than_returns(self):
        sales = tpcds.generate("catalog_sales", scale=0.1)
        returns = tpcds.generate("catalog_returns", scale=0.1)
        assert sales.n_rows > returns.n_rows

    def test_higher_cardinality_than_tpch(self):
        # Sec. V-B1: TPC-DS columns have larger cardinalities than TPC-H.
        sales = tpcds.generate("catalog_sales", scale=0.3)
        assert np.unique(sales.column("cs_ship_mode")).size >= 15
        assert np.unique(sales.column("cs_quantity")).size >= 50
