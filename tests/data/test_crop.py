"""Tests for the synthetic crop raster."""

import numpy as np
import pytest

from repro.data import crop


class TestGenerate:
    def test_shape(self):
        table = crop.generate(height=50, width=40)
        assert table.n_rows == 2000
        assert table.key == ("lat", "lon")
        assert set(table.column_names) == {"lat", "lon", "crop_type"}

    def test_deterministic(self):
        assert crop.generate(50, 50, seed=1).equals(crop.generate(50, 50, seed=1))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            crop.generate(0, 10)

    def test_crop_types_from_vocabulary(self):
        table = crop.generate(60, 60)
        assert set(np.unique(table.column("crop_type"))) <= set(
            crop.CROP_TYPES.tolist()
        )


class TestSpatialCharacter:
    def test_strong_spatial_autocorrelation(self):
        """Neighbouring pixels mostly share a crop type — the property that
        makes the real CroplandCROS data compressible by DeepMapping."""
        table = crop.generate(80, 80, smoothness=10)
        grid = table.column("crop_type").reshape(80, 80)
        horizontal_match = (grid[:, :-1] == grid[:, 1:]).mean()
        assert horizontal_match > 0.9

    def test_smoothness_increases_autocorrelation(self):
        rough = crop.generate(60, 60, smoothness=1, seed=3)
        smooth = crop.generate(60, 60, smoothness=8, seed=3)

        def match(t):
            g = t.column("crop_type").reshape(60, 60)
            return (g[:, :-1] == g[:, 1:]).mean()

        assert match(smooth) > match(rough)

    def test_skewed_crop_distribution(self):
        """Like the real CDL, a couple of crops dominate the area."""
        table = crop.generate(100, 100)
        _, counts = np.unique(table.column("crop_type"), return_counts=True)
        shares = np.sort(counts / counts.sum())[::-1]
        assert shares[:2].sum() > 0.4

    def test_lat_lon_enumerate_grid(self):
        table = crop.generate(10, 7)
        assert table.column("lat").max() == 9
        assert table.column("lon").max() == 6
        flat = table.column("lat") * 7 + table.column("lon")
        assert np.array_equal(flat, np.arange(70))
