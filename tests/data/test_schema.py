"""Tests for schema descriptions."""

import pytest

from repro.data import ColumnSpec, ColumnType, Schema


def make_schema():
    return Schema(
        "orders",
        (
            ColumnSpec("o_orderkey", ColumnType.INTEGER),
            ColumnSpec("o_status", ColumnType.CATEGORICAL, 3),
        ),
        key=("o_orderkey",),
    )


class TestColumnSpec:
    def test_fields(self):
        spec = ColumnSpec("x", ColumnType.INTEGER, 5)
        assert spec.name == "x"
        assert spec.cardinality == 5

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ColumnSpec("", ColumnType.INTEGER)

    def test_negative_cardinality_rejected(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", ColumnType.INTEGER, -1)


class TestSchema:
    def test_column_names(self):
        assert make_schema().column_names == ("o_orderkey", "o_status")

    def test_value_columns_excludes_key(self):
        assert make_schema().value_columns == ("o_status",)

    def test_spec_lookup(self):
        assert make_schema().spec("o_status").cardinality == 3
        with pytest.raises(KeyError):
            make_schema().spec("missing")

    def test_by_name(self):
        assert set(make_schema().by_name()) == {"o_orderkey", "o_status"}

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Schema(
                "t",
                (ColumnSpec("a", ColumnType.INTEGER),
                 ColumnSpec("a", ColumnType.INTEGER)),
                key=("a",),
            )

    def test_key_must_exist(self):
        with pytest.raises(ValueError):
            Schema("t", (ColumnSpec("a", ColumnType.INTEGER),), key=("b",))

    def test_key_required(self):
        with pytest.raises(ValueError):
            Schema("t", (ColumnSpec("a", ColumnType.INTEGER),), key=())
