"""Tests for the TPC-H generator."""

import numpy as np
import pytest

from repro.data import tpch
from repro.data.synthetic import key_value_pearson


class TestGenerate:
    @pytest.mark.parametrize("table", tpch.TPCH_TABLES)
    def test_all_tables_generate(self, table):
        data = tpch.generate(table, scale=0.2)
        assert data.n_rows > 0
        assert data.name == table

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            tpch.generate("region")

    def test_deterministic(self):
        a = tpch.generate("orders", scale=0.2, seed=3)
        b = tpch.generate("orders", scale=0.2, seed=3)
        assert a.equals(b)

    def test_seed_changes_data(self):
        a = tpch.generate("orders", scale=0.2, seed=3)
        b = tpch.generate("orders", scale=0.2, seed=4)
        assert not a.equals(b)

    def test_scale_controls_rows(self):
        small = tpch.generate("orders", scale=0.1)
        large = tpch.generate("orders", scale=0.5)
        assert large.n_rows == 5 * small.n_rows

    @pytest.mark.parametrize("table", tpch.TPCH_TABLES)
    def test_schema_conformance(self, table):
        data = tpch.generate(table, scale=0.1)
        schema = tpch.schema_for(table)
        assert set(data.column_names) == set(schema.column_names)
        assert data.key == schema.key

    @pytest.mark.parametrize("table", tpch.TPCH_TABLES)
    def test_keys_unique(self, table):
        data = tpch.generate(table, scale=0.2)
        key_cols = [data.column(k).astype(np.int64) for k in data.key]
        if len(key_cols) == 1:
            flat = key_cols[0]
        else:
            flat = key_cols[0] * 100 + key_cols[1]
        assert np.unique(flat).size == data.n_rows


class TestDataCharacter:
    def test_orders_keys_sparse(self):
        data = tpch.generate("orders", scale=0.2)
        keys = data.column("o_orderkey")
        domain = keys.max() - keys.min() + 1
        assert data.n_rows < domain / 2  # real TPC-H uses 1/4 of the domain

    def test_order_status_low_key_correlation_vs_cd(self):
        # The paper: TPC-H key-value mappings are weakly correlated.
        data = tpch.generate("orders", scale=0.3)
        single = data.take(np.arange(data.n_rows))
        corr = key_value_pearson(single)
        assert corr < 0.6  # structured-with-noise, far from deterministic

    def test_lineitem_composite_key(self):
        data = tpch.generate("lineitem", scale=0.1)
        assert data.key == ("l_orderkey", "l_linenumber")
        assert data.column("l_linenumber").min() >= 1
        assert data.column("l_linenumber").max() <= 7

    def test_vocabularies(self):
        data = tpch.generate("lineitem", scale=0.1)
        assert set(np.unique(data.column("l_returnflag"))) <= {"A", "N", "R"}
        assert set(np.unique(data.column("l_linestatus"))) <= {"F", "O"}
        assert np.unique(data.column("l_shipmode")).size <= 7

    def test_part_brand_nests_in_mfgr(self):
        data = tpch.generate("part", scale=0.2)
        brands = data.column("p_brand")
        mfgr = data.column("p_mfgr")
        # brand // 5 encodes the manufacturer ordinal
        codes = np.array([int(m.split("#")[1]) - 1 for m in mfgr])
        assert np.array_equal(brands // 5, codes)

    def test_relative_table_sizes_preserved(self):
        sizes = {t: tpch.generate(t, scale=0.1).n_rows for t in tpch.TPCH_TABLES}
        assert sizes["lineitem"] > sizes["orders"] > sizes["part"]
        assert sizes["part"] > sizes["customer"] > sizes["supplier"]
