"""Tests for the multi-base KeyEncoder extension."""

import numpy as np
import pytest

from repro.data import KeyEncoder


class TestMultiBase:
    def test_input_dim_sums_bases(self):
        enc = KeyEncoder(base=(10, 7)).fit(999)
        # base 10 needs 3 digits (30 features); base 7 needs 4 (28).
        assert enc.widths == (3, 4)
        assert enc.input_dim == 3 * 10 + 4 * 7

    def test_single_base_unchanged(self):
        single = KeyEncoder(base=10).fit(999)
        multi = KeyEncoder(base=(10,)).fit(999)
        np.testing.assert_array_equal(single.encode([123]),
                                      multi.encode([123]))

    def test_one_hot_per_digit_per_base(self):
        enc = KeyEncoder(base=(10, 7, 4)).fit(100)
        out = enc.encode([42])
        assert out.sum() == sum(enc.widths)

    def test_residues_directly_readable(self):
        """The point of the extension: k % 7 is the last base-7 digit."""
        enc = KeyEncoder(base=(10, 7)).fit(10_000)
        keys = np.arange(500)
        digits = enc.digits(keys, base_index=1)
        np.testing.assert_array_equal(digits[:, -1], keys % 7)

    def test_distinct_keys_distinct_encodings(self):
        enc = KeyEncoder(base=(7, 4)).fit(499)
        encoded = enc.encode(np.arange(500))
        assert np.unique(encoded, axis=0).shape[0] == 500

    def test_state_roundtrip(self):
        enc = KeyEncoder(base=(10, 7, 4)).fit(12345)
        clone = KeyEncoder.from_state(enc.to_state())
        np.testing.assert_array_equal(clone.encode([777]), enc.encode([777]))

    def test_legacy_state_restores(self):
        clone = KeyEncoder.from_state({"base": 10, "width": 3})
        assert clone.bases == (10,)
        assert clone.input_dim == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyEncoder(base=(10, 1))
        with pytest.raises(ValueError):
            KeyEncoder(base=())


class TestLearnability:
    def test_cross_product_table_becomes_learnable(self):
        """Integration: mixed-radix columns unlearnable from base-10
        features become memorizable with co-prime bases."""
        from repro.core import DeepMapping, DeepMappingConfig
        from repro.data import ColumnTable

        keys = np.arange(2000, dtype=np.int64)
        table = ColumnTable(
            {"key": keys, "mod7": keys % 7, "mod4": (keys // 7) % 4},
            key=("key",),
        )
        # Short training: brute-force memorization is off the table, so
        # the gap isolates what the encoding makes *learnable*.
        kwargs = dict(epochs=60, batch_size=256, shared_sizes=(32,),
                      private_sizes=(16,), learning_rate=0.003, tol=1e-6)
        single = DeepMapping.fit(table, DeepMappingConfig(key_base=10,
                                                          **kwargs))
        multi = DeepMapping.fit(table, DeepMappingConfig(key_base=(10, 7, 4),
                                                         **kwargs))
        assert (multi.size_report().memorized_fraction
                > single.size_report().memorized_fraction + 0.15)
        # Both stay lossless regardless.
        assert multi.lookup({"key": keys}).found.all()
        assert single.lookup({"key": keys}).found.all()
