"""Tests for the generator pattern helpers."""

import numpy as np
import pytest

from repro.data._patterns import (
    mixed_radix_column,
    noisy_choice,
    structured_column,
)


@pytest.fixture
def np_rng():
    return np.random.default_rng(77)


class TestStructuredColumn:
    def test_zero_noise_is_deterministic(self, np_rng):
        keys = np.arange(100)
        values = structured_column(keys, 5, period=4, noise=0.0, rng=np_rng)
        np.testing.assert_array_equal(values, (keys // 4) % 5)

    def test_full_noise_destroys_pattern(self, np_rng):
        keys = np.arange(4000)
        values = structured_column(keys, 5, period=4, noise=1.0, rng=np_rng)
        expected = (keys // 4) % 5
        assert (values == expected).mean() < 0.4

    def test_noise_fraction_roughly_respected(self, np_rng):
        keys = np.arange(10_000)
        values = structured_column(keys, 10, period=3, noise=0.3, rng=np_rng)
        expected = (keys // 3) % 10
        # 70% kept + ~3% of flips landing on the right value by chance.
        assert 0.64 < (values == expected).mean() < 0.82

    def test_validation(self, np_rng):
        with pytest.raises(ValueError):
            structured_column(np.arange(5), 3, period=2, noise=-0.1,
                              rng=np_rng)
        with pytest.raises(ValueError):
            structured_column(np.arange(5), 0, period=2, noise=0.1,
                              rng=np_rng)
        with pytest.raises(ValueError):
            structured_column(np.arange(5), 3, period=0, noise=0.1,
                              rng=np_rng)


class TestNoisyChoice:
    def test_uniform_covers_domain(self, np_rng):
        values = noisy_choice(5000, 7, np_rng)
        assert set(np.unique(values)) == set(range(7))

    def test_skew_concentrates_mass(self, np_rng):
        uniform = noisy_choice(5000, 20, np_rng, skew=0.0)
        skewed = noisy_choice(5000, 20, np_rng, skew=1.5)
        top_uniform = (uniform == np.bincount(uniform).argmax()).mean()
        top_skewed = (skewed == np.bincount(skewed).argmax()).mean()
        assert top_skewed > top_uniform * 2

    def test_validation(self, np_rng):
        with pytest.raises(ValueError):
            noisy_choice(10, 0, np_rng)


class TestMixedRadix:
    def test_digits_reconstruct_key(self):
        radices = np.array([3, 5, 7])
        keys = np.arange(3 * 5 * 7)
        d0 = mixed_radix_column(keys, radices, 0)
        d1 = mixed_radix_column(keys, radices, 1)
        d2 = mixed_radix_column(keys, radices, 2)
        np.testing.assert_array_equal(d0 * 35 + d1 * 7 + d2, keys)

    def test_last_position_is_modulo(self):
        radices = np.array([2, 5])
        keys = np.arange(50)
        np.testing.assert_array_equal(
            mixed_radix_column(keys, radices, 1), keys % 5
        )

    def test_digits_within_radix(self):
        radices = np.array([4, 9])
        keys = np.arange(100)
        assert mixed_radix_column(keys, radices, 0).max() < 4
        assert mixed_radix_column(keys, radices, 1).max() < 9
