"""Tests for the synthetic low/high-correlation suites."""

import numpy as np
import pytest

from repro.data import synthetic


class TestSingleColumn:
    def test_low_correlation_regime(self):
        table = synthetic.single_column(5000, "low")
        assert synthetic.key_value_pearson(table) < 0.05

    def test_high_correlation_has_periodic_pattern(self):
        table = synthetic.single_column(5000, "high")
        values = table.column("value")
        # Periodic: within a 64-key period the value is (almost) constant.
        block = values[:64]
        assert (block == block[0]).mean() > 0.9

    def test_high_more_correlated_than_low(self):
        low = synthetic.key_value_pearson(synthetic.single_column(5000, "low"))
        high = synthetic.key_value_pearson(synthetic.single_column(5000, "high"))
        assert high > low

    def test_invalid_correlation_rejected(self):
        with pytest.raises(ValueError):
            synthetic.single_column(10, "medium")

    def test_start_key_offsets(self):
        table = synthetic.single_column(10, "low", start_key=100)
        assert table.column("key")[0] == 100
        assert table.column("key")[-1] == 109

    def test_deterministic(self):
        a = synthetic.single_column(100, "low", seed=2)
        b = synthetic.single_column(100, "low", seed=2)
        assert a.equals(b)


class TestMultiColumn:
    def test_column_count(self):
        table = synthetic.multi_column(100, "low")
        assert len(table.value_columns) == 4

    def test_high_correlation_fully_determined(self):
        """multi/high mirrors customer_demographics: values are mixed-radix
        digits of the key, i.e. a pure function of the key."""
        a = synthetic.multi_column(1000, "high", seed=1)
        b = synthetic.multi_column(1000, "high", seed=99)
        for col in a.value_columns:
            assert np.array_equal(a.column(col), b.column(col))

    def test_low_correlation_seed_dependent(self):
        a = synthetic.multi_column(1000, "low", seed=1)
        b = synthetic.multi_column(1000, "low", seed=2)
        assert any(
            not np.array_equal(a.column(c), b.column(c)) for c in a.value_columns
        )

    def test_cardinalities(self):
        table = synthetic.multi_column(5000, "low")
        cards = [np.unique(table.column(c)).size for c in table.value_columns]
        assert cards == [3, 2, 7, 50]


class TestInsertBatch:
    def test_keys_continue_after_base(self):
        base = synthetic.multi_column(100, "low")
        batch = synthetic.insert_batch(base, 50, "low")
        assert batch.column("key").min() == 100
        assert batch.n_rows == 50

    def test_cross_distribution_batch(self):
        base = synthetic.multi_column(100, "low")
        batch = synthetic.insert_batch(base, 200, "high")
        # High-correlation values are a pure function of the key.
        again = synthetic.insert_batch(base, 200, "high", seed=123)
        for col in batch.value_columns:
            assert np.array_equal(batch.column(col), again.column(col))

    def test_single_column_batch(self):
        base = synthetic.single_column(100, "low")
        batch = synthetic.insert_batch(base, 10, "low")
        assert set(batch.column_names) == {"key", "value"}


class TestPearsonHelper:
    def test_perfectly_correlated_column(self):
        from repro.data import ColumnTable

        keys = np.arange(1000, dtype=np.int64)
        table = ColumnTable({"key": keys, "v": keys * 3}, key=("key",))
        assert synthetic.key_value_pearson(table) > 0.999

    def test_constant_column_is_zero(self):
        from repro.data import ColumnTable

        keys = np.arange(100, dtype=np.int64)
        table = ColumnTable({"key": keys, "v": np.ones(100)}, key=("key",))
        assert synthetic.key_value_pearson(table) == 0.0
