"""Tests for ColumnTable CSV interchange."""

import numpy as np
import pytest

from repro.data import ColumnTable, tpch


class TestRoundtrip:
    def test_integer_and_string_columns(self, tmp_path):
        table = ColumnTable(
            {
                "k": np.arange(5, dtype=np.int64),
                "label": np.array(["a", "b", "c", "d", "e"]),
                "n": np.array([10, 20, 30, 40, 50], dtype=np.int64),
            },
            key=("k",),
        )
        path = str(tmp_path / "t.csv")
        table.to_csv(path)
        loaded = ColumnTable.from_csv(path, key=("k",))
        assert loaded.column("k").dtype == np.int64
        np.testing.assert_array_equal(loaded.column("k"), table.column("k"))
        assert list(loaded.column("label")) == list(table.column("label"))
        np.testing.assert_array_equal(loaded.column("n"), table.column("n"))

    def test_tpch_roundtrip(self, tmp_path):
        table = tpch.generate("orders", scale=0.05)
        path = str(tmp_path / "orders.csv")
        table.to_csv(path)
        loaded = ColumnTable.from_csv(path, key=table.key, name="orders")
        assert loaded.n_rows == table.n_rows
        np.testing.assert_array_equal(loaded.column("o_orderkey"),
                                      table.column("o_orderkey"))
        assert list(loaded.column("o_orderstatus")) == list(
            table.column("o_orderstatus"))

    def test_loaded_table_feeds_deepmapping(self, tmp_path):
        from repro.core import DeepMapping, DeepMappingConfig

        table = tpch.generate("supplier", scale=1.0)
        path = str(tmp_path / "s.csv")
        table.to_csv(path)
        loaded = ColumnTable.from_csv(path, key=("s_suppkey",))
        dm = DeepMapping.fit(loaded, DeepMappingConfig(
            epochs=10, batch_size=64, shared_sizes=(16,), private_sizes=(8,)))
        assert dm.lookup({"s_suppkey": loaded.column("s_suppkey")}).found.all()


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            ColumnTable.from_csv(str(path), key=("k",))

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="fields"):
            ColumnTable.from_csv(str(path), key=("a",))

    def test_missing_key_column_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(KeyError):
            ColumnTable.from_csv(str(path), key=("missing",))
