"""Tests for per-shard architecture sizing."""

import numpy as np

from repro.core import DeepMapping, DeepMappingConfig
from repro.core.mhas import MHASConfig, budgeted_config
from repro.data import synthetic
from repro.lifecycle import (LifecycleConfig, closed_form_sizes,
                             derive_build_config)

from ..core.conftest import fast_config


class TestClosedForm:
    def test_small_shards_shrink(self):
        sizes = closed_form_sizes((64,), n_rows=256, reference_rows=4096,
                                  min_width=8)
        assert sizes == (16,)  # sqrt(256/4096) = 1/4 of 64

    def test_at_reference_keeps_base(self):
        assert closed_form_sizes((64, 32), 4096, 4096, 8) == (64, 32)

    def test_never_upsizes_past_base(self):
        assert closed_form_sizes((64,), 10**6, 4096, 8) == (64,)

    def test_min_width_floor(self):
        assert closed_form_sizes((64,), 2, 4096, 8) == (8,)

    def test_monotone_in_rows(self):
        widths = [closed_form_sizes((128,), n, 4096, 8)[0]
                  for n in (16, 64, 256, 1024, 4096)]
        assert widths == sorted(widths)


class TestDeriveBuildConfig:
    def test_closed_form_below_search_threshold(self):
        base = DeepMappingConfig(shared_sizes=(64,), private_sizes=(32,))
        lifecycle = LifecycleConfig(per_shard_mhas=True,
                                    sizing_search_rows=100_000)
        derived = derive_build_config(base, 250, lifecycle)
        assert not derived.use_search
        assert derived.shared_sizes < base.shared_sizes
        assert derived.private_sizes < base.private_sizes
        # The base config must never be mutated.
        assert base.shared_sizes == (64,)

    def test_search_at_threshold(self):
        base = DeepMappingConfig(shared_sizes=(64,), private_sizes=(32,))
        lifecycle = LifecycleConfig(per_shard_mhas=True,
                                    sizing_search_rows=500)
        derived = derive_build_config(base, 500, lifecycle)
        assert derived.use_search
        assert derived.search is not None
        # The width menu is capped at the base spec's widest layer.
        assert max(derived.search.size_choices) <= 64

    def test_smaller_shard_builds_smaller_model(self):
        """The acceptance property at unit scale: the sized build's model
        footprint is strictly under the fixed-spec build's."""
        table = synthetic.multi_column(300, "low", seed=5)
        base = fast_config(epochs=3, shared_sizes=(64,), private_sizes=(32,))
        sized_config = derive_build_config(
            base, table.n_rows, LifecycleConfig(per_shard_mhas=True))
        fixed = DeepMapping.fit(table, base)
        sized = DeepMapping.fit(table, sized_config)
        assert sized.session.nbytes < fixed.session.nbytes
        # ... and it is still lossless.
        result = sized.lookup({"key": table.column("key")})
        assert result.found.all()
        for column in sized.value_names:
            np.testing.assert_array_equal(result.values[column],
                                          table.column(column))


class TestBudgetedSearchConfig:
    def test_iterations_scale_down(self):
        base = MHASConfig(iterations=40, controller_every=5)
        small = budgeted_config(256, base=base, reference_rows=4096)
        assert small.iterations < base.iterations
        # Floor: the controller still gets at least two REINFORCE rounds.
        assert small.iterations >= 2 * base.controller_every

    def test_full_budget_at_reference(self):
        base = MHASConfig(iterations=40)
        assert budgeted_config(4096, base=base,
                               reference_rows=4096).iterations == 40

    def test_width_menu_pruned(self):
        base = MHASConfig(size_choices=(32, 64, 128, 256))
        pruned = budgeted_config(1000, base=base, max_width=64)
        assert pruned.size_choices == (32, 64)

    def test_width_menu_never_empty_and_never_exceeds_bound(self):
        """When every base choice is wider than the bound, the bound
        itself becomes the menu — searched architectures must never
        upsize past the caller's fixed spec."""
        base = MHASConfig(size_choices=(32, 64))
        pruned = budgeted_config(1000, base=base, max_width=4)
        assert pruned.size_choices == (4,)

    def test_eval_sample_capped_by_rows(self):
        base = MHASConfig(eval_sample=4096)
        assert budgeted_config(300, base=base).eval_sample == 300
