"""Tests for maintenance policies and the lifecycle config."""

import pytest

from repro.lifecycle import (AuxRatioPolicy, BytesThresholdPolicy,
                             LifecycleConfig, NeverPolicy, POLICY_NAMES,
                             ShardStats, make_policy)


def stats(n_rows=1000, aux_rows=0, bytes_since=0, ops=0, ordinal=0):
    return ShardStats(ordinal=ordinal, n_rows=n_rows, aux_rows=aux_rows,
                      bytes_since_build=bytes_since, ops_since_build=ops)


class TestPolicies:
    def test_bytes_threshold(self):
        policy = BytesThresholdPolicy(100)
        assert not policy.should_retrain(stats(bytes_since=99))
        assert policy.should_retrain(stats(bytes_since=100))

    def test_bytes_threshold_none_never_fires(self):
        policy = BytesThresholdPolicy(None)
        assert not policy.should_retrain(stats(bytes_since=10**12))

    def test_bytes_threshold_validation(self):
        with pytest.raises(ValueError):
            BytesThresholdPolicy(0)

    def test_aux_ratio(self):
        policy = AuxRatioPolicy(0.5)
        assert not policy.should_retrain(stats(n_rows=1000, aux_rows=499))
        assert policy.should_retrain(stats(n_rows=1000, aux_rows=500))

    def test_aux_ratio_min_rows_guard(self):
        """A freshly materialized micro-shard (all rows in aux) must not
        thrash through retrains."""
        policy = AuxRatioPolicy(0.5, min_rows=64)
        assert not policy.should_retrain(stats(n_rows=10, aux_rows=10))
        assert policy.should_retrain(stats(n_rows=64, aux_rows=64))

    def test_aux_ratio_validation(self):
        with pytest.raises(ValueError):
            AuxRatioPolicy(0.0)
        with pytest.raises(ValueError):
            AuxRatioPolicy(1.5)

    def test_never(self):
        assert not NeverPolicy().should_retrain(
            stats(bytes_since=10**12, aux_rows=1000, n_rows=1000))

    def test_empty_shard_ratio_is_zero(self):
        assert stats(n_rows=0, aux_rows=0).aux_ratio == 0.0

    def test_make_policy_registry(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, threshold_bytes=10)
            assert policy.name == name
        with pytest.raises(ValueError):
            make_policy("sometimes")


class TestLifecycleConfig:
    def test_defaults_valid(self):
        config = LifecycleConfig()
        assert config.policy == "bytes"
        assert not config.rebalance

    def test_state_round_trip(self):
        config = LifecycleConfig(policy="aux-ratio", aux_ratio=0.3,
                                 rebalance=True, split_balance=3.0,
                                 per_shard_mhas=True, max_shards=16)
        restored = LifecycleConfig.from_state(config.to_state())
        assert restored == config

    def test_from_state_ignores_unknown_keys(self):
        """Manifests written by a newer version must still load."""
        state = LifecycleConfig().to_state()
        state["future_knob"] = 42
        assert LifecycleConfig.from_state(state) == LifecycleConfig()

    def test_build_policy_falls_back_to_config_threshold(self):
        policy = LifecycleConfig(policy="bytes").build_policy(12345)
        assert policy.threshold_bytes == 12345
        policy = LifecycleConfig(policy="bytes",
                                 retrain_bytes=99).build_policy(12345)
        assert policy.threshold_bytes == 99

    def test_validation(self):
        with pytest.raises(ValueError):
            LifecycleConfig(policy="sometimes")
        with pytest.raises(ValueError):
            LifecycleConfig(split_balance=1.0)
        with pytest.raises(ValueError):
            LifecycleConfig(merge_balance=2.5, split_balance=2.0)
        with pytest.raises(ValueError):
            LifecycleConfig(min_shards=8, max_shards=4)
        with pytest.raises(ValueError):
            LifecycleConfig(max_actions_per_run=0)
