"""Tests for the maintenance engine on a live sharded store."""

import numpy as np
import pytest

from repro.data import synthetic
from repro.lifecycle import LifecycleConfig, MaintenanceEngine
from repro.shard import ShardedDeepMapping, ShardingConfig

from ..core.conftest import fast_config


def managed_store(table, lifecycle, n_shards=4, **cfg):
    config = fast_config(epochs=4, **cfg)
    return ShardedDeepMapping.fit(
        table, config,
        ShardingConfig(n_shards=n_shards, strategy="range",
                       lifecycle=lifecycle))


def insert_rows(store, table, keys, rng):
    rows = {"key": np.asarray(keys, dtype=np.int64)}
    for column in store.value_names:
        rows[column] = rng.choice(table.column(column), size=len(keys))
    store.insert(rows)
    return rows


@pytest.fixture
def small_table():
    return synthetic.multi_column(1200, "low", seed=3)


class TestAdoption:
    def test_engine_disables_inline_retrain(self, small_table):
        store = managed_store(small_table, LifecycleConfig(policy="never"))
        assert store.engine is not None
        assert all(not shard.auto_rebuild for shard in store.shards
                   if shard is not None)

    def test_unmanaged_store_has_no_engine(self, small_table):
        store = ShardedDeepMapping.fit(
            small_table, fast_config(epochs=3), ShardingConfig(n_shards=2))
        assert store.engine is None
        assert all(shard.auto_rebuild for shard in store.shards
                   if shard is not None)

    def test_fresh_shard_from_insert_is_adopted(self):
        """An insert materializing an empty shard must hand it to the
        engine, or its inline threshold would fire unsupervised."""
        grp = np.repeat(np.array([0, 1], dtype=np.int64), 100)
        sub = np.tile(np.arange(100, dtype=np.int64), 2)
        rng = np.random.default_rng(7)
        from repro.data import ColumnTable
        table = ColumnTable(
            {"grp": grp, "sub": sub,
             "status": rng.choice(np.array(["A", "B"]), size=grp.size)},
            key=("grp", "sub"), name="two-group")
        store = managed_store(table, LifecycleConfig(policy="never"),
                              n_shards=4)
        empty = store.shard_row_counts().index(0)
        target = next(
            g for g in range(-5, 50)
            if int(store.router.route({"grp": np.array([g]),
                                       "sub": np.array([0])})[0]) == empty)
        store.insert({"grp": np.array([target], dtype=np.int64),
                      "sub": np.array([0], dtype=np.int64),
                      "status": np.array(["A"])})
        assert not store.shards[empty].auto_rebuild


class TestRetrains:
    def test_bytes_policy_rebuilds_dirty_shard(self, small_table):
        # Headroom keeps the fresh key in-domain: an out-of-domain insert
        # would rebuild (and reset) the shard before the engine looks.
        store = managed_store(
            small_table,
            LifecycleConfig(policy="bytes", retrain_bytes=1),
            key_headroom_fraction=1.0)
        rng = np.random.default_rng(0)
        new_key = int(small_table.column("key").max()) + 1
        insert_rows(store, small_table, [new_key], rng)
        assert store.engine.n_rebuilds >= 1
        assert store.lookup_one(key=new_key) is not None
        # The rebuilt shard's counters were reset by mark_rebuilt().
        owner = int(store.router.route(
            {"key": np.array([new_key], dtype=np.int64)})[0])
        assert store.shards[owner].tracker.bytes_since_build == 0
        assert store.shards[owner].tracker.total_retrains >= 1

    def test_never_policy_accumulates(self, small_table):
        store = managed_store(small_table, LifecycleConfig(policy="never"),
                              key_headroom_fraction=1.0)
        rng = np.random.default_rng(0)
        new_key = int(small_table.column("key").max()) + 1
        insert_rows(store, small_table, [new_key], rng)
        assert store.engine.n_rebuilds == 0

    def test_aux_ratio_policy_fires_on_flooded_shard(self, small_table):
        store = managed_store(
            small_table,
            LifecycleConfig(policy="aux-ratio", aux_ratio=0.01,
                            policy_min_rows=1),
            key_headroom_fraction=1.0)
        rng = np.random.default_rng(1)
        new_key = int(small_table.column("key").max()) + 1
        insert_rows(store, small_table, [new_key], rng)
        # Low-correlation data: essentially every row sits in aux, so the
        # 1% bound fires immediately on the touched shard.
        assert store.engine.n_rebuilds >= 1

    def test_events_recorded(self, small_table):
        store = managed_store(
            small_table, LifecycleConfig(policy="bytes", retrain_bytes=1),
            key_headroom_fraction=1.0)
        rng = np.random.default_rng(2)
        insert_rows(store, small_table,
                    [int(small_table.column("key").max()) + 1], rng)
        kinds = [event.kind for event in store.engine.events]
        assert "rebuild" in kinds


class TestRebalance:
    def test_split_fires_on_overfull_shard(self, small_table):
        lifecycle = LifecycleConfig(policy="never", rebalance=True,
                                    split_balance=1.5, split_min_rows=64,
                                    max_actions_per_run=8)
        store = managed_store(small_table, lifecycle)
        rng = np.random.default_rng(3)
        kmax = int(small_table.column("key").max())
        n_before = store.n_shards
        insert_rows(store, small_table,
                    np.arange(kmax + 1, kmax + 1201, dtype=np.int64), rng)
        assert store.engine.n_splits >= 1
        assert store.n_shards > n_before
        counts = np.asarray(store.shard_row_counts())
        assert counts.max() / counts.mean() <= 2.0

    def test_merge_fires_on_drained_shards(self, small_table):
        lifecycle = LifecycleConfig(policy="never", rebalance=True,
                                    merge_balance=0.6, min_shards=2,
                                    max_actions_per_run=8)
        store = managed_store(small_table, lifecycle)
        # Drain the first two shards almost entirely.
        keys = np.sort(small_table.column("key").astype(np.int64))
        store.delete({"key": keys[:580]})
        assert store.engine.n_merges >= 1
        assert store.n_shards < 4
        # Everything still there and found.
        remaining = keys[580:]
        assert store.lookup({"key": remaining}).found.all()

    def test_min_shards_respected(self, small_table):
        lifecycle = LifecycleConfig(policy="never", rebalance=True,
                                    merge_balance=0.99, min_shards=4)
        store = managed_store(small_table, lifecycle)
        keys = np.sort(small_table.column("key").astype(np.int64))
        store.delete({"key": keys[:900]})
        assert store.n_shards >= 4

    def test_max_shards_respected(self, small_table):
        lifecycle = LifecycleConfig(policy="never", rebalance=True,
                                    split_balance=1.1, split_min_rows=1,
                                    max_shards=6, max_actions_per_run=16)
        store = managed_store(small_table, lifecycle)
        rng = np.random.default_rng(4)
        kmax = int(small_table.column("key").max())
        insert_rows(store, small_table,
                    np.arange(kmax + 1, kmax + 2001, dtype=np.int64), rng)
        assert store.n_shards <= 6

    def test_hash_strategy_rejects_rebalance(self, small_table):
        with pytest.raises(ValueError, match="range"):
            ShardingConfig(n_shards=4, strategy="hash",
                           lifecycle=LifecycleConfig(rebalance=True))

    def test_engine_repr_and_summary(self, small_table):
        store = managed_store(small_table,
                              LifecycleConfig(policy="never", rebalance=True))
        summary = store.engine.summary()
        assert summary["policy"] == "never"
        assert summary["rebalance"] is True
        assert "MaintenanceEngine" in repr(store.engine)
