"""Tests for the Eq. 1 reward estimators."""

import numpy as np
import pytest

from repro.core.mhas import (
    approx_model_bytes,
    estimate_ratio,
    flops_per_lookup,
    measure_aux_bytes_per_row,
)
from repro.nn import ArchitectureSpec, InferenceSession, MultiTaskMLP


def make_spec(shared=(16,), private=(8,)):
    return ArchitectureSpec(
        input_dim=10,
        shared_sizes=shared,
        private_sizes={"a": private},
        output_dims={"a": 4},
    )


class TestApproxModelBytes:
    def test_tracks_serialized_size(self):
        spec = make_spec()
        model = MultiTaskMLP(spec, rng=np.random.default_rng(0))
        session = InferenceSession.from_model(model, weight_dtype="float16")
        estimate = approx_model_bytes(spec, weight_dtype_size=2)
        assert 0.5 * session.nbytes < estimate < 2.0 * session.nbytes

    def test_grows_with_width(self):
        small = approx_model_bytes(make_spec(shared=(8,)))
        large = approx_model_bytes(make_spec(shared=(256,)))
        assert large > small


class TestAuxBytesPerRow:
    def test_positive_and_bounded(self):
        keys = np.arange(1000, dtype=np.int64)
        labels = {"a": keys % 5}
        per_row = measure_aux_bytes_per_row(keys, labels)
        assert 0.25 <= per_row < 64

    def test_empty_input(self):
        assert measure_aux_bytes_per_row(np.empty(0, dtype=np.int64), {}) == 1.0

    def test_random_rows_cost_more_than_structured(self):
        keys = np.arange(4000, dtype=np.int64)
        rng = np.random.default_rng(0)
        structured = measure_aux_bytes_per_row(keys, {"a": keys % 3})
        noisy = measure_aux_bytes_per_row(
            keys, {"a": rng.integers(0, 1000, size=4000)}
        )
        assert noisy > structured


class TestEstimateRatio:
    def test_perfect_model_excludes_aux(self):
        rng = np.random.default_rng(1)
        spec = make_spec(shared=(32,), private=(16,))
        model = MultiTaskMLP(spec, rng=rng)
        x = rng.normal(size=(200, 10)).astype(np.float32)
        labels = {"a": model.predict_codes(x)["a"]}  # by construction perfect
        idx = np.arange(200)
        ratio = estimate_ratio(model, x, labels, n_rows=200,
                               aux_bytes_per_row=100.0, overhead_bytes=0,
                               dataset_bytes=100_000, sample_idx=idx)
        assert ratio == pytest.approx(
            approx_model_bytes(spec) / 100_000, rel=1e-6
        )

    def test_bad_model_pays_aux(self):
        rng = np.random.default_rng(2)
        spec = make_spec()
        model = MultiTaskMLP(spec, rng=rng)
        x = rng.normal(size=(100, 10)).astype(np.float32)
        wrong = (model.predict_codes(x)["a"] + 1) % 4
        idx = np.arange(100)
        ratio = estimate_ratio(model, x, {"a": wrong}, n_rows=100,
                               aux_bytes_per_row=50.0, overhead_bytes=0,
                               dataset_bytes=10_000, sample_idx=idx)
        assert ratio >= (100 * 50.0) / 10_000

    def test_dataset_bytes_validated(self):
        rng = np.random.default_rng(3)
        model = MultiTaskMLP(make_spec(), rng=rng)
        with pytest.raises(ValueError):
            estimate_ratio(model, np.zeros((1, 10), dtype=np.float32),
                           {"a": np.zeros(1, dtype=np.int64)}, n_rows=1,
                           aux_bytes_per_row=1.0, overhead_bytes=0,
                           dataset_bytes=0, sample_idx=np.arange(1))


class TestFlops:
    def test_counts_mac_per_layer(self):
        spec = make_spec(shared=(16,), private=(8,))
        # 10*16 + 16*8 + 8*4
        assert flops_per_lookup(spec) == 160 + 128 + 32

    def test_deeper_costs_more(self):
        assert flops_per_lookup(make_spec(shared=(64, 64))) > flops_per_lookup(
            make_spec(shared=(64,))
        )
