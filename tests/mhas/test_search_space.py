"""Tests for the MHAS search space and weight bank."""

import numpy as np
import pytest

from repro.core.mhas import MHASConfig, SearchSpace, WeightBank
from repro.nn import MultiTaskMLP


def make_space(**overrides):
    config = MHASConfig(**overrides)
    return SearchSpace(input_dim=20, output_dims={"a": 3, "b": 5}, config=config)


class TestMHASConfig:
    def test_defaults_valid(self):
        MHASConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            MHASConfig(max_shared_layers=-1)
        with pytest.raises(ValueError):
            MHASConfig(size_choices=())
        with pytest.raises(ValueError):
            MHASConfig(iterations=0)


class TestSearchSpace:
    def test_scopes_cover_shared_then_tasks(self):
        space = make_space()
        assert space.scopes[0] == ("shared", 2)
        assert [s for s, _ in space.scopes[1:]] == ["a", "b"]

    def test_n_options(self):
        space = make_space(size_choices=(16, 32, 64))
        assert space.n_options == 4  # STOP + 3 widths

    def test_spec_from_empty_decisions(self):
        spec = make_space().spec_from_decisions([])
        assert spec.shared_sizes == ()
        assert spec.private_sizes == {"a": (), "b": ()}

    def test_spec_from_full_decisions(self):
        space = make_space(size_choices=(16, 32))
        # shared: two layers (16, 32); task a: stop; task b: one layer 32.
        decisions = [1, 2, 0, 2, 0]
        spec = space.spec_from_decisions(decisions)
        assert spec.shared_sizes == (16, 32)
        assert spec.private_sizes["a"] == ()
        assert spec.private_sizes["b"] == (32,)

    def test_stop_terminates_scope_early(self):
        space = make_space(size_choices=(16,))
        # STOP immediately in shared scope; next decisions go to task a.
        spec = space.spec_from_decisions([0, 1, 1, 0])
        assert spec.shared_sizes == ()
        assert spec.private_sizes["a"] == (16, 16)

    def test_search_space_size(self):
        space = make_space(size_choices=(16, 32), max_shared_layers=1,
                           max_private_layers=1)
        # chains of length <=1 over 2 sizes: 3 options per scope, 3 scopes.
        assert space.search_space_size() == 27

    def test_invalid_input_dim(self):
        with pytest.raises(ValueError):
            SearchSpace(0, {"a": 2}, MHASConfig())

    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            SearchSpace(4, {}, MHASConfig())


class TestWeightBank:
    def test_same_shape_same_scope_shares(self):
        bank = WeightBank(np.random.default_rng(0))
        w1, b1 = bank.provider("shared/0", 10, 20)
        w2, b2 = bank.provider("shared/0", 10, 20)
        assert w1 is w2 and b1 is b2
        assert len(bank) == 1

    def test_different_shapes_distinct(self):
        bank = WeightBank(np.random.default_rng(0))
        bank.provider("shared/0", 10, 20)
        bank.provider("shared/0", 10, 40)
        assert len(bank) == 2

    def test_sampled_models_share_trained_weights(self):
        """Two architectures overlapping on a layer literally train the same
        tensors (ENAS parameter sharing)."""
        rng = np.random.default_rng(1)
        bank = WeightBank(rng)
        space = make_space(size_choices=(16, 32))
        spec_a = space.spec_from_decisions([1, 0, 0, 0])
        spec_b = space.spec_from_decisions([1, 2, 0, 0])
        model_a = MultiTaskMLP(spec_a, weights=bank.provider)
        model_b = MultiTaskMLP(spec_b, weights=bank.provider)
        assert model_a.shared[0].weight is model_b.shared[0].weight

    def test_total_params(self):
        bank = WeightBank(np.random.default_rng(0))
        bank.provider("x", 10, 20)
        assert bank.total_params() == 10 * 20 + 20
