"""Tests for the MHAS search loop (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.core.mhas import MHASConfig, search
from repro.data import KeyEncoder, synthetic


def search_problem(n=1500):
    table = synthetic.multi_column(n, "high")
    keys = table.column("key")
    encoder = KeyEncoder().fit(int(keys.max()))
    x = encoder.encode(keys)
    labels = {c: table.column(c) for c in table.value_columns}
    dims = {c: int(labels[c].max()) + 1 for c in labels}
    return x, labels, dims, table.uncompressed_bytes()


def quick_config(**overrides):
    defaults = dict(
        iterations=8,
        controller_every=2,
        controller_samples=2,
        model_epochs=1,
        model_batch=512,
        size_choices=(16, 32),
        eval_sample=512,
    )
    defaults.update(overrides)
    return MHASConfig(**defaults)


class TestSearch:
    def test_returns_spec_model_history(self):
        x, labels, dims, nbytes = search_problem()
        outcome = search(x, labels, dims, dataset_bytes=nbytes,
                         overhead_bytes=100, config=quick_config(),
                         rng=np.random.default_rng(0))
        assert outcome.spec.input_dim == x.shape[1]
        assert set(outcome.spec.output_dims) == set(dims)
        assert len(outcome.history) > 0
        assert outcome.best_ratio < float("inf")

    def test_history_records_both_phases(self):
        x, labels, dims, nbytes = search_problem()
        outcome = search(x, labels, dims, dataset_bytes=nbytes,
                         overhead_bytes=100, config=quick_config(),
                         rng=np.random.default_rng(1))
        phases = {s.phase for s in outcome.history}
        assert phases == {"model", "controller"}

    def test_best_ratio_is_min_of_history(self):
        x, labels, dims, nbytes = search_problem()
        outcome = search(x, labels, dims, dataset_bytes=nbytes,
                         overhead_bytes=100, config=quick_config(),
                         rng=np.random.default_rng(2))
        assert outcome.best_ratio == pytest.approx(outcome.ratios().min())

    def test_ratios_improve_over_search(self):
        """Fig. 9's shape: the best ratio found keeps improving as shared
        weights train; the final best clearly beats the first sample."""
        x, labels, dims, nbytes = search_problem(n=2500)
        outcome = search(x, labels, dims, dataset_bytes=nbytes,
                         overhead_bytes=100,
                         config=quick_config(iterations=16),
                         rng=np.random.default_rng(3))
        ratios = outcome.ratios()
        assert outcome.best_ratio < ratios[0]
        # Running best (the paper smooths with a window) is monotone and
        # must improve beyond the initial flat region.
        running_best = np.minimum.accumulate(ratios)
        assert running_best[-1] < running_best[len(ratios) // 4]

    def test_returned_model_uses_best_spec(self):
        x, labels, dims, nbytes = search_problem()
        outcome = search(x, labels, dims, dataset_bytes=nbytes,
                         overhead_bytes=100, config=quick_config(),
                         rng=np.random.default_rng(4))
        assert outcome.model.spec == outcome.spec

    def test_early_stop_on_plateau(self):
        x, labels, dims, nbytes = search_problem(n=400)
        config = quick_config(iterations=200, controller_every=1, tol=1e9,
                              patience=2)
        outcome = search(x, labels, dims, dataset_bytes=nbytes,
                         overhead_bytes=100, config=config,
                         rng=np.random.default_rng(5))
        assert outcome.converged
        assert outcome.iterations_run < 200

    def test_deterministic_given_rng(self):
        x, labels, dims, nbytes = search_problem(n=400)
        a = search(x, labels, dims, dataset_bytes=nbytes, overhead_bytes=100,
                   config=quick_config(), rng=np.random.default_rng(7))
        b = search(x, labels, dims, dataset_bytes=nbytes, overhead_bytes=100,
                   config=quick_config(), rng=np.random.default_rng(7))
        assert a.spec == b.spec
        np.testing.assert_allclose(a.ratios(), b.ratios())
