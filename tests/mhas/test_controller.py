"""Tests for the MHAS LSTM controller and REINFORCE update."""

import numpy as np
import pytest

from repro.core.mhas import Controller, MHASConfig, SearchSpace


def make_controller(seed=0, **cfg):
    config = MHASConfig(**cfg)
    space = SearchSpace(input_dim=12, output_dims={"a": 3, "b": 4},
                        config=config)
    return Controller(space, np.random.default_rng(seed)), space


class TestSampling:
    def test_decisions_within_bounds(self):
        controller, space = make_controller()
        rng = np.random.default_rng(5)
        for _ in range(20):
            trajectory = controller.sample(rng)
            assert len(trajectory.decisions) <= space.max_decisions
            assert all(0 <= d < space.n_options for d in trajectory.decisions)

    def test_trajectory_translates_to_valid_spec(self):
        controller, space = make_controller()
        rng = np.random.default_rng(6)
        trajectory = controller.sample(rng)
        spec = space.spec_from_decisions(trajectory.decisions)
        assert spec.input_dim == 12
        assert set(spec.output_dims) == {"a", "b"}

    def test_log_prob_negative_entropy_positive(self):
        controller, _ = make_controller()
        trajectory = controller.sample(np.random.default_rng(7))
        assert trajectory.log_prob <= 0.0
        assert trajectory.entropy >= 0.0

    def test_greedy_sampling_deterministic(self):
        controller, _ = make_controller()
        a = controller.sample(np.random.default_rng(1), greedy=True)
        b = controller.sample(np.random.default_rng(99), greedy=True)
        assert a.decisions == b.decisions


class TestBaseline:
    def test_first_reward_initialises(self):
        controller, _ = make_controller()
        controller.update_baseline(-0.5)
        assert controller.baseline == pytest.approx(-0.5)

    def test_ema(self):
        controller, _ = make_controller(baseline_decay=0.5)
        controller.update_baseline(-1.0)
        controller.update_baseline(0.0)
        assert controller.baseline == pytest.approx(-0.5)


class TestReinforce:
    def test_rejects_mismatched_batches(self):
        controller, _ = make_controller()
        trajectory = controller.sample(np.random.default_rng(0))
        with pytest.raises(ValueError):
            controller.reinforce([trajectory], [1.0, 2.0])

    def test_rewarded_decisions_become_more_likely(self):
        """Reinforcing STOP-everywhere trajectories must raise the policy's
        probability of choosing STOP at the first step."""
        controller, space = make_controller(seed=3, entropy_weight=0.0,
                                            controller_lr=0.05)
        rng = np.random.default_rng(11)

        def stop_probability():
            from repro.nn.activations import softmax
            from repro.nn.lstm import LSTMState

            state = LSTMState.zero(1, space.config.controller_hidden)
            x = controller.embedding.forward([0], train=False)
            state, _ = controller.cell.step(x, state)
            logits = controller.head.forward(state.h, train=False)
            return float(softmax(logits)[0][0])

        before = stop_probability()
        for _ in range(25):
            batch = [controller.sample(rng) for _ in range(4)]
            rewards = [
                float(sum(1 for d in t.decisions if d == 0)
                      - sum(1 for d in t.decisions if d != 0))
                for t in batch
            ]
            controller.reinforce(batch, rewards)
        after = stop_probability()
        assert after > before
        assert after > 0.6

    def test_reinforce_returns_mean_advantage(self):
        controller, _ = make_controller()
        rng = np.random.default_rng(2)
        trajectories = [controller.sample(rng) for _ in range(3)]
        advantage = controller.reinforce(trajectories, [1.0, 1.0, 1.0])
        assert isinstance(advantage, float)
