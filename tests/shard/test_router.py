"""Tests for the vectorized key→shard routers."""

import numpy as np
import pytest

from repro.shard import (HashShardRouter, RangeShardRouter, make_router,
                         router_from_state)


class TestRangeRouter:
    def test_balanced_over_uniform_keys(self):
        keys = {"key": np.arange(10_000, dtype=np.int64)}
        router = RangeShardRouter.from_keys(keys, ("key",), 4)
        ids = router.route(keys)
        counts = np.bincount(ids, minlength=4)
        assert counts.min() >= 2400 and counts.max() <= 2600

    def test_contiguous_ranges(self):
        keys = {"key": np.arange(1000, dtype=np.int64)}
        router = RangeShardRouter.from_keys(keys, ("key",), 3)
        ids = router.route(keys)
        # Shard ordinal is monotone in the key: ranges are contiguous.
        assert np.all(np.diff(ids) >= 0)

    def test_out_of_range_keys_clamp_to_edge_shards(self):
        router = RangeShardRouter(("key",), 3, cuts=[100, 200])
        ids = router.route({"key": np.array([-50, 0, 150, 250, 10**9])})
        np.testing.assert_array_equal(ids, [0, 0, 1, 2, 2])

    def test_single_shard_has_no_cuts(self):
        keys = {"key": np.arange(100, dtype=np.int64)}
        router = RangeShardRouter.from_keys(keys, ("key",), 1)
        assert router.cuts.size == 0
        assert np.all(router.route(keys) == 0)

    def test_state_round_trip(self):
        router = RangeShardRouter(("a", "b"), 4, cuts=[10, 20, 30])
        restored = router_from_state(router.to_state())
        assert isinstance(restored, RangeShardRouter)
        assert restored.key_names == ("a", "b")
        np.testing.assert_array_equal(restored.cuts, router.cuts)
        probe = {"a": np.arange(50, dtype=np.int64),
                 "b": np.zeros(50, dtype=np.int64)}
        np.testing.assert_array_equal(restored.route(probe),
                                      router.route(probe))

    def test_validation(self):
        with pytest.raises(ValueError):
            RangeShardRouter(("k",), 3, cuts=[5])  # wrong count
        with pytest.raises(ValueError):
            RangeShardRouter(("k",), 3, cuts=[9, 5])  # not ascending


class TestHashRouter:
    def test_deterministic_and_in_range(self):
        router = HashShardRouter(("key",), 5)
        keys = {"key": np.arange(-500, 500, dtype=np.int64)}
        ids = router.route(keys)
        assert ids.min() >= 0 and ids.max() < 5
        np.testing.assert_array_equal(ids, router.route(keys))

    def test_roughly_uniform(self):
        router = HashShardRouter(("key",), 4)
        ids = router.route({"key": np.arange(20_000, dtype=np.int64)})
        counts = np.bincount(ids, minlength=4)
        assert counts.min() > 4000  # perfect balance would be 5000

    def test_composite_columns_both_matter(self):
        router = HashShardRouter(("a", "b"), 16)
        base = {"a": np.arange(64, dtype=np.int64),
                "b": np.zeros(64, dtype=np.int64)}
        swapped = {"a": np.zeros(64, dtype=np.int64),
                   "b": np.arange(64, dtype=np.int64)}
        assert not np.array_equal(router.route(base), router.route(swapped))

    def test_state_round_trip(self):
        router = HashShardRouter(("key",), 7, seed=13)
        restored = router_from_state(router.to_state())
        probe = {"key": np.arange(100, dtype=np.int64)}
        np.testing.assert_array_equal(restored.route(probe),
                                      router.route(probe))


class TestFactories:
    def test_make_router_strategies(self):
        keys = {"key": np.arange(100, dtype=np.int64)}
        assert isinstance(make_router("range", keys, ("key",), 2),
                          RangeShardRouter)
        assert isinstance(make_router("hash", keys, ("key",), 2),
                          HashShardRouter)
        with pytest.raises(ValueError):
            make_router("modulo", keys, ("key",), 2)

    def test_router_from_state_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            router_from_state({"kind": "alien"})


class TestRangeRouterSkew:
    def test_duplicate_heavy_keys_yield_strict_cuts(self):
        """A hot value occupying several quantile positions used to
        produce duplicate cuts — shards boxed between equal cuts were
        permanently empty and unreachable."""
        keys = {"key": np.concatenate([
            np.arange(50, dtype=np.int64),
            np.full(300, 7, dtype=np.int64),
        ])}
        router = RangeShardRouter.from_keys(keys, ("key",), 4)
        assert np.all(np.diff(router.cuts) > 0)
        ids = router.route(keys)
        # Every shard owns at least one live key.
        assert np.unique(ids).size == 4

    def test_fewer_distinct_values_than_shards_stay_reachable(self):
        """With k < n distinct values, n - k shards must stay empty, but
        every one of them remains reachable by future keys."""
        keys = {"key": np.repeat(np.array([10, 20], dtype=np.int64), 100)}
        router = RangeShardRouter.from_keys(keys, ("key",), 5)
        ids = router.route(keys)
        assert np.unique(ids).size == 2  # the two live values
        # Probing a wide key range reaches every shard ordinal.
        probe = router.route({"key": np.arange(0, 100, dtype=np.int64)})
        assert np.unique(probe).size == 5

    def test_single_distinct_value(self):
        keys = {"key": np.full(50, 3, dtype=np.int64)}
        router = RangeShardRouter.from_keys(keys, ("key",), 3)
        assert np.all(router.route(keys) == 0)


class TestSplitMerge:
    def make(self):
        return RangeShardRouter(("key",), 3, cuts=[100, 200])

    def test_split_inserts_cut(self):
        split = self.make().split_at(1, 150)
        np.testing.assert_array_equal(split.cuts, [100, 150, 200])
        assert split.n_shards == 4
        ids = split.route({"key": np.array([50, 120, 170, 250])})
        np.testing.assert_array_equal(ids, [0, 1, 2, 3])

    def test_split_edge_shards(self):
        low = self.make().split_at(0, 10)
        np.testing.assert_array_equal(low.cuts, [10, 100, 200])
        high = self.make().split_at(2, 1000)
        np.testing.assert_array_equal(high.cuts, [100, 200, 1000])

    def test_split_validates_cut_inside_range(self):
        router = self.make()
        with pytest.raises(ValueError):
            router.split_at(1, 100)  # equals lower bound
        with pytest.raises(ValueError):
            router.split_at(1, 200)  # equals upper bound
        with pytest.raises(ValueError):
            router.split_at(0, 500)  # outside shard 0 entirely

    def test_merge_removes_boundary(self):
        merged = self.make().merge_at(0)
        np.testing.assert_array_equal(merged.cuts, [200])
        assert merged.n_shards == 2
        ids = merged.route({"key": np.array([50, 150, 250])})
        np.testing.assert_array_equal(ids, [0, 0, 1])

    def test_merge_validates_ordinal(self):
        router = self.make()
        with pytest.raises(ValueError):
            router.merge_at(2)  # last shard has no right neighbour
        with pytest.raises(ValueError):
            router.merge_at(-1)

    def test_originals_are_unchanged(self):
        router = self.make()
        router.split_at(1, 150)
        router.merge_at(0)
        np.testing.assert_array_equal(router.cuts, [100, 200])

    def test_bounds_of(self):
        router = self.make()
        assert router.bounds_of(0) == (None, 100)
        assert router.bounds_of(1) == (100, 200)
        assert router.bounds_of(2) == (200, None)
        with pytest.raises(IndexError):
            router.bounds_of(3)
