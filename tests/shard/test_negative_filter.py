"""Negative-filter properties: the manifest miss-pruning tier.

The load-bearing invariant is **no false negatives, ever**: a filter
probe answering False must be a guaranteed miss, across both filter
structures (blocked Bloom and exact dense bitmap), both router
strategies, and every mutation the store supports (insert, delete,
update, rebuild, split, merge).  A violated invariant silently drops
live rows from lookups, so most tests here are property-based.

Also covered: tier selection (`build_store_filter`), dense `try_add`
declining out-of-domain inserts without corrupting state, FilterBank
equivalence with per-filter probes, manifest persistence round-trips
(including legacy manifests without a store filter), the `pruned_keys`
counter, and bit-identical lookup parity against a filter-disabled
store.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.negative_filter import (
    DENSE_MAX_BITS_PER_KEY,
    DenseNegativeFilter,
    FilterBank,
    NegativeFilter,
    build_store_filter,
    filter_from_json,
    hash_key_columns,
)
from repro.data import synthetic
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.shard.manifest import ShardManifest

from ..core.conftest import fast_config


def assert_bit_identical(actual, expected, value_names):
    np.testing.assert_array_equal(actual.found, expected.found)
    for column in value_names:
        np.testing.assert_array_equal(actual.values[column],
                                      expected.values[column])
        assert actual.values[column].dtype == expected.values[column].dtype


int64s = st.integers(min_value=-2**62, max_value=2**62)


# ----------------------------------------------------------------------
# Filter-level properties (pure numpy, fast)
# ----------------------------------------------------------------------
class TestBloomFilter:
    @settings(max_examples=50, deadline=None)
    @given(keys=st.lists(int64s, min_size=0, max_size=300),
           probes=st.lists(int64s, min_size=1, max_size=100))
    def test_never_false_negative(self, keys, probes):
        hashes = np.array(keys, dtype=np.int64).view(np.uint64)
        filt = NegativeFilter.build(hashes)
        assert filt.might_contain(hashes).all()
        # Probes overlapping the inserted set must answer True there.
        probe = np.array(probes, dtype=np.int64).view(np.uint64)
        inserted = np.isin(np.asarray(probes, dtype=np.int64),
                           np.asarray(keys, dtype=np.int64))
        assert filt.might_contain(probe)[inserted].all()

    def test_incremental_add_keeps_invariant(self):
        rng = np.random.default_rng(0)
        filt = NegativeFilter.build(np.zeros(0, dtype=np.uint64))
        seen = []
        for _ in range(5):
            batch = rng.integers(-2**62, 2**62, 64).view(np.uint64)
            assert filt.try_add(batch)      # Bloom accepts any hash
            seen.append(batch)
            assert filt.might_contain(np.concatenate(seen)).all()

    def test_false_positive_rate_is_bounded(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(-2**62, 2**62, 4096).view(np.uint64)
        filt = NegativeFilter.build(keys, bits_per_key=10)
        absent = rng.integers(-2**62, 2**62, 20_000).view(np.uint64)
        fpr = filt.might_contain(absent).mean()
        assert fpr < 0.05, f"blocked-Bloom FPR {fpr:.3f} at 10 bits/key"

    def test_k_bounds_enforced(self):
        with pytest.raises(ValueError):
            NegativeFilter(1, k=0)
        with pytest.raises(ValueError):
            NegativeFilter(1, k=7)
        with pytest.raises(ValueError):
            NegativeFilter(0)


class TestDenseFilter:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_exact_membership(self, data):
        lo = data.draw(st.integers(-10**6, 10**6))
        span = data.draw(st.integers(1, 2000))
        keys = data.draw(st.lists(
            st.integers(lo, lo + span - 1), min_size=0, max_size=200))
        hashes = np.array(keys, dtype=np.int64).view(np.uint64)
        filt = DenseNegativeFilter.build(hashes, lo, span)
        probes = np.arange(lo - 10, lo + span + 10, dtype=np.int64)
        got = filt.might_contain(probes.view(np.uint64))
        expected = np.isin(probes, np.asarray(keys, dtype=np.int64))
        # Exact: equality in both directions, not just superset.
        np.testing.assert_array_equal(got, expected)

    def test_try_add_declines_out_of_domain_without_inserting(self):
        keys = np.arange(100, dtype=np.int64).view(np.uint64)
        filt = DenseNegativeFilter.build(keys, 0, 100)
        before = filt._words.copy()
        bad = np.array([50, 500], dtype=np.int64).view(np.uint64)
        assert not filt.try_add(bad)
        np.testing.assert_array_equal(filt._words, before)
        with pytest.raises(ValueError):
            filt.add(bad)
        np.testing.assert_array_equal(filt._words, before)
        assert filt.try_add(np.array([7], dtype=np.int64).view(np.uint64))

    def test_negative_domain_keys(self):
        keys = np.array([-5, -3, 0, 2], dtype=np.int64)
        filt = DenseNegativeFilter.build(keys.view(np.uint64), -5, 8)
        probes = np.arange(-8, 5, dtype=np.int64)
        np.testing.assert_array_equal(
            filt.might_contain(probes.view(np.uint64)),
            np.isin(probes, keys))


class TestStoreFilterSelection:
    def test_dense_domain_picks_exact_bitmap(self):
        keys = np.arange(1000, dtype=np.int64).view(np.uint64)
        filt = build_store_filter(keys)
        assert isinstance(filt, DenseNegativeFilter) and filt.exact

    def test_sparse_domain_falls_back_to_bloom(self):
        keys = (np.arange(1000, dtype=np.int64)
                * (20 * DENSE_MAX_BITS_PER_KEY)).view(np.uint64)
        filt = build_store_filter(keys)
        assert isinstance(filt, NegativeFilter) and not filt.exact

    def test_composite_fingerprints_fall_back_to_bloom(self):
        cols = {"a": np.arange(500, dtype=np.int64),
                "b": np.arange(500, dtype=np.int64) % 7}
        hashes = hash_key_columns(cols, ("a", "b"))
        filt = build_store_filter(hashes)
        assert isinstance(filt, NegativeFilter)
        assert filt.might_contain(hashes).all()

    def test_empty_key_set(self):
        filt = build_store_filter(np.zeros(0, dtype=np.uint64))
        probe = np.array([1, 2], dtype=np.int64).view(np.uint64)
        assert not filt.might_contain(probe).any()


class TestPersistenceRoundTrip:
    @pytest.mark.parametrize("make", [
        lambda h: NegativeFilter.build(h),
        lambda h: DenseNegativeFilter.build(
            h, int(h.view(np.int64).min()),
            int(h.view(np.int64).max() - h.view(np.int64).min()) + 1),
    ], ids=["bloom", "dense"])
    def test_json_round_trip(self, make):
        rng = np.random.default_rng(2)
        keys = np.unique(rng.integers(0, 5000, 800)).astype(np.int64)
        filt = make(keys.view(np.uint64))
        clone = filter_from_json(filt.to_json())
        assert type(clone) is type(filt)
        probes = rng.integers(-100, 6000, 3000).view(np.uint64)
        np.testing.assert_array_equal(clone.might_contain(probes),
                                      filt.might_contain(probes))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            NegativeFilter.from_json({"kind": "martian"})
        with pytest.raises(ValueError, match="kind"):
            DenseNegativeFilter.from_json({"kind": "bloom64"})


class TestFilterBank:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_matches_per_filter_probes(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        n_shards = data.draw(st.integers(1, 6))
        filters = []
        for ordinal in range(n_shards):
            if data.draw(st.booleans()):
                filters.append(None)        # empty / filterless shard
                continue
            keys = rng.integers(-2**40, 2**40, 100).view(np.uint64)
            filters.append(NegativeFilter.build(keys, bits_per_key=3))
        bank = FilterBank(filters)
        assert bank.uniform
        hashes = rng.integers(-2**40, 2**40, 400).view(np.uint64)
        shard_ids = rng.integers(0, n_shards, 400)
        got = bank.might_contain(shard_ids, hashes)
        for ordinal, filt in enumerate(filters):
            sel = shard_ids == ordinal
            if filt is None:                # never prunes
                assert got[sel].all()
            else:
                np.testing.assert_array_equal(
                    got[sel], filt.might_contain(hashes[sel]))

    def test_mixed_k_reports_non_uniform(self):
        keys = np.arange(10, dtype=np.int64).view(np.uint64)
        bank = FilterBank([NegativeFilter.build(keys, k=4),
                           NegativeFilter.build(keys, k=3)])
        assert not bank.uniform


# ----------------------------------------------------------------------
# Store-level properties: both routers, mutations, lifecycle
# ----------------------------------------------------------------------
def assert_no_false_negative(store):
    """Every live key must survive both pruning tiers."""
    parts = [shard.key_codec.unflatten(shard.exist.existing_keys())
             for shard in store.shards if shard is not None and len(shard)]
    if not parts:
        return
    key_cols = {name: np.concatenate([p[name] for p in parts])
                for name in store.key_names}
    hashes = hash_key_columns(key_cols, store.key_names)
    if store._store_filter is not None:
        assert store._store_filter.might_contain(hashes).all()
    shard_ids = store.router.route(key_cols)
    for ordinal, filt in enumerate(store.filters):
        if filt is None:
            continue
        sel = shard_ids == ordinal
        assert filt.might_contain(hashes[sel]).all()


@pytest.fixture(scope="module", params=["range", "hash"])
def routed_store(request):
    table = synthetic.multi_column(1000, "low", seed=9)
    store = ShardedDeepMapping.fit(
        table, fast_config(epochs=4),
        ShardingConfig(n_shards=4, strategy=request.param))
    return store, table


class TestStoreNoFalseNegative:
    def test_after_fit(self, routed_store):
        store, _ = routed_store
        assert_no_false_negative(store)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_lookup_parity_random_batches(self, routed_store, data):
        store, table = routed_store
        live = table.column("key")
        lo, hi = int(live.min()) - 100, int(live.max()) + 100
        keys = data.draw(st.lists(
            st.one_of(st.sampled_from(list(live[:150])),
                      st.integers(lo, hi),
                      int64s),
            min_size=1, max_size=400))
        query = {"key": np.asarray(keys, dtype=np.int64)}
        assert_bit_identical(store.lookup(query),
                             store.lookup_barrier(query),
                             store.value_names)


class TestMutationInvariants:
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_insert_delete_sequences(self, data):
        table = synthetic.multi_column(300, "low", seed=4)
        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=2),
            ShardingConfig(n_shards=3, strategy=data.draw(
                st.sampled_from(["range", "hash"]))))
        live = set(int(k) for k in table.column("key"))
        hi = max(live)
        template = {c: np.array([table.column(c)[0]])
                    for c in store.value_names}
        for _ in range(data.draw(st.integers(1, 4))):
            if data.draw(st.booleans()) or not live:
                fresh = data.draw(st.integers(hi + 1, hi + 10**6))
                if fresh in live:
                    continue
                store.insert({
                    "key": np.array([fresh], dtype=np.int64), **template})
                live.add(fresh)
            else:
                victim = data.draw(st.sampled_from(sorted(live)))
                store.delete({"key": np.array([victim], dtype=np.int64)})
                live.remove(victim)
            assert_no_false_negative(store)
        probe = np.array(sorted(live), dtype=np.int64)
        assert store.lookup({"key": probe}).found.all()
        store.close()

    def test_insert_outside_dense_domain_refreshes_store_filter(self):
        table = synthetic.single_column(600, "high", seed=6)
        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=2),
            ShardingConfig(n_shards=3, strategy="range"))
        assert store._store_filter is not None and store._store_filter.exact
        key_name = table.key[0]
        value = {c: np.array([table.column(c)[0]])
                 for c in store.value_names}
        # Far outside the fitted dense domain: try_add must decline and
        # the store must rebuild its tier-1 filter, not lose the key.
        far = int(table.column(key_name).max()) + 10**9
        store.insert({key_name: np.array([far], dtype=np.int64), **value})
        assert_no_false_negative(store)
        assert store.lookup_one(**{key_name: far}) is not None
        # A fresh all-miss batch is still (correctly) prunable.
        miss = np.array([far + 1, far + 2], dtype=np.int64)
        assert not store.lookup({key_name: miss}).found.any()
        store.close()

    def test_update_and_rebuild_keep_invariant(self, routed_store):
        store, table = routed_store
        key = int(table.column("key")[10])
        row = {c: np.array([table.column(c)[3]]) for c in store.value_names}
        store.update({"key": np.array([key], dtype=np.int64), **row})
        assert_no_false_negative(store)
        store.rebuild(fast_config(epochs=2))
        assert_no_false_negative(store)
        got = store.lookup_one(key=key)
        for column in store.value_names:
            assert got[column] == row[column][0]


class TestLifecycleInvariants:
    def test_split_then_merge(self):
        table = synthetic.single_column(800, "high", seed=8)
        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=2),
            ShardingConfig(n_shards=2, strategy="range"))
        query = {table.key[0]: np.concatenate([
            table.column(table.key[0])[:200],
            np.array([10**8, 10**8 + 1], dtype=np.int64)])}
        reference = store.lookup_barrier(query)
        store.split_shard(0)
        assert_no_false_negative(store)
        assert_bit_identical(store.lookup(query), reference,
                             store.value_names)
        store.merge_shards(0)
        assert_no_false_negative(store)
        assert_bit_identical(store.lookup(query), reference,
                             store.value_names)
        store.close()


# ----------------------------------------------------------------------
# Persistence + parity vs a filter-disabled store, pruned_keys counter
# ----------------------------------------------------------------------
class TestManifestPersistence:
    def test_round_trip_and_filter_disabled_parity(self, routed_store,
                                                   tmp_path):
        store, table = routed_store
        path = str(tmp_path / "store")
        store.save(path)

        manifest = ShardManifest.load(path)
        assert manifest.store_filter is not None
        clone = filter_from_json(manifest.store_filter)
        live_cols = {"key": table.column("key").astype(np.int64)}
        assert clone.might_contain(
            hash_key_columns(live_cols, store.key_names)).all()
        assert any(entry.filter is not None for entry in manifest.shards)

        rng = np.random.default_rng(5)
        live = table.column("key")
        query = {"key": np.concatenate([
            rng.choice(live, 300),
            rng.integers(live.min() - 50, live.max() + 10**6, 300)])}
        pruned = ShardedDeepMapping.load(path)
        unpruned = ShardedDeepMapping.load(path, negative_filter=False)
        assert pruned._store_filter is not None
        assert unpruned._store_filter is None
        assert_bit_identical(pruned.lookup(query), unpruned.lookup(query),
                             store.value_names)
        pruned.close()
        unpruned.close()

    def test_legacy_manifest_without_store_filter_loads(self, routed_store,
                                                        tmp_path):
        store, table = routed_store
        path = str(tmp_path / "store")
        store.save(path)
        manifest = ShardManifest.load(path)
        obj = manifest.to_json()
        obj.pop("store_filter")
        legacy = ShardManifest.from_json(obj)
        assert legacy.store_filter is None
        legacy.save(path)
        reopened = ShardedDeepMapping.load(path)
        assert reopened._store_filter is None   # no tier 1...
        rng = np.random.default_rng(12)
        query = {"key": np.concatenate([
            rng.choice(table.column("key"), 100),
            rng.integers(0, 10**7, 100)])}
        assert_bit_identical(reopened.lookup(query),        # ...still exact
                             store.lookup_barrier(query), store.value_names)
        reopened.close()


class TestPrunedKeysCounter:
    def test_all_miss_batch_counts_every_key(self):
        table = synthetic.single_column(600, "high", seed=7,
                                        domain_factor=1.0)
        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=2),
            ShardingConfig(n_shards=3, strategy="range"))
        key_name = table.key[0]
        hi = int(table.column(key_name).max())
        miss = np.arange(hi + 10, hi + 410, dtype=np.int64)
        assert not store.lookup({key_name: miss}).found.any()
        assert store.stats.counters.get("pruned_keys", 0) == miss.size

        # A pure-hit batch bails out of pruning and counts nothing.
        before = store.stats.counters.get("pruned_keys", 0)
        hits = table.column(key_name)[:400].astype(np.int64)
        assert store.lookup({key_name: hits}).found.all()
        assert store.stats.counters.get("pruned_keys", 0) == before
        store.close()
