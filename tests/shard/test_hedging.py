"""Hedged shard reads: straggler tails bounded by backup attempts.

One chaos-slowed shard must not set a fused batch's tail: once an
attempt runs well past its peers, the store launches one backup of the
same pure read and takes whichever finishes first — bit-identical
either way (see ``resilience/hedging.py`` for the idempotency
argument).  Healthy stores must hedge (approximately) never.

These tests pin ``max_workers=4``: with the default worker count on a
small host the pool dispatches inline during submission and there is
nothing concurrent to hedge against.
"""

import time

import numpy as np
import pytest

from repro.resilience.hedging import HedgeController, HedgePolicy
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.testing import break_shard

from ..core.conftest import fast_config


def hedging_store(table) -> ShardedDeepMapping:
    return ShardedDeepMapping.fit(
        table, fast_config(epochs=5),
        ShardingConfig(n_shards=4, strategy="range", max_workers=4,
                       hedged_reads=True))


def spread_keys(table, rng, n=200):
    """Existing keys from across the whole range (touch every shard)."""
    return {"key": rng.permutation(table.column("key"))[:n]}


class TestHedgePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay_factor=0.5)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay_ms=-1.0)
        with pytest.raises(ValueError):
            HedgePolicy(max_fraction=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(max_fraction=1.5)
        with pytest.raises(ValueError):
            HedgePolicy(ewma_alpha=0.0)


class TestHedgeController:
    def test_cold_controller_never_hedges(self):
        controller = HedgeController()
        assert controller.estimate_s is None
        assert controller.hedge_delay_s() is None

    def test_delay_prefers_batch_peers_over_ewma(self):
        controller = HedgeController(HedgePolicy(delay_factor=4.0,
                                                 min_delay_ms=0.0))
        controller.record(10.0)  # stale cross-batch history
        # This batch's peers finished in ~2 ms: hedge at 4x their median,
        # not 4x the EWMA.
        delay = controller.hedge_delay_s([0.001, 0.002, 0.003])
        assert delay == pytest.approx(0.008)
        assert controller.hedge_delay_s() == pytest.approx(40.0)

    def test_delay_floor(self):
        controller = HedgeController(HedgePolicy(delay_factor=2.0,
                                                 min_delay_ms=5.0))
        assert controller.hedge_delay_s([0.0001]) == pytest.approx(0.005)

    def test_ewma_tracks_recent_durations(self):
        controller = HedgeController(HedgePolicy(ewma_alpha=0.5))
        controller.record(1.0)
        controller.record(3.0)
        assert controller.estimate_s == pytest.approx(2.0)
        controller.record(0.0)  # non-positive samples are ignored
        assert controller.estimate_s == pytest.approx(2.0)

    def test_batch_budget(self):
        controller = HedgeController(HedgePolicy(max_fraction=0.25))
        assert controller.batch_budget(0) == 0
        assert controller.batch_budget(1) == 1   # floor: always one hedge
        assert controller.batch_budget(4) == 1
        assert controller.batch_budget(16) == 4


class TestHedgedReads:
    def test_hedge_rescues_a_transiently_slow_shard(self, small_table):
        store = hedging_store(small_table)
        rng = np.random.default_rng(5)
        keys = spread_keys(small_table, rng)
        baseline = store.lookup(keys)  # warm: every shard contributes

        # The shard dawdles 0.5 s on its FIRST call only — the exact
        # fault hedging exists for: a retry of the same work is fast.
        restore = break_shard(store, 1, delay_s=0.5, slow_first=1)
        try:
            started = time.monotonic()
            rescued = store.lookup(keys)
            elapsed = time.monotonic() - started
        finally:
            restore()
        # The backup attempt won long before the 0.5 s straggler.
        assert elapsed < 0.45
        assert store.stats.counters.get("hedges_launched", 0) >= 1
        assert store.stats.counters.get("hedges_won", 0) >= 1
        # Bit-identical to the healthy read: hedging is invisible in the
        # data plane.
        np.testing.assert_array_equal(rescued.found, baseline.found)
        for column in store.value_names:
            np.testing.assert_array_equal(rescued.values[column],
                                          baseline.values[column])

    def test_healthy_store_hedges_never(self, small_table):
        store = hedging_store(small_table)
        rng = np.random.default_rng(6)
        for _ in range(20):
            store.lookup(spread_keys(small_table, rng, n=120))
        launched = store.stats.counters.get("hedges_launched", 0)
        attempts = 20 * 4  # batches x shards
        assert launched / attempts < 0.10  # the acceptance gate's bound

    def test_budget_bounds_hedges_per_batch(self, small_table):
        store = hedging_store(small_table)
        rng = np.random.default_rng(7)
        keys = spread_keys(small_table, rng)
        store.lookup(keys)  # warm the duration estimate
        # Every shard dawdles on its next call: without the budget this
        # batch would hedge all four jobs.
        restores = [break_shard(store, ordinal, delay_s=0.3, slow_first=1)
                    for ordinal in range(4)]
        try:
            store.lookup(keys)
        finally:
            for restore in restores:
                restore()
        launched = store.stats.counters.get("hedges_launched", 0)
        assert 1 <= launched <= store.hedger.batch_budget(4)

    def test_hedging_off_by_default(self, small_table):
        store = ShardedDeepMapping.fit(
            small_table, fast_config(epochs=5),
            ShardingConfig(n_shards=4, max_workers=4))
        assert store.hedger is None
        rng = np.random.default_rng(8)
        store.lookup(spread_keys(small_table, rng))
        assert store.stats.counters.get("hedges_launched", 0) == 0

    def test_hedged_reads_round_trips_through_manifest(self, small_table,
                                                       tmp_path):
        store = hedging_store(small_table)
        target = str(tmp_path / "hedged-store")
        store.save(target)
        loaded = ShardedDeepMapping.load(target)
        assert loaded.sharding.hedged_reads is True
        assert loaded.hedger is not None
        rng = np.random.default_rng(9)
        keys = spread_keys(small_table, rng)
        want = store.lookup(keys)
        got = loaded.lookup(keys)
        np.testing.assert_array_equal(got.found, want.found)
