"""Fixtures for sharded-store tests: fast builds over small tables."""

import numpy as np
import pytest

from repro.data import ColumnTable, synthetic
from repro.shard import ShardedDeepMapping, ShardingConfig

from ..core.conftest import fast_config


@pytest.fixture
def small_table():
    """1.2k-row multi-column table (low correlation -> busy aux tables)."""
    return synthetic.multi_column(1200, "low", seed=3)


@pytest.fixture
def sharded(small_table):
    """A 4-shard range-partitioned store over the small table."""
    return ShardedDeepMapping.fit(
        small_table, fast_config(epochs=5),
        ShardingConfig(n_shards=4, strategy="range"),
    )


@pytest.fixture
def two_group_table():
    """Composite-key table whose leading column has only two values.

    Range-sharding this across four shards is guaranteed to leave shards
    empty (cut points collapse onto the two observed leading keys).
    """
    grp = np.repeat(np.array([0, 1], dtype=np.int64), 150)
    sub = np.tile(np.arange(150, dtype=np.int64), 2)
    rng = np.random.default_rng(7)
    return ColumnTable(
        {
            "grp": grp,
            "sub": sub,
            "status": rng.choice(np.array(["A", "B", "C"]), size=grp.size),
        },
        key=("grp", "sub"),
        name="two-group",
    )
