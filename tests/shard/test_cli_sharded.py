"""CLI tests for the --shards flag and sharded-store auto-detection."""

import os

import pytest

from repro.cli import main


def build_sharded(tmp_path, shards=2, extra=()):
    out = str(tmp_path / "store.dms")
    argv = ["build", "--dataset", "synthetic:multi-high", "--scale", "0.05",
            "--out", out, "--epochs", "10", "--batch-size", "256",
            "--shards", str(shards)]
    argv.extend(extra)
    return argv, out


class TestShardedBuild:
    def test_build_creates_directory_store(self, tmp_path, capsys):
        argv, out = build_sharded(tmp_path)
        assert main(argv) == 0
        assert os.path.isdir(out)
        assert os.path.isfile(os.path.join(out, "manifest.json"))
        stdout = capsys.readouterr().out
        assert "sharded range x2" in stdout

    def test_build_hash_strategy(self, tmp_path, capsys):
        argv, out = build_sharded(
            tmp_path, extra=["--shard-strategy", "hash"])
        assert main(argv) == 0
        assert "sharded hash x2" in capsys.readouterr().out


class TestShardedInfoQuery:
    def test_info_reports_shards(self, tmp_path, capsys):
        argv, out = build_sharded(tmp_path)
        main(argv)
        capsys.readouterr()
        assert main(["info", out]) == 0
        stdout = capsys.readouterr().out
        assert "shards:" in stdout and "model:" in stdout

    def test_query_hits_and_misses(self, tmp_path, capsys):
        argv, out = build_sharded(tmp_path)
        main(argv)
        capsys.readouterr()
        assert main(["query", out, "--key", "key=0",
                     "--key", "key=999999"]) == 0
        stdout = capsys.readouterr().out
        assert "(key=0) ->" in stdout
        assert "NULL" in stdout


class TestBenchRejectsShards:
    def test_bench_refuses_shard_flag(self):
        with pytest.raises(SystemExit, match="bench_sharding"):
            main(["bench", "--dataset", "synthetic:single-low",
                  "--scale", "0.03", "--shards", "2"])


class TestLifecycleFlags:
    def test_build_with_lifecycle_knobs(self, tmp_path, capsys):
        argv, out = build_sharded(
            tmp_path, extra=["--rebalance", "--per-shard-mhas"])
        assert main(argv) == 0
        stdout = capsys.readouterr().out
        assert "lifecycle: policy=never rebalance=True" in stdout
        capsys.readouterr()
        assert main(["info", out]) == 0
        assert "lifecycle:" in capsys.readouterr().out

    def test_retrain_bytes_implies_bytes_policy(self, tmp_path, capsys):
        argv, out = build_sharded(
            tmp_path, extra=["--retrain-bytes", "1000000"])
        assert main(argv) == 0
        assert "lifecycle: policy=bytes" in capsys.readouterr().out

    def test_bytes_policy_without_threshold_is_rejected(self, tmp_path):
        """BytesThresholdPolicy(None) never fires; requesting it
        explicitly without a threshold must error, not silently degrade
        to 'never'."""
        argv, _ = build_sharded(tmp_path,
                                extra=["--retrain-policy", "bytes"])
        with pytest.raises(SystemExit, match="retrain-bytes"):
            main(argv)

    def test_lifecycle_needs_multiple_shards(self, tmp_path):
        argv, _ = build_sharded(tmp_path, shards=1, extra=["--rebalance"])
        with pytest.raises(SystemExit, match="shards"):
            main(argv)

    def test_rebalance_needs_range_strategy(self, tmp_path):
        argv, _ = build_sharded(
            tmp_path, extra=["--shard-strategy", "hash", "--rebalance"])
        with pytest.raises(SystemExit, match="range"):
            main(argv)
