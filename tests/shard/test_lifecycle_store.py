"""Store-level lifecycle tests: split/merge mechanics, losslessness,
persistence of the lifecycle state, compiled/reference parity."""

import numpy as np
import pytest

from repro.data import synthetic
from repro.lifecycle import LifecycleConfig
from repro.shard import ShardedDeepMapping, ShardingConfig, ShardManifest

from ..core.conftest import fast_config


def set_compiled(store, flag: bool) -> None:
    """Toggle the compiled read path on the store and every live shard
    (per-shard configs may be distinct objects after sized rebuilds)."""
    store.config.compiled_lookup = flag
    for shard in store.shards:
        if shard is not None:
            shard.config.compiled_lookup = flag


def assert_lossless(store, table, extra_rows=None):
    """Every row of ``table`` (+ ``extra_rows`` dicts) answers exactly,
    through the compiled path and the reference path alike."""
    keys = [np.asarray(table.column(store.key_names[0]), dtype=np.int64)]
    expected = {c: [np.asarray(table.column(c))] for c in store.value_names}
    if extra_rows:
        for rows in extra_rows:
            keys.append(np.asarray(rows[store.key_names[0]], dtype=np.int64))
            for c in store.value_names:
                expected[c].append(np.asarray(rows[c]))
    all_keys = np.concatenate(keys)
    for flag in (True, False):
        set_compiled(store, flag)
        result = store.lookup({store.key_names[0]: all_keys})
        assert result.found.all(), f"misses with compiled={flag}"
        for column in store.value_names:
            np.testing.assert_array_equal(
                result.values[column], np.concatenate(expected[column]),
                err_msg=f"column {column} with compiled={flag}")
    set_compiled(store, True)


@pytest.fixture
def table():
    return synthetic.multi_column(1200, "low", seed=3)


@pytest.fixture
def store(table):
    return ShardedDeepMapping.fit(
        table, fast_config(epochs=4),
        ShardingConfig(n_shards=4, strategy="range"))


class TestSplitMechanics:
    def test_split_preserves_rows_and_balance(self, store, table):
        before = store.shard_row_counts()
        cut = store.split_shard(1)
        after = store.shard_row_counts()
        assert store.n_shards == 5
        assert sum(after) == sum(before)
        # Both halves non-empty, roughly even.
        assert after[1] > 0 and after[2] > 0
        assert after[1] + after[2] == before[1]
        assert cut == int(store.router.cuts[1])

    def test_split_is_lossless_both_paths(self, store, table):
        store.split_shard(0)
        store.split_shard(store.n_shards - 1)
        assert_lossless(store, table)

    def test_split_respects_explicit_cut(self, store, table):
        counts_before = store.shard_row_counts()
        leading = np.sort(table.column("key").astype(np.int64))
        # Shard 0 owns the lowest quarter; cut it 10 rows in.
        cut = int(leading[10])
        store.split_shard(0, cut=cut)
        assert store.shard_row_counts()[0] == 10
        assert sum(store.shard_row_counts()) == sum(counts_before)

    def test_split_rejects_empty_half(self, store, table):
        lo = int(table.column("key").min())
        with pytest.raises(ValueError, match="empty half"):
            store.split_shard(0, cut=lo)  # keys < lo is empty

    def test_split_rejects_empty_shard(self, store):
        store.delete({"key": np.arange(0, 300, dtype=np.int64)})
        # shard 0 may not be fully drained depending on cuts; force a
        # genuinely empty shard via a single-key check instead.
        empty_candidates = [i for i, n in enumerate(store.shard_row_counts())
                            if n == 0]
        if empty_candidates:
            with pytest.raises(ValueError):
                store.split_shard(empty_candidates[0])

    def test_split_requires_range_router(self, table):
        hashed = ShardedDeepMapping.fit(
            table, fast_config(epochs=3),
            ShardingConfig(n_shards=2, strategy="hash"))
        with pytest.raises(TypeError, match="range"):
            hashed.split_shard(0)
        assert not hashed.can_split(0)

    def test_retired_aux_partitions_are_dropped(self, store):
        shard = store.shards[2]
        store.split_shard(2)
        # The retired table's partitions are gone from the shared pool;
        # the successors' partitions answer instead.
        assert shard.aux._store.pool is store.pool
        assert store.lookup_one(key=650) is not None


class TestMergeMechanics:
    def test_merge_preserves_rows(self, store, table):
        before = store.shard_row_counts()
        store.merge_shards(1)
        after = store.shard_row_counts()
        assert store.n_shards == 3
        assert sum(after) == sum(before)
        assert after[1] == before[1] + before[2]

    def test_merge_is_lossless_both_paths(self, store, table):
        store.merge_shards(0)
        store.merge_shards(store.n_shards - 2)
        assert_lossless(store, table)

    def test_merge_then_split_round_trip(self, store, table):
        """A merge followed by a split at the removed boundary restores
        the original partition."""
        boundary = int(store.router.cuts[1])
        counts = store.shard_row_counts()
        store.merge_shards(1)
        store.split_shard(1, cut=boundary)
        assert store.shard_row_counts() == counts
        assert_lossless(store, table)

    def test_merge_empty_pair_removes_boundary(self, table):
        from repro.data import ColumnTable

        grp = np.repeat(np.array([0, 1], dtype=np.int64), 100)
        sub = np.tile(np.arange(100, dtype=np.int64), 2)
        rng = np.random.default_rng(7)
        two_group = ColumnTable(
            {"grp": grp, "sub": sub,
             "status": rng.choice(np.array(["A", "B"]), size=grp.size)},
            key=("grp", "sub"), name="two-group")
        store = ShardedDeepMapping.fit(
            two_group, fast_config(epochs=3),
            ShardingConfig(n_shards=4, strategy="range"))
        counts = store.shard_row_counts()
        assert counts[2] == 0 and counts[3] == 0
        store.merge_shards(2)  # both empty -> just drop the boundary
        assert store.n_shards == 3
        assert store.shards[2] is None
        result = store.lookup(two_group.key_columns_dict())
        assert result.found.all()

    def test_merge_validates_ordinal(self, store):
        with pytest.raises(ValueError):
            store.merge_shards(3)  # no right neighbour
        with pytest.raises(ValueError):
            store.merge_shards(-1)


class TestLifecyclePersistence:
    def test_lifecycle_round_trips_through_save_load(self, table, tmp_path):
        lifecycle = LifecycleConfig(policy="bytes", retrain_bytes=1 << 20,
                                    rebalance=True, per_shard_mhas=True,
                                    split_min_rows=64)
        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=3),
            ShardingConfig(n_shards=4, lifecycle=lifecycle))
        store.split_shard(0)
        store.engine.n_splits += 1  # as the engine would have recorded
        path = str(tmp_path / "store")
        store.save(path)

        manifest = ShardManifest.load(path)
        assert manifest.lifecycle["config"]["rebalance"] is True
        assert manifest.lifecycle["counters"]["splits"] == 1

        loaded = ShardedDeepMapping.load(path)
        assert loaded.engine is not None
        assert loaded.engine.n_splits == 1
        assert loaded.sharding.lifecycle == lifecycle
        assert loaded.n_shards == 5
        assert not any(shard.auto_rebuild for shard in loaded.shards
                       if shard is not None)
        assert_lossless(loaded, table)

    def test_post_split_store_round_trips(self, store, table, tmp_path):
        store.split_shard(2)
        store.merge_shards(0)
        path = str(tmp_path / "store")
        store.save(path)
        loaded = ShardedDeepMapping.load(path)
        assert loaded.n_shards == store.n_shards
        assert loaded.shard_row_counts() == store.shard_row_counts()
        assert_lossless(loaded, table)

    def test_unmanaged_manifest_has_empty_lifecycle(self, store, tmp_path):
        path = str(tmp_path / "store")
        store.save(path)
        manifest = ShardManifest.load(path)
        assert manifest.lifecycle == {}
        assert ShardedDeepMapping.load(path).engine is None


class TestSkewedStream:
    def test_rebalancing_beats_baseline_and_stays_lossless(self, table):
        """The acceptance scenario at test scale: a hot-range insert
        stream into a 4-shard store.  Rebalancing keeps max/mean bounded
        where the baseline concentrates everything in one shard."""
        config = fast_config(epochs=3, key_headroom_fraction=4.0)
        lifecycle = LifecycleConfig(policy="never", rebalance=True,
                                    split_balance=1.6, split_min_rows=64,
                                    merge_balance=0.4,
                                    max_actions_per_run=8)
        managed = ShardedDeepMapping.fit(
            table, config, ShardingConfig(n_shards=4, lifecycle=lifecycle))
        baseline = ShardedDeepMapping.fit(
            table, config, ShardingConfig(n_shards=4))

        rng = np.random.default_rng(11)
        kmax = int(table.column("key").max())
        hot = np.arange(kmax + 1, kmax + 1 + 1800, dtype=np.int64)
        inserted = []
        for start in range(0, hot.size, 600):
            batch_keys = hot[start:start + 600]
            rows = {"key": batch_keys}
            for column in managed.value_names:
                rows[column] = rng.choice(table.column(column),
                                          size=batch_keys.size)
            managed.insert(rows)
            baseline.insert({k: v.copy() for k, v in rows.items()})
            inserted.append(rows)
            # Lossless *during* the stream, both read paths.
            assert_lossless(managed, table, extra_rows=inserted)

        managed_counts = np.asarray(managed.shard_row_counts())
        baseline_counts = np.asarray(baseline.shard_row_counts())
        managed_ratio = managed_counts.max() / managed_counts.mean()
        baseline_ratio = baseline_counts.max() / baseline_counts.mean()
        assert managed_ratio <= 2.0
        assert baseline_ratio > 2.0
        assert managed_ratio < baseline_ratio
