"""Property tests for router invariants (hypothesis).

The router is the store's correctness keystone: every key must route to
exactly one shard, identically before/after a state round trip, and
split/merge must refine/coarsen the partition without ever changing which
*keys* a region owns.  These properties are exercised over adversarial
(skewed, duplicated, extreme-valued) key sets.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.shard import (HashShardRouter, RangeShardRouter,
                         router_from_state)

I64 = st.integers(min_value=-(2**62), max_value=2**62)

key_arrays = st.lists(I64, min_size=1, max_size=200).map(
    lambda xs: np.asarray(xs, dtype=np.int64))

# Skewed generator: few distinct values, many repeats.
skewed_arrays = st.lists(
    st.sampled_from([0, 1, 2, 5, 1000, -7]), min_size=1, max_size=200,
).map(lambda xs: np.asarray(xs, dtype=np.int64))


@st.composite
def range_routers(draw):
    n_shards = draw(st.integers(min_value=1, max_value=8))
    cuts = sorted(draw(st.lists(I64, min_size=n_shards - 1,
                                max_size=n_shards - 1)))
    return RangeShardRouter(("key",), n_shards, cuts)


@st.composite
def fitted_range_routers(draw):
    """Routers fitted from (possibly skewed) observed keys."""
    keys = draw(st.one_of(key_arrays, skewed_arrays))
    n_shards = draw(st.integers(min_value=1, max_value=8))
    return RangeShardRouter.from_keys({"key": keys}, ("key",), n_shards), keys


class TestRouteTotality:
    @settings(max_examples=60, deadline=None)
    @given(router=range_routers(), keys=key_arrays)
    def test_range_route_is_total(self, router, keys):
        ids = router.route({"key": keys})
        assert ids.shape == keys.shape
        assert ids.min() >= 0 and ids.max() < router.n_shards

    @settings(max_examples=60, deadline=None)
    @given(keys=key_arrays,
           n_shards=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_hash_route_is_total(self, keys, n_shards, seed):
        router = HashShardRouter(("key",), n_shards, seed=seed)
        ids = router.route({"key": keys})
        assert ids.min() >= 0 and ids.max() < n_shards


class TestStateRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(router=range_routers(), keys=key_arrays)
    def test_range_round_trip_is_stable(self, router, keys):
        restored = router_from_state(router.to_state())
        np.testing.assert_array_equal(restored.route({"key": keys}),
                                      router.route({"key": keys}))

    @settings(max_examples=40, deadline=None)
    @given(fitted=fitted_range_routers())
    def test_fitted_round_trip_is_stable(self, fitted):
        router, keys = fitted
        restored = router_from_state(router.to_state())
        np.testing.assert_array_equal(restored.route({"key": keys}),
                                      router.route({"key": keys}))


class TestFittedInvariants:
    @settings(max_examples=60, deadline=None)
    @given(fitted=fitted_range_routers())
    def test_every_fitted_key_routes_to_a_reachable_shard(self, fitted):
        """With >= n_shards distinct values, no shard is unreachable:
        strictly ascending cuts leave every inter-cut gap non-empty."""
        router, keys = fitted
        uniq = np.unique(keys)
        if uniq.size >= router.n_shards:
            assert np.all(np.diff(router.cuts) > 0)
            # Every shard owns at least one observed key.
            ids = router.route({"key": keys})
            assert np.unique(ids).size == router.n_shards

    @settings(max_examples=60, deadline=None)
    @given(fitted=fitted_range_routers())
    def test_shard_assignment_is_monotone(self, fitted):
        router, keys = fitted
        order = np.argsort(keys, kind="stable")
        ids = router.route({"key": keys[order]})
        assert np.all(np.diff(ids) >= 0)


class TestSplitMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(fitted=fitted_range_routers(), data=st.data())
    def test_split_refines_the_partition(self, fitted, data):
        """After a split, the two children partition exactly the parent's
        keys and every other shard keeps its keys (shifted by one)."""
        router, keys = fitted
        ids = router.route({"key": keys})
        # Pick a splittable shard (two distinct observed values).
        candidates = [s for s in range(router.n_shards)
                      if np.unique(keys[ids == s]).size >= 2]
        if not candidates:
            return
        ordinal = data.draw(st.sampled_from(candidates))
        owned = np.unique(keys[ids == ordinal])
        cut = int(data.draw(st.sampled_from(list(owned[1:]))))

        split = router.split_at(ordinal, cut)
        new_ids = split.route({"key": keys})
        assert split.n_shards == router.n_shards + 1
        # Children partition the parent's keys at the cut.
        parent_rows = ids == ordinal
        np.testing.assert_array_equal(
            new_ids[parent_rows],
            np.where(keys[parent_rows] < cut, ordinal, ordinal + 1))
        # Everyone else only shifts.
        np.testing.assert_array_equal(
            new_ids[~parent_rows],
            ids[~parent_rows] + (ids[~parent_rows] > ordinal))

    @settings(max_examples=60, deadline=None)
    @given(router=range_routers(), keys=key_arrays, data=st.data())
    def test_merge_coarsens_the_partition(self, router, keys, data):
        if router.n_shards < 2:
            return
        ordinal = data.draw(st.integers(min_value=0,
                                        max_value=router.n_shards - 2))
        merged = router.merge_at(ordinal)
        ids = router.route({"key": keys})
        new_ids = merged.route({"key": keys})
        assert merged.n_shards == router.n_shards - 1
        expected = np.where(ids <= ordinal, ids, ids - 1)
        np.testing.assert_array_equal(new_ids, expected)

    @settings(max_examples=40, deadline=None)
    @given(router=range_routers(), keys=key_arrays, data=st.data())
    def test_split_then_merge_is_identity(self, router, keys, data):
        if router.n_shards < 2:
            return
        ordinal = data.draw(st.integers(min_value=0,
                                        max_value=router.n_shards - 2))
        boundary = int(router.cuts[ordinal])
        merged = router.merge_at(ordinal)
        lower, upper = merged.bounds_of(ordinal)
        if (lower is not None and boundary <= lower) or \
                (upper is not None and boundary >= upper):
            return  # boundary collapsed onto a neighbouring cut
        restored = merged.split_at(ordinal, boundary)
        np.testing.assert_array_equal(restored.cuts, router.cuts)
        np.testing.assert_array_equal(restored.route({"key": keys}),
                                      router.route({"key": keys}))
