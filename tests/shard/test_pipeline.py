"""Pipelined read path: bit-parity with the barrier reference, all routes.

`ShardedDeepMapping.lookup` (staged plans, shared sort, streaming
scatter) must return bit-identical results to `lookup_barrier` (the
pre-pipeline map/concat/permute path) on every router, key shape,
executor and hit mix — including adversarial batches from hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DeepMappingConfig
from repro.data import ColumnTable, synthetic
from repro.shard import ShardedDeepMapping, ShardingConfig

from ..core.conftest import fast_config


def assert_same(actual, expected, value_names):
    np.testing.assert_array_equal(actual.found, expected.found)
    for column in value_names:
        np.testing.assert_array_equal(actual.values[column],
                                      expected.values[column])
        assert actual.values[column].dtype == expected.values[column].dtype


@pytest.fixture(scope="module")
def table():
    return synthetic.multi_column(1200, "low", seed=5)


@pytest.fixture(scope="module", params=["range", "hash"])
def store(request, table):
    return ShardedDeepMapping.fit(
        table, fast_config(epochs=4),
        ShardingConfig(n_shards=4, strategy=request.param))


class TestParity:
    def test_mixed_batch(self, store, table):
        rng = np.random.default_rng(0)
        live = table.column("key")
        query = {"key": np.concatenate([
            rng.choice(live, 500),
            rng.integers(live.min(), live.max() + 100, 500),
        ])}
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)

    def test_sorted_batch_rides_fast_path(self, store, table):
        query = {"key": np.sort(table.column("key")[:400])}
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)

    def test_all_miss_batch(self, store, table):
        hi = int(table.column("key").max())
        query = {"key": np.arange(hi + 10, hi + 210, dtype=np.int64)}
        result = store.lookup(query)
        assert not result.found.any()
        assert_same(result, store.lookup_barrier(query), store.value_names)

    def test_empty_batch(self, store):
        query = {"key": np.empty(0, dtype=np.int64)}
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)

    def test_duplicate_keys_in_batch(self, store, table):
        key = int(table.column("key")[3])
        query = {"key": np.array([key, key, key + 10**7, key],
                                 dtype=np.int64)}
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_hypothesis_random_batches(self, store, table, data):
        live = table.column("key")
        lo, hi = int(live.min()) - 50, int(live.max()) + 50
        keys = data.draw(st.lists(
            st.one_of(st.sampled_from(list(live[:100])),
                      st.integers(lo, hi)),
            min_size=1, max_size=300))
        query = {"key": np.asarray(keys, dtype=np.int64)}
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)


class TestReferencePathParity:
    def test_uncompiled_store_matches_barrier(self, table):
        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=3, compiled_lookup=False),
            ShardingConfig(n_shards=3))
        rng = np.random.default_rng(1)
        live = table.column("key")
        query = {"key": np.concatenate([
            rng.choice(live, 300),
            rng.integers(live.min(), live.max() + 100, 300)])}
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)


class TestCompositeKeys:
    def test_composite_key_parity(self):
        rng = np.random.default_rng(7)
        a = np.repeat(np.arange(30, dtype=np.int64), 20)
        b = np.tile(np.arange(20, dtype=np.int64), 30)
        table = ColumnTable(
            {"a": a, "b": b,
             "v": rng.integers(0, 50, a.size).astype(np.int64)},
            key=("a", "b"))
        store = ShardedDeepMapping.fit(table, fast_config(epochs=3),
                                       ShardingConfig(n_shards=3))
        query = {
            "a": np.concatenate([a[::7], rng.integers(0, 40, 60)]),
            "b": np.concatenate([b[::7], rng.integers(0, 25, 60)]),
        }
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)


class TestEmptyShards:
    def test_batch_touching_empty_shard(self, table):
        store = ShardedDeepMapping.fit(table, fast_config(epochs=3),
                                       ShardingConfig(n_shards=4))
        # Delete every row of shard 0 so its segment is all misses.
        shard = store.shards[0]
        flat = shard.exist.existing_keys()
        key_cols = shard.key_codec.unflatten(flat)
        store.delete(key_cols)
        store._topology = (store.router,
                           [None] + list(store.shards[1:]),
                           [None] + list(store.filters[1:]))
        rng = np.random.default_rng(2)
        live = table.column("key")
        query = {"key": np.concatenate([
            rng.choice(live, 400),
            rng.integers(live.min(), live.max() + 100, 400)])}
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)


class TestExecutorFallback:
    def test_strategy_without_submit_job_uses_barrier(self, table):
        class MinimalStrategy:
            name = "minimal"

            def map(self, fn, jobs):
                return [fn(job) for job in jobs]

            def submit(self, fn, *args, **kwargs):
                from concurrent.futures import Future
                future = Future()
                future.set_result(fn(*args, **kwargs))
                return future

            def close(self):
                pass

        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=3),
            ShardingConfig(n_shards=3, executor=MinimalStrategy()))
        rng = np.random.default_rng(3)
        live = table.column("key")
        query = {"key": rng.choice(live, 200)}
        reference = ShardedDeepMapping.lookup_barrier(store, query)
        assert_same(store.lookup(query), reference, store.value_names)

    def test_pre_deadline_submit_job_signature_still_serves(self, table):
        # Regression: a deadline-carrying lookup used to call
        # submit_job(..., deadline=...) unconditionally, so a custom
        # strategy with the documented pre-resilience signature
        # ``submit_job(fn, *args)`` raised TypeError on every
        # multi-shard lookup.
        from concurrent.futures import Future

        from repro.resilience import Deadline

        class LegacyStrategy:
            name = "legacy"

            def map(self, fn, jobs):
                return [fn(job) for job in jobs]

            def _resolve(self, fn, *args, **kwargs):
                future = Future()
                try:
                    future.set_result(fn(*args, **kwargs))
                except BaseException as exc:
                    future.set_exception(exc)
                return future

            def submit(self, fn, *args):
                return self._resolve(fn, *args)

            def submit_job(self, fn, *args):
                return self._resolve(fn, *args)

            def close(self):
                pass

        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=3),
            ShardingConfig(n_shards=3, executor=LegacyStrategy()))
        rng = np.random.default_rng(6)
        live = table.column("key")
        query = {"key": rng.choice(live, 200)}
        reference = store.lookup_barrier(query)
        deadline = Deadline(30.0)
        assert_same(store.lookup(query, deadline=deadline), reference,
                    store.value_names)
        assert_same(store.lookup_async(query, deadline=deadline).result(),
                    reference, store.value_names)

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_named_strategies_parity(self, table, executor):
        store = ShardedDeepMapping.fit(
            table, fast_config(epochs=3),
            ShardingConfig(n_shards=3, executor=executor))
        rng = np.random.default_rng(4)
        live = table.column("key")
        query = {"key": np.concatenate([
            rng.choice(live, 300),
            rng.integers(live.min(), live.max() + 100, 300)])}
        assert_same(store.lookup(query), store.lookup_barrier(query),
                    store.value_names)
        assert_same(store.lookup_async(query).result(),
                    store.lookup_barrier(query), store.value_names)
        store.close()
