"""Tests for the sharded-store manifest format."""

import json
import os

import pytest

from repro.shard import (MANIFEST_NAME, ShardEntry, ShardManifest,
                         is_sharded_store)


def sample_manifest():
    return ShardManifest(
        router={"kind": "range", "key_names": ["key"], "n_shards": 3,
                "cuts": [10, 20]},
        key_names=["key"],
        value_names=["v0", "v1"],
        value_dtypes={"v0": "<i8", "v1": "<U4"},
        shards=[
            ShardEntry(file="shard-0000.dm", n_rows=10, n_bytes=1234),
            ShardEntry(file=None),
            ShardEntry(file="shard-0002.dm", n_rows=5, n_bytes=567),
        ],
        sharding={"strategy": "range", "n_shards": 3,
                  "max_workers": None, "pool_budget_bytes": None},
    )


class TestRoundTrip:
    def test_json_round_trip(self):
        manifest = sample_manifest()
        restored = ShardManifest.from_json(manifest.to_json())
        assert restored.key_names == ["key"]
        assert restored.value_dtypes == {"v0": "<i8", "v1": "<U4"}
        assert restored.n_shards == 3
        assert restored.shards[1].file is None
        assert restored.shards[2].n_bytes == 567

    def test_disk_round_trip(self, tmp_path):
        manifest = sample_manifest()
        nbytes = manifest.save(str(tmp_path))
        assert nbytes > 0
        restored = ShardManifest.load(str(tmp_path))
        assert restored.to_json() == manifest.to_json()

    def test_file_is_readable_json(self, tmp_path):
        sample_manifest().save(str(tmp_path))
        with open(tmp_path / MANIFEST_NAME) as handle:
            obj = json.load(handle)
        assert obj["format"] == "sharded-deepmapping"


class TestValidation:
    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="not a sharded-deepmapping"):
            ShardManifest.from_json({"format": "something-else"})

    def test_rejects_future_version(self):
        obj = sample_manifest().to_json()
        obj["version"] = 999
        with pytest.raises(ValueError, match="newer"):
            ShardManifest.from_json(obj)


class TestDetection:
    def test_is_sharded_store(self, tmp_path):
        assert not is_sharded_store(str(tmp_path))
        sample_manifest().save(str(tmp_path))
        assert is_sharded_store(str(tmp_path))

    def test_plain_file_is_not_a_store(self, tmp_path):
        path = tmp_path / "structure.dm"
        path.write_bytes(b"pickle")
        assert not is_sharded_store(str(path))
        assert not is_sharded_store(str(tmp_path / "missing"))
