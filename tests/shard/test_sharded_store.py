"""Tests for ShardedDeepMapping: routing, parity, persistence, mutation."""

import os

import numpy as np
import pytest

from repro.core import DeepMapping, select
from repro.data import ColumnTable
from repro.shard import ShardedDeepMapping, ShardingConfig

from ..core.conftest import fast_config


def query_keys(table, rng, n_miss=3):
    """Shuffled existing keys plus a few guaranteed misses, interleaved."""
    existing = rng.permutation(table.column("key"))[:400]
    missing = np.array([10**7 + i for i in range(n_miss)], dtype=np.int64)
    keys = np.concatenate([existing, missing])
    return keys[rng.permutation(keys.size)]


class TestLookupParity:
    def test_matches_monolithic_and_preserves_input_order(self, small_table):
        config = fast_config(epochs=5)
        mono = DeepMapping.fit(small_table, config)
        sharded = ShardedDeepMapping.fit(
            small_table, config, ShardingConfig(n_shards=4))
        rng = np.random.default_rng(11)
        keys = query_keys(small_table, rng)

        expected = mono.lookup({"key": keys})
        got = sharded.lookup({"key": keys})
        np.testing.assert_array_equal(got.found, expected.found)
        for column in sharded.value_names:
            np.testing.assert_array_equal(
                got.values[column][got.found],
                expected.values[column][expected.found],
            )

    def test_misses_reported_per_key(self, sharded, small_table):
        keys = np.array([int(small_table.column("key")[0]), 10**8,
                         int(small_table.column("key")[5]), -4], dtype=np.int64)
        result = sharded.lookup({"key": keys})
        np.testing.assert_array_equal(result.found,
                                      [True, False, True, False])
        rows = list(result.rows())
        assert rows[1] is None and rows[3] is None
        assert rows[0] is not None and rows[2] is not None

    def test_hash_strategy_parity(self, small_table):
        config = fast_config(epochs=5)
        sharded = ShardedDeepMapping.fit(
            small_table, config, ShardingConfig(n_shards=3, strategy="hash"))
        rng = np.random.default_rng(2)
        keys = query_keys(small_table, rng)
        result = sharded.lookup({"key": keys})
        mono = DeepMapping.fit(small_table, config).lookup({"key": keys})
        np.testing.assert_array_equal(result.found, mono.found)

    def test_parallel_workers_match_serial(self, small_table):
        config = fast_config(epochs=5)
        serial = ShardedDeepMapping.fit(
            small_table, config,
            ShardingConfig(n_shards=4, max_workers=1))
        with ShardedDeepMapping.fit(
                small_table, config,
                ShardingConfig(n_shards=4, max_workers=4)) as parallel:
            rng = np.random.default_rng(5)
            keys = query_keys(small_table, rng)
            a = serial.lookup({"key": keys})
            b = parallel.lookup({"key": keys})
        np.testing.assert_array_equal(a.found, b.found)
        for column in serial.value_names:
            np.testing.assert_array_equal(a.values[column][a.found],
                                          b.values[column][b.found])

    def test_concurrent_lookups_share_one_executor(self, small_table):
        import threading

        store = ShardedDeepMapping.fit(
            small_table, fast_config(epochs=3),
            ShardingConfig(n_shards=4, max_workers=2))
        pools = []

        def probe():
            pools.append(store.executor._get_pool())

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(pool) for pool in pools}) == 1
        store.close()
        assert store.executor._pool is None

    def test_empty_batch(self, sharded):
        result = sharded.lookup({"key": np.empty(0, dtype=np.int64)})
        assert len(result) == 0
        assert set(result.values) == set(sharded.value_names)

    def test_single_shard_store_works(self, small_table):
        store = ShardedDeepMapping.fit(
            small_table, fast_config(epochs=5), ShardingConfig(n_shards=1))
        assert store.n_shards == 1
        key = int(small_table.column("key")[3])
        assert store.lookup_one(key=key) is not None

    def test_select_runs_transparently(self, sharded, small_table):
        key = int(small_table.column("key")[10])
        rows = select(sharded, ["*"], {"key": [key, 10**9]})
        assert rows[0] is not None and set(rows[0]) == set(sharded.value_names)
        assert rows[1] is None


class TestEmptyShards:
    def test_range_sharding_sparse_leading_column(self, two_group_table):
        store = ShardedDeepMapping.fit(
            two_group_table, fast_config(epochs=4),
            ShardingConfig(n_shards=4, strategy="range"))
        counts = store.shard_row_counts()
        assert sum(counts) == two_group_table.n_rows
        assert 0 in counts  # two distinct leading keys cannot fill 4 shards
        result = store.lookup(two_group_table.key_columns_dict())
        assert result.found.all()

    def test_empty_shards_round_trip_save_load(self, two_group_table, tmp_path):
        store = ShardedDeepMapping.fit(
            two_group_table, fast_config(epochs=4),
            ShardingConfig(n_shards=4, strategy="range"))
        path = str(tmp_path / "store")
        nbytes = store.save(path)
        assert nbytes > 0

        loaded = ShardedDeepMapping.load(path)
        assert loaded.shard_row_counts() == store.shard_row_counts()
        assert len(loaded) == len(store)
        # Keys owned by an empty shard are clean per-key misses.
        probe = {"grp": np.array([0, 1, 5], dtype=np.int64),
                 "sub": np.array([0, 149, 0], dtype=np.int64)}
        result = loaded.lookup(probe)
        np.testing.assert_array_equal(result.found, [True, True, False])

    def test_insert_materializes_empty_shard(self, two_group_table):
        store = ShardedDeepMapping.fit(
            two_group_table, fast_config(epochs=4),
            ShardingConfig(n_shards=4, strategy="range"))
        empty = store.shard_row_counts().index(0)
        # Find a key the router sends to the empty shard: leading keys route
        # by range, so scan candidates on both sides of the observed domain.
        target = None
        for grp in range(-5, 50):
            ordinal = int(store.router.route(
                {"grp": np.array([grp]), "sub": np.array([0])})[0])
            if ordinal == empty:
                target = grp
                break
        assert target is not None, "no candidate key routed to the empty shard"
        landed = store.insert({
            "grp": np.array([target], dtype=np.int64),
            "sub": np.array([0], dtype=np.int64),
            "status": np.array(["A"]),
        })
        assert landed >= 0
        assert store.shard_row_counts()[empty] == 1
        assert store.lookup_one(grp=target, sub=0) is not None


class TestModifications:
    def test_insert_lands_in_owning_shard(self, sharded, small_table):
        new_key = int(small_table.column("key").max()) + 17
        owner = int(sharded.router.route({"key": np.array([new_key])})[0])
        before = sharded.shard_row_counts()
        sharded.insert({
            "key": np.array([new_key], dtype=np.int64),
            **{c: np.array([small_table.column(c)[0]])
               for c in sharded.value_names},
        })
        after = sharded.shard_row_counts()
        assert after[owner] == before[owner] + 1
        unchanged = [i for i in range(sharded.n_shards) if i != owner]
        assert all(after[i] == before[i] for i in unchanged)
        assert sharded.lookup_one(key=new_key) is not None

    def test_delete_routes_and_ignores_absent(self, sharded, small_table):
        victims = small_table.column("key")[:5].astype(np.int64)
        n_before = len(sharded)
        deleted = sharded.delete({"key": np.concatenate(
            [victims, np.array([10**9], dtype=np.int64)])})
        assert deleted == 5
        assert len(sharded) == n_before - 5
        assert not sharded.lookup({"key": victims}).found.any()

    def test_update_changes_values_in_place(self, sharded, small_table):
        key = int(small_table.column("key")[42])
        row = {c: np.array([small_table.column(c)[0]])
               for c in sharded.value_names}
        sharded.update({"key": np.array([key], dtype=np.int64), **row})
        got = sharded.lookup_one(key=key)
        for column in sharded.value_names:
            assert got[column] == row[column][0]

    def test_update_missing_key_raises(self, sharded):
        with pytest.raises(KeyError):
            sharded.update({
                "key": np.array([10**9], dtype=np.int64),
                **{c: np.array([0]) for c in sharded.value_names},
            })

    def test_insert_is_all_or_nothing(self, sharded, small_table):
        """A batch with one existing key must not mutate any shard."""
        fresh = int(small_table.column("key").max()) + 101
        existing = int(small_table.column("key")[0])
        before = sharded.shard_row_counts()
        with pytest.raises(ValueError, match="already exist"):
            sharded.insert({
                "key": np.array([fresh, existing], dtype=np.int64),
                **{c: np.repeat(small_table.column(c)[:1], 2)
                   for c in sharded.value_names},
            })
        assert sharded.shard_row_counts() == before
        assert sharded.lookup_one(key=fresh) is None

    def test_insert_rejects_intra_batch_duplicates(self, sharded,
                                                   small_table):
        """A duplicated new key would fail inside one shard after others
        were mutated; the facade must reject it before touching anything."""
        low = int(small_table.column("key").min()) - 5
        high = int(small_table.column("key").max()) * 6
        before = sharded.shard_row_counts()
        with pytest.raises(ValueError, match="duplicate"):
            sharded.insert({
                "key": np.array([low, high, high], dtype=np.int64),
                **{c: np.repeat(small_table.column(c)[:1], 3)
                   for c in sharded.value_names},
            })
        assert sharded.shard_row_counts() == before
        assert sharded.lookup_one(key=low) is None
        assert sharded.lookup_one(key=high) is None

    def test_update_is_all_or_nothing(self, sharded, small_table):
        """A batch with one missing key must not mutate any shard."""
        key_a = int(small_table.column("key")[3])
        original = sharded.lookup_one(key=key_a)
        new_row = {c: np.repeat(small_table.column(c)[7:8], 2)
                   for c in sharded.value_names}
        with pytest.raises(KeyError, match="do not exist"):
            sharded.update({
                "key": np.array([key_a, 10**9], dtype=np.int64), **new_row,
            })
        assert sharded.lookup_one(key=key_a) == original


class TestPersistence:
    def test_round_trip_preserves_lookups(self, sharded, small_table,
                                          tmp_path):
        path = str(tmp_path / "store")
        sharded.save(path)
        assert os.path.isfile(os.path.join(path, "manifest.json"))

        loaded = ShardedDeepMapping.load(path)
        rng = np.random.default_rng(9)
        keys = query_keys(small_table, rng)
        a, b = sharded.lookup({"key": keys}), loaded.lookup({"key": keys})
        np.testing.assert_array_equal(a.found, b.found)
        for column in sharded.value_names:
            np.testing.assert_array_equal(a.values[column][a.found],
                                          b.values[column][b.found])

    def test_load_overrides_workers_and_budget(self, sharded, tmp_path):
        path = str(tmp_path / "store")
        sharded.save(path)
        loaded = ShardedDeepMapping.load(path, max_workers=2,
                                         pool_budget_bytes=1 << 20)
        assert loaded.sharding.effective_workers() == 2
        assert loaded.pool.budget_bytes == 1 << 20

    def test_size_report_aggregates_all_shards(self, sharded):
        report = sharded.size_report()
        per_shard = [shard.size_report() for shard in sharded.shards
                     if shard is not None]
        assert report.model_bytes == sum(r.model_bytes for r in per_shard)
        assert report.n_rows == len(sharded)
        assert report.total_bytes > 0

    def test_to_table_round_trips_content(self, two_group_table):
        store = ShardedDeepMapping.fit(
            two_group_table, fast_config(epochs=4),
            ShardingConfig(n_shards=4))
        table = store.to_table()
        assert table.n_rows == two_group_table.n_rows
        result = store.lookup(table.key_columns_dict())
        assert result.found.all()


class TestRebuildKeepsCoHosting:
    def test_out_of_domain_insert_keeps_shared_pool_and_prefix(self,
                                                               small_table):
        """A shard rebuild (out-of-domain insert) must stay on the store's
        shared pool and keep its partition-name prefix."""
        store = ShardedDeepMapping.fit(
            small_table, fast_config(epochs=4),
            ShardingConfig(n_shards=3, strategy="range"))
        prefixes = [shard.aux.name_prefix for shard in store.shards]
        far_key = int(small_table.column("key").max()) * 10 + 7
        owner = int(store.router.route({"key": np.array([far_key])})[0])
        store.insert({
            "key": np.array([far_key], dtype=np.int64),
            **{c: np.array([small_table.column(c)[0]])
               for c in store.value_names},
        })
        rebuilt = store.shards[owner]
        assert rebuilt.aux.pool is store.pool
        assert rebuilt.aux.name_prefix == prefixes[owner]
        assert store.lookup_one(key=far_key) is not None

    def test_explicit_rebuild_keeps_pool_and_prefix(self, small_table):
        from repro.storage import BufferPool

        pool = BufferPool()
        dm = DeepMapping.fit(small_table, fast_config(epochs=3), pool=pool,
                             aux_name_prefix="myprefix")
        dm.rebuild()
        assert dm.aux.pool is pool
        assert dm.aux.name_prefix == "myprefix"


class TestConfigValidation:
    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardingConfig(n_shards=0)

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            ShardingConfig(strategy="modulo")
