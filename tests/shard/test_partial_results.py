"""Partial-result fault isolation on the sharded store.

The contract under test: when one shard fails in ``on_shard_error=
"partial"`` mode, every key routed to a *healthy* shard comes back
bit-identical to the fully-healthy lookup, and every key routed to the
broken shard is marked in ``failed_mask`` with ``found == False``.
Exercised deterministically and as a hypothesis property over random
key subsets and random victim shards.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience import (DeadlineExceeded, PartialResult,
                              PartialResultError)
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.testing import break_shard

from ..core.conftest import fast_config


@pytest.fixture(scope="module")
def store():
    from repro.data import synthetic
    table = synthetic.multi_column(1200, "low", seed=3)
    built = ShardedDeepMapping.fit(
        table, fast_config(epochs=5),
        ShardingConfig(n_shards=4, strategy="range",
                       on_shard_error="partial"),
    )
    yield built
    built.close()


@pytest.fixture(scope="module")
def all_keys(store):
    # every key the store holds, in a shuffled order
    rng = np.random.default_rng(11)
    keys = np.arange(1200, dtype=np.int64)
    rng.shuffle(keys)
    return keys


class TestPartialContract:
    def test_healthy_lookup_returns_plain_result(self, store, all_keys):
        result = store.lookup({"key": all_keys[:200]})
        # zero-overhead healthy path: no PartialResult wrapper
        assert not isinstance(result, PartialResult)
        assert result.found.all()

    def test_broken_shard_marks_only_its_keys(self, store, all_keys):
        keys = all_keys[:400]
        want = store.lookup({"key": keys})
        restore = break_shard(store, 1)
        try:
            got = store.lookup({"key": keys})
        finally:
            restore()
        assert isinstance(got, PartialResult)
        assert not got.complete
        assert 0 < got.n_failed < keys.size
        failed = got.failed_mask
        # failed keys: marked not-found
        assert not got.found[failed].any()
        # healthy keys: bit-identical to the healthy run
        healthy = ~failed
        assert np.array_equal(got.found[healthy], want.found[healthy])
        for name in want.values:
            assert np.array_equal(got.values[name][healthy],
                                  want.values[name][healthy])
        assert 1 in got.shard_errors
        with pytest.raises(PartialResultError):
            got.raise_if_failed()

    def test_restore_heals_the_store(self, store, all_keys):
        restore = break_shard(store, 2)
        restore()
        result = store.lookup({"key": all_keys[:100]})
        assert not isinstance(result, PartialResult)
        assert result.found.all()

    def test_two_broken_shards_accumulate(self, store, all_keys):
        keys = all_keys
        restores = [break_shard(store, 0), break_shard(store, 3)]
        try:
            got = store.lookup({"key": keys})
        finally:
            for restore in restores:
                restore()
        assert isinstance(got, PartialResult)
        assert set(got.shard_errors) == {0, 3}

    def test_raise_mode_override_propagates(self, store, all_keys):
        restore = break_shard(store, 1)
        try:
            with pytest.raises(RuntimeError, match="injected failure"):
                store.lookup({"key": all_keys[:50]},
                             on_shard_error="raise")
        finally:
            restore()


class TestTimeoutClassification:
    def test_job_raised_timeout_is_a_shard_error_not_a_straggler(
            self, store, all_keys):
        # On 3.11+ concurrent.futures.TimeoutError aliases the builtin
        # TimeoutError, so a timeout raised *inside* a finished shard
        # job (e.g. a backend socket timeout) used to be misclassified
        # as a deadline straggler and wrapped in DeadlineExceeded.
        restore = break_shard(
            store, 1,
            exc_factory=lambda: TimeoutError("socket read timed out"))
        try:
            got = store.lookup({"key": all_keys[:400]})
        finally:
            restore()
        assert isinstance(got, PartialResult)
        error = got.shard_errors[1]
        assert isinstance(error, TimeoutError)
        assert not isinstance(error, DeadlineExceeded)
        assert "socket read timed out" in str(error)


class TestPartialParityProperty:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           victim=st.integers(min_value=0, max_value=3),
           n=st.integers(min_value=1, max_value=300))
    def test_healthy_positions_bit_identical(self, store, all_keys,
                                             seed, victim, n):
        rng = np.random.default_rng(seed)
        # mix of present and absent keys, with duplicates
        keys = rng.choice(np.arange(-50, 1250, dtype=np.int64), size=n)
        want = store.lookup({"key": keys})
        restore = break_shard(store, victim)
        try:
            got = store.lookup({"key": keys})
        finally:
            restore()
        failed = getattr(got, "failed_mask",
                         np.zeros(keys.size, dtype=bool))
        healthy = ~failed
        assert np.array_equal(got.found[healthy], want.found[healthy])
        for name in want.values:
            assert np.array_equal(got.values[name][healthy],
                                  want.values[name][healthy])
        # every failed position reports not-found, never a stale value
        assert not got.found[failed].any()
