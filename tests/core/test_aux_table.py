"""Tests for the auxiliary accuracy-assurance table T_aux."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AuxiliaryTable


def build_aux(n=500, codec="zstd", partition=2048):
    rng = np.random.default_rng(13)
    keys = np.sort(rng.choice(10_000, size=n, replace=False)).astype(np.int64)
    codes = {
        "a": rng.integers(0, 5, size=n),
        "b": rng.integers(0, 50, size=n),
    }
    aux = AuxiliaryTable(("a", "b"), codec=codec, target_partition_bytes=partition)
    aux.build(keys, codes)
    return aux, keys, codes


class TestBuildAndLookup:
    def test_all_rows_found(self):
        aux, keys, codes = build_aux()
        found, got = aux.lookup_batch(keys)
        assert found.all()
        np.testing.assert_array_equal(got["a"], codes["a"])
        np.testing.assert_array_equal(got["b"], codes["b"])

    def test_missing_keys_not_found(self):
        aux, keys, _ = build_aux()
        probe = np.setdiff1d(np.arange(10_000), keys)[:100]
        found, _ = aux.lookup_batch(probe)
        assert not found.any()

    def test_len(self):
        aux, keys, _ = build_aux(n=300)
        assert len(aux) == 300

    def test_empty_build(self):
        aux = AuxiliaryTable(("a",))
        aux.build(np.empty(0, dtype=np.int64), {"a": np.empty(0, dtype=np.int64)})
        assert len(aux) == 0
        found, _ = aux.lookup_batch(np.array([1, 2]))
        assert not found.any()

    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            AuxiliaryTable(())

    def test_codes_stored_with_minimal_dtype(self):
        aux, _, _ = build_aux()
        # Cardinality 5 / 50 codes must round-trip exactly despite narrowing.
        keys, codes = aux.scan()
        assert codes["a"].max() < 5
        assert codes["b"].max() < 50

    @pytest.mark.parametrize("codec", ["none", "zstd", "lzma"])
    def test_codecs(self, codec):
        aux, keys, codes = build_aux(codec=codec)
        found, got = aux.lookup_batch(keys[:50])
        assert found.all()
        np.testing.assert_array_equal(got["b"], codes["b"][:50])


class TestMutations:
    def test_add_new_key(self):
        aux, keys, _ = build_aux()
        new_key = np.array([10_001], dtype=np.int64)
        aux.add_batch(new_key, {"a": np.array([4]), "b": np.array([44])})
        found, got = aux.lookup_batch(new_key)
        assert found[0]
        assert got["a"][0] == 4 and got["b"][0] == 44

    def test_add_overwrites_existing(self):
        aux, keys, _ = build_aux()
        aux.add_batch(keys[:1], {"a": np.array([4]), "b": np.array([44])})
        found, got = aux.lookup_batch(keys[:1])
        assert found[0] and got["b"][0] == 44

    def test_remove_partition_row(self):
        aux, keys, _ = build_aux()
        aux.remove_batch(keys[:3])
        found, _ = aux.lookup_batch(keys[:3])
        assert not found.any()
        assert len(aux) == len(keys) - 3

    def test_remove_overlay_row(self):
        aux, keys, _ = build_aux()
        new_key = np.array([10_002], dtype=np.int64)
        aux.add_batch(new_key, {"a": np.array([1]), "b": np.array([1])})
        aux.remove_batch(new_key)
        found, _ = aux.lookup_batch(new_key)
        assert not found[0]

    def test_remove_absent_is_noop(self):
        aux, keys, _ = build_aux()
        aux.remove_batch(np.array([99_999], dtype=np.int64))
        assert len(aux) == len(keys)

    def test_readd_after_remove(self):
        aux, keys, _ = build_aux()
        aux.remove_batch(keys[:1])
        aux.add_batch(keys[:1], {"a": np.array([2]), "b": np.array([22])})
        found, got = aux.lookup_batch(keys[:1])
        assert found[0] and got["b"][0] == 22


class TestCompaction:
    def test_compact_preserves_content(self):
        aux, keys, codes = build_aux(n=200)
        aux.remove_batch(keys[:10])
        aux.add_batch(np.array([20_000], dtype=np.int64),
                      {"a": np.array([3]), "b": np.array([33])})
        before_keys, before_codes = aux.scan()
        aux.compact()
        after_keys, after_codes = aux.scan()
        np.testing.assert_array_equal(before_keys, after_keys)
        np.testing.assert_array_equal(before_codes["b"], after_codes["b"])

    def test_compact_clears_overlay(self):
        aux, keys, _ = build_aux(n=200)
        aux.add_batch(np.array([20_000], dtype=np.int64),
                      {"a": np.array([0]), "b": np.array([0])})
        aux.compact()
        assert len(aux._overlay) == 0
        found, _ = aux.lookup_batch(np.array([20_000]))
        assert found[0]

    def test_compact_empty_is_noop(self):
        aux, _, _ = build_aux(n=50)
        bytes_before = aux.stored_bytes()
        aux.compact()
        assert aux.stored_bytes() == bytes_before


class TestAccounting:
    def test_stored_bytes_includes_overlay(self):
        aux, keys, _ = build_aux(n=200)
        base = aux.stored_bytes()
        aux.add_batch(np.arange(30_000, 30_200, dtype=np.int64),
                      {"a": np.zeros(200, dtype=np.int64),
                       "b": np.zeros(200, dtype=np.int64)})
        assert aux.stored_bytes() > base

    def test_lzma_smaller_than_none(self):
        plain, _, _ = build_aux(n=2000, codec="none")
        packed, _, _ = build_aux(n=2000, codec="lzma")
        assert packed.stored_bytes() < plain.stored_bytes()

    def test_partition_count_scales(self):
        few, _, _ = build_aux(n=2000, partition=64 * 1024)
        many, _, _ = build_aux(n=2000, partition=1024)
        assert many.partition_count > few.partition_count


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_aux_matches_dict_model_under_random_ops(data):
    """Property: T_aux behaves like a dict under add/remove sequences."""
    rng_keys = st.integers(min_value=0, max_value=200)
    initial = data.draw(st.lists(rng_keys, min_size=1, max_size=40, unique=True))
    initial = np.array(sorted(initial), dtype=np.int64)
    aux = AuxiliaryTable(("v",), target_partition_bytes=256)
    aux.build(initial, {"v": initial % 7})
    model = {int(k): int(k) % 7 for k in initial}

    ops = data.draw(
        st.lists(
            st.tuples(st.sampled_from(["add", "remove"]), rng_keys,
                      st.integers(min_value=0, max_value=6)),
            max_size=30,
        )
    )
    for op, key, value in ops:
        if op == "add":
            aux.add_batch(np.array([key], dtype=np.int64),
                          {"v": np.array([value], dtype=np.int64)})
            model[key] = value
        else:
            aux.remove_batch(np.array([key], dtype=np.int64))
            model.pop(key, None)

    probe = np.arange(201, dtype=np.int64)
    found, codes = aux.lookup_batch(probe)
    for key in range(201):
        if key in model:
            assert found[key]
            assert codes["v"][key] == model[key]
        else:
            assert not found[key]
    assert len(aux) == len(model)
