"""The compiled read path: gating, parity with the reference path, and
engine invalidation across mutations and rebuilds."""

import dataclasses

import numpy as np
import pytest

from repro.core import DeepMapping, DeepMappingConfig
from repro.data import ColumnTable, synthetic
from repro.nn import CompiledSession
from repro.shard import ShardedDeepMapping, ShardingConfig

from .conftest import fast_config


@pytest.fixture
def gap_table():
    """Keys with gaps so in-domain misses exist (every third key)."""
    keys = np.arange(0, 3000, 3, dtype=np.int64)
    rng = np.random.default_rng(11)
    return ColumnTable(
        {"key": keys, "status": rng.choice(np.array(["A", "B", "C"]),
                                           size=keys.size)},
        key=("key",),
        name="gaps",
    )


def mixed_query(table, rng, n_hits=400, n_misses=400):
    """Present keys + in-domain absent keys + out-of-domain keys."""
    keys = table.column("key")
    hits = rng.choice(keys, size=n_hits, replace=True)
    misses = rng.choice(keys[:-1] + 1, size=n_misses, replace=True)  # gaps
    out_of_domain = np.array([keys.max() + 1000, -5], dtype=np.int64)
    query = np.concatenate([hits, misses, out_of_domain])
    rng.shuffle(query)
    return {"key": query}


class TestCompiledLookupParity:
    def test_compiled_and_reference_paths_agree(self, gap_table):
        """Same found mask and identical values on found rows."""
        compiled_dm = DeepMapping.fit(gap_table, fast_config())
        reference_dm = DeepMapping.fit(
            gap_table, fast_config(compiled_lookup=False))
        query = mixed_query(gap_table, np.random.default_rng(0))
        a = compiled_dm.lookup(query)
        b = reference_dm.lookup(query)
        np.testing.assert_array_equal(a.found, b.found)
        for column in a.values:
            np.testing.assert_array_equal(a.values[column][a.found],
                                          b.values[column][b.found])

    def test_compiled_lookup_is_lossless(self, gap_table):
        dm = DeepMapping.fit(gap_table, fast_config())
        result = dm.lookup({"key": gap_table.column("key")})
        assert result.found.all()
        np.testing.assert_array_equal(result.values["status"],
                                      gap_table.column("status"))

    def test_all_missing_batch_skips_inference(self, gap_table,
                                               monkeypatch):
        dm = DeepMapping.fit(gap_table, fast_config())
        calls = []
        engine = dm.compiled_session()
        original = engine.run
        monkeypatch.setattr(
            engine, "run",
            lambda *a, **k: (calls.append(1), original(*a, **k))[1])
        absent = {"key": gap_table.column("key")[:50] + 1}
        result = dm.lookup(absent)
        assert not result.found.any()
        assert calls == []  # existence gate short-circuits the model

    def test_empty_batch(self, gap_table):
        dm = DeepMapping.fit(gap_table, fast_config())
        result = dm.lookup({"key": np.empty(0, dtype=np.int64)})
        assert len(result) == 0

    def test_toggle_off_after_build_stays_lossless(self, gap_table):
        """T_aux covers the union of both predictors' errors, so flipping
        a compiled-built store to the reference path at query time keeps
        every answer identical (including post-mutation rows)."""
        dm = DeepMapping.fit(gap_table, fast_config(
            key_headroom_fraction=0.5))
        dm.insert({"key": np.array([3001, 3004], dtype=np.int64),
                   "status": np.array(["A", "B"])})
        dm.update({"key": np.array([3001], dtype=np.int64),
                   "status": np.array(["C"])})
        query = {"key": np.concatenate([gap_table.column("key"),
                                        np.array([3001, 3004])])}
        compiled = dm.lookup(query)
        dm.config = dataclasses.replace(dm.config, compiled_lookup=False)
        reference = dm.lookup(query)
        np.testing.assert_array_equal(compiled.found, reference.found)
        assert compiled.found.all()
        np.testing.assert_array_equal(compiled.values["status"],
                                      reference.values["status"])

    def test_value_column_named_shared(self):
        """Internal scratch scopes must not collide with task names."""
        keys = np.arange(0, 600, 2, dtype=np.int64)
        rng = np.random.default_rng(13)
        table = ColumnTable(
            {"key": keys,
             "shared": rng.choice(np.array(["x", "y"]), size=keys.size),
             "head": (keys % 4).astype(np.int64)},
            key=("key",),
        )
        dm = DeepMapping.fit(table, fast_config())
        result = dm.lookup({"key": keys})
        assert result.found.all()
        np.testing.assert_array_equal(result.values["shared"],
                                      table.column("shared"))
        np.testing.assert_array_equal(result.values["head"],
                                      table.column("head"))

    def test_reference_toggle_is_respected(self, gap_table, monkeypatch):
        dm = DeepMapping.fit(gap_table, fast_config(compiled_lookup=False))
        def boom(*a, **k):
            raise AssertionError("compiled engine must not be used")
        monkeypatch.setattr(DeepMapping, "compiled_session", boom)
        result = dm.lookup({"key": gap_table.column("key")[:20]})
        assert result.found.all()


class TestEngineLifecycle:
    def test_fit_prewarms_engine(self, gap_table):
        dm = DeepMapping.fit(gap_table, fast_config())
        assert isinstance(dm._compiled, CompiledSession)
        assert dm.compiled_session() is dm._compiled

    def test_engine_cached_across_lookups(self, gap_table):
        dm = DeepMapping.fit(gap_table, fast_config())
        engine = dm.compiled_session()
        dm.lookup({"key": gap_table.column("key")[:10]})
        assert dm.compiled_session() is engine

    def test_rebuild_recompiles_engine(self, gap_table):
        dm = DeepMapping.fit(gap_table, fast_config())
        stale = dm.compiled_session()
        dm.rebuild()
        fresh = dm.compiled_session()
        assert fresh is not stale
        assert fresh.session is dm.session
        result = dm.lookup({"key": gap_table.column("key")})
        assert result.found.all()
        np.testing.assert_array_equal(result.values["status"],
                                      gap_table.column("status"))

    def test_insert_triggered_retrain_recompiles(self, gap_table):
        # A tiny retrain threshold makes the first insert trip a rebuild.
        dm = DeepMapping.fit(
            gap_table,
            fast_config(retrain_threshold_bytes=1,
                        key_headroom_fraction=0.5),
        )
        stale = dm.compiled_session()
        new_keys = np.array([3001, 3004], dtype=np.int64)
        dm.insert({"key": new_keys, "status": np.array(["A", "B"])})
        assert dm.compiled_session() is not stale
        result = dm.lookup({"key": new_keys})
        assert result.found.all()
        np.testing.assert_array_equal(result.values["status"],
                                      np.array(["A", "B"]))

    def test_stale_engine_detected_without_explicit_reset(self, gap_table):
        # Belt and braces: even if an engine survives a session swap, the
        # identity check in compiled_session() recompiles.
        dm = DeepMapping.fit(gap_table, fast_config())
        stale = dm.compiled_session()
        other = DeepMapping.fit(gap_table, fast_config(seed=5))
        dm.session = other.session
        dm.key_encoder = other.key_encoder
        assert dm.compiled_session() is not stale

    def test_save_load_roundtrip_keeps_compiled_lookups(self, gap_table,
                                                        tmp_path):
        dm = DeepMapping.fit(gap_table, fast_config())
        path = str(tmp_path / "store.dm")
        dm.save(path)
        clone = DeepMapping.load(path)
        result = clone.lookup({"key": gap_table.column("key")})
        assert result.found.all()
        np.testing.assert_array_equal(result.values["status"],
                                      gap_table.column("status"))
        assert isinstance(clone.compiled_session(), CompiledSession)


class TestShardedCompiledEngines:
    def test_fit_compiles_one_engine_per_live_shard(self):
        table = synthetic.single_column(2000, "high", seed=3)
        store = ShardedDeepMapping.fit(
            table, fast_config(), ShardingConfig(n_shards=4))
        live = [s for s in store.shards if s is not None]
        assert all(isinstance(s._compiled, CompiledSession) for s in live)

    def test_sharded_lookup_matches_reference_path(self):
        table = synthetic.single_column(2000, "high", seed=3)
        compiled_store = ShardedDeepMapping.fit(
            table, fast_config(), ShardingConfig(n_shards=4))
        reference_store = ShardedDeepMapping.fit(
            table, fast_config(compiled_lookup=False),
            ShardingConfig(n_shards=4))
        rng = np.random.default_rng(1)
        keys = table.column("key")
        query = {"key": np.concatenate([
            rng.choice(keys, size=500),
            np.array([keys.max() + 7, keys.max() + 9999]),
        ])}
        a = compiled_store.lookup(query)
        b = reference_store.lookup(query)
        np.testing.assert_array_equal(a.found, b.found)
        for column in a.values:
            np.testing.assert_array_equal(a.values[column][a.found],
                                          b.values[column][b.found])
        compiled_store.close()
        reference_store.close()

    def test_load_compiles_engines(self, tmp_path):
        table = synthetic.single_column(1500, "high", seed=4)
        store = ShardedDeepMapping.fit(
            table, fast_config(), ShardingConfig(n_shards=2))
        store.save(str(tmp_path / "store.dms"))
        store.close()
        clone = ShardedDeepMapping.load(str(tmp_path / "store.dms"))
        live = [s for s in clone.shards if s is not None]
        assert live and all(isinstance(s._compiled, CompiledSession)
                            for s in live)
        assert clone.lookup({"key": table.column("key")}).found.all()
        clone.close()

    def test_compile_engines_noop_when_disabled(self):
        table = synthetic.single_column(1000, "high", seed=5)
        store = ShardedDeepMapping.fit(
            table, fast_config(compiled_lookup=False),
            ShardingConfig(n_shards=2))
        assert store.compile_engines() == 0
        store.close()


def test_config_pickled_without_flag_defaults_to_compiled(gap_table):
    """Configs saved before the knob existed must load as compiled-on."""
    dm = DeepMapping.fit(gap_table, fast_config())
    legacy = dataclasses.replace(dm.config)
    del legacy.__dict__["compiled_lookup"]
    dm.config = legacy
    assert dm._use_compiled()
    assert dm.lookup({"key": gap_table.column("key")[:10]}).found.all()
