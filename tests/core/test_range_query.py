"""Tests for the range-query extensions (paper Sec. IV-E)."""

import numpy as np
import pytest

from repro.core import DeepMapping, build_range_view, lookup_range
from repro.data import ColumnTable, synthetic, tpch

from .conftest import fast_config


@pytest.fixture(scope="module")
def mapping():
    table = synthetic.single_column(600, "high")
    return table, DeepMapping.fit(table, fast_config(epochs=40))


class TestLookupRange:
    def test_exact_range_contents(self, mapping):
        table, dm = mapping
        keys, result = lookup_range(dm, {"key": 100}, {"key": 149})
        assert keys["key"].tolist() == list(range(100, 150))
        assert result.found.all()
        np.testing.assert_array_equal(
            result.values["value"], table.column("value")[100:150]
        )

    def test_empty_range(self, mapping):
        _, dm = mapping
        keys, result = lookup_range(dm, {"key": 5000}, {"key": 6000})
        assert keys["key"].size == 0
        assert len(result) == 0

    def test_range_respects_deletions(self, mapping):
        table = synthetic.single_column(200, "high", seed=5)
        dm = DeepMapping.fit(table, fast_config(epochs=20))
        dm.delete({"key": np.arange(10, 20)})
        keys, _ = lookup_range(dm, {"key": 0}, {"key": 29})
        assert keys["key"].size == 20
        assert not any(10 <= k < 20 for k in keys["key"].tolist())

    def test_missing_bounds_rejected(self, mapping):
        _, dm = mapping
        with pytest.raises(KeyError):
            lookup_range(dm, {"key": 0}, {})

    def test_composite_key_range(self):
        table = tpch.generate("lineitem", scale=0.02)
        dm = DeepMapping.fit(table, fast_config(epochs=2))
        low = {"l_orderkey": 1, "l_linenumber": 1}
        high = {"l_orderkey": 40, "l_linenumber": 7}
        keys, result = lookup_range(dm, low, high)
        assert result.found.all()
        assert (keys["l_orderkey"] <= 40).all()


class TestRangeView:
    def test_view_answers_sampled_ranges(self, mapping):
        _, dm = mapping
        ranges = [(0, 63), (64, 127), (128, 191), (192, 255)]
        view = build_range_view(dm, "value", ranges,
                                config=fast_config(epochs=30))
        probe = {"range_low": np.array([64]), "range_high": np.array([127])}
        result = view.lookup(probe)
        assert result.found.all()
        # The mode over a high-correlation block equals its dominant value.
        _, exact = lookup_range(dm, {"key": 64}, {"key": 127})
        values, counts = np.unique(exact.values["value"], return_counts=True)
        assert result.values["mode_value"][0] == values[counts.argmax()]

    def test_unsampled_range_is_null(self, mapping):
        _, dm = mapping
        view = build_range_view(dm, "value", [(0, 63)],
                                config=fast_config(epochs=10))
        probe = {"range_low": np.array([1]), "range_high": np.array([50])}
        assert not view.lookup(probe).found.any()

    def test_unknown_column_rejected(self, mapping):
        _, dm = mapping
        with pytest.raises(KeyError):
            build_range_view(dm, "nope", [(0, 1)])

    def test_empty_ranges_rejected(self, mapping):
        _, dm = mapping
        with pytest.raises(ValueError):
            build_range_view(dm, "value", [])
