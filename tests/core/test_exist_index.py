"""Tests for the existence index V_exist."""

import numpy as np
import pytest

from repro.core import ExistenceIndex


class TestBasics:
    def test_initially_empty(self):
        index = ExistenceIndex(100)
        assert index.count() == 0
        assert not index.test_batch(np.arange(100)).any()

    def test_set_and_test(self):
        index = ExistenceIndex(100)
        index.set_batch(np.array([3, 50, 99]))
        assert index.test_batch(np.array([3, 50, 99])).all()
        assert not index.test_batch(np.array([4, 51])).any()
        assert index.count() == 3

    def test_clear(self):
        index = ExistenceIndex(100)
        index.set_batch(np.arange(10))
        index.clear_batch(np.array([0, 5]))
        assert index.count() == 8
        assert not index.test_batch(np.array([0, 5])).any()

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            ExistenceIndex(0)

    def test_existing_keys_sorted(self):
        index = ExistenceIndex(100)
        index.set_batch(np.array([42, 7, 99]))
        assert index.existing_keys().tolist() == [7, 42, 99]


class TestSerialization:
    def test_roundtrip(self):
        index = ExistenceIndex(1000)
        index.set_batch(np.array([1, 500, 999]))
        clone = ExistenceIndex.from_bytes(index.to_bytes())
        assert clone.count() == 3
        assert clone.domain_size == 1000
        assert clone.test_batch(np.array([500]))[0]

    def test_stored_bytes_compressed(self):
        # A mostly-empty vector compresses well below its packed size.
        index = ExistenceIndex(1_000_000)
        index.set_batch(np.arange(100))
        assert index.stored_bytes() < index.nbytes / 10

    def test_random_bits_compress_worse_than_clustered(self):
        """The paper notes V_exist decompression randomness (Sec. V-C):
        scattered bits are less compressible than runs."""
        rng = np.random.default_rng(4)
        clustered = ExistenceIndex(80_000)
        clustered.set_batch(np.arange(40_000))
        scattered = ExistenceIndex(80_000)
        scattered.set_batch(rng.choice(80_000, size=40_000, replace=False))
        assert clustered.stored_bytes() < scattered.stored_bytes()
