"""Tests for insert/delete/update (paper Algorithms 3-5) and retraining."""

import numpy as np
import pytest

from repro.core import DeepMapping, ModificationTracker
from repro.data import ColumnTable, synthetic

from .conftest import fast_config


def fresh_mapping(n=800, correlation="high", headroom=1.0, **cfg):
    table = synthetic.multi_column(n, correlation)
    config = fast_config(key_headroom_fraction=headroom, **cfg)
    return table, DeepMapping.fit(table, config)


def batch_columns(table):
    return {name: table.column(name) for name in table.column_names}


class TestInsert:
    def test_inserted_rows_become_visible(self):
        table, dm = fresh_mapping()
        batch = synthetic.insert_batch(table, 100, "high")
        dm.insert(batch)
        result = dm.lookup({"key": batch.column("key")})
        assert result.found.all()
        for col in batch.value_columns:
            np.testing.assert_array_equal(result.values[col], batch.column(col))

    def test_insert_correlated_data_mostly_generalizes(self):
        """Paper Table III: a model trained on high-correlation data absorbs
        same-distribution inserts with little auxiliary growth."""
        table, dm = fresh_mapping(n=2000, correlation="high", epochs=80)
        batch = synthetic.insert_batch(table, 400, "high")
        landed = dm.insert(batch)
        assert landed < 400  # some rows predicted correctly => skipped aux

    def test_insert_uncorrelated_data_fills_aux(self):
        table, dm = fresh_mapping(n=800, correlation="high", epochs=60)
        batch = synthetic.insert_batch(table, 200, "low")
        aux_before = len(dm.aux)
        landed = dm.insert(batch)
        assert landed > 100
        assert len(dm.aux) >= aux_before + landed - 5

    def test_duplicate_insert_rejected(self):
        table, dm = fresh_mapping()
        with pytest.raises(ValueError, match="already exist"):
            dm.insert(batch_columns(table.head(3)))

    def test_insert_requires_all_columns(self):
        table, dm = fresh_mapping()
        with pytest.raises(ValueError, match="columns"):
            dm.insert({"key": np.array([99_999])})

    def test_out_of_domain_insert_triggers_rebuild(self):
        table, dm = fresh_mapping(headroom=0.0)
        batch = synthetic.insert_batch(table, 50, "high")
        rebuilds_before = dm.tracker.total_retrains
        dm.insert(batch)
        assert dm.tracker.total_retrains == rebuilds_before + 1
        assert dm.lookup({"key": batch.column("key")}).found.all()
        assert len(dm) == table.n_rows + 50

    def test_insert_with_new_vocabulary_value(self):
        keys = np.arange(100, dtype=np.int64)
        table = ColumnTable(
            {"key": keys, "status": np.where(keys % 2 == 0, "EVEN", "ODD")},
            key=("key",),
        )
        dm = DeepMapping.fit(table, fast_config(key_headroom_fraction=1.0))
        dm.insert({"key": np.array([150]), "status": np.array(["BRAND-NEW"])})
        assert dm.lookup_one(key=150)["status"] == "BRAND-NEW"


class TestDelete:
    def test_deleted_keys_become_null(self):
        table, dm = fresh_mapping()
        victims = table.column("key")[:20]
        deleted = dm.delete({"key": victims})
        assert deleted == 20
        assert not dm.lookup({"key": victims}).found.any()
        assert len(dm) == table.n_rows - 20

    def test_delete_absent_keys_is_noop(self):
        table, dm = fresh_mapping()
        assert dm.delete({"key": np.array([10**7])}) == 0
        assert len(dm) == table.n_rows

    def test_delete_removes_aux_rows(self):
        table, dm = fresh_mapping(correlation="low", epochs=3)
        aux_before = len(dm.aux)
        assert aux_before > 0
        victims = table.column("key")[:50]
        dm.delete({"key": victims})
        assert len(dm.aux) < aux_before

    def test_delete_accepts_plain_array(self):
        table, dm = fresh_mapping()
        dm.delete(table.column("key")[:5])
        assert not dm.lookup({"key": table.column("key")[:5]}).found.any()

    def test_survivors_unaffected(self):
        table, dm = fresh_mapping()
        dm.delete({"key": table.column("key")[:100]})
        rest = table.column("key")[100:]
        result = dm.lookup({"key": rest})
        assert result.found.all()
        for col in table.value_columns:
            np.testing.assert_array_equal(
                result.values[col], table.column(col)[100:]
            )


class TestUpdate:
    def test_updated_values_visible(self):
        table, dm = fresh_mapping()
        rows = {
            "key": table.column("key")[:3],
            "v0": np.array([1, 1, 1]),
            "v1": np.array([2, 2, 2]),
            "v2": np.array([3, 3, 3]),
            "v3": np.array([0, 0, 0]),
        }
        dm.update(rows)
        result = dm.lookup({"key": rows["key"]})
        assert result.found.all()
        np.testing.assert_array_equal(result.values["v1"], rows["v1"])

    def test_update_to_model_predicted_value_drops_aux_row(self):
        """Algorithm 5: when the new value matches the model's prediction,
        any existing T_aux entry is removed instead of updated."""
        table, dm = fresh_mapping(n=1500, correlation="high", epochs=80)
        keys = table.column("key")
        predicted = dm.session.run(dm.key_encoder.encode(
            dm.key_codec.flatten({"key": keys})))
        # Find a row the model predicts correctly.
        labels = {t: dm.fdecode.encoders[t].encode(table.column(t))
                  for t in dm.value_names}
        correct = np.ones(keys.size, dtype=bool)
        for t in dm.value_names:
            correct &= predicted[t] == labels[t]
        assert correct.any()
        idx = int(np.flatnonzero(correct)[0])
        # Force the row into aux with a different value, then restore it.
        original = {t: table.column(t)[idx: idx + 1] for t in dm.value_names}
        twisted = {t: np.array([(int(original[t][0]) + 1) % 2])
                   for t in dm.value_names}
        dm.update({"key": keys[idx: idx + 1], **twisted})
        assert dm.aux.contains(int(dm.key_codec.flatten(
            {"key": keys[idx: idx + 1]})[0]))
        dm.update({"key": keys[idx: idx + 1], **original})
        assert not dm.aux.contains(int(dm.key_codec.flatten(
            {"key": keys[idx: idx + 1]})[0]))

    def test_update_missing_key_rejected(self):
        table, dm = fresh_mapping()
        with pytest.raises(KeyError, match="do not exist"):
            dm.update({
                "key": np.array([10**7]),
                "v0": np.array([0]), "v1": np.array([0]),
                "v2": np.array([0]), "v3": np.array([0]),
            })


class TestDictModelEquivalence:
    def test_interleaved_operations_match_dict_replay(self):
        """Invariant 3 from DESIGN.md: any interleaving of modifications
        leaves the structure equivalent to a plain dict replay."""
        table, dm = fresh_mapping(n=400, epochs=30)
        model = {int(k): tuple(int(table.column(f"v{j}")[i]) for j in range(4))
                 for i, k in enumerate(table.column("key"))}
        rng = np.random.default_rng(3)

        # Delete some rows.
        victims = rng.choice(table.column("key"), size=40, replace=False)
        dm.delete({"key": victims})
        for k in victims:
            model.pop(int(k), None)

        # Insert fresh rows.
        batch = synthetic.insert_batch(table, 60, "low", seed=7)
        dm.insert(batch)
        for i, k in enumerate(batch.column("key")):
            model[int(k)] = tuple(int(batch.column(f"v{j}")[i]) for j in range(4))

        # Update surviving rows.
        survivors = np.array(sorted(model))[:30]
        new_vals = {f"v{j}": rng.integers(0, 2, size=30) for j in range(4)}
        dm.update({"key": survivors, **new_vals})
        for i, k in enumerate(survivors):
            model[int(k)] = tuple(int(new_vals[f"v{j}"][i]) for j in range(4))

        probe = np.arange(0, int(max(model) + 10), dtype=np.int64)
        result = dm.lookup({"key": probe})
        for i, k in enumerate(probe.tolist()):
            if k in model:
                assert result.found[i], k
                got = tuple(int(result.values[f"v{j}"][i]) for j in range(4))
                assert got == model[k], k
            else:
                assert not result.found[i], k


class TestRetrainTrigger:
    def test_tracker_thresholds(self):
        tracker = ModificationTracker(threshold_bytes=100)
        tracker.record(60)
        assert not tracker.should_retrain()
        tracker.record(50)
        assert tracker.should_retrain()
        tracker.mark_rebuilt()
        assert not tracker.should_retrain()
        assert tracker.total_retrains == 1

    def test_tracker_disabled(self):
        tracker = ModificationTracker(None)
        tracker.record(10**12)
        assert not tracker.should_retrain()

    def test_tracker_validation(self):
        with pytest.raises(ValueError):
            ModificationTracker(0)

    def test_retrain_fires_and_preserves_content(self):
        table, dm = fresh_mapping(n=400, retrain_threshold_bytes=1)
        batch = synthetic.insert_batch(table, 30, "high")
        dm.insert(batch)  # any modification exceeds the 1-byte threshold
        assert dm.tracker.total_retrains >= 1
        result = dm.lookup({"key": batch.column("key")})
        assert result.found.all()
        assert dm.lookup({"key": table.column("key")}).found.all()

    def test_no_retrain_without_threshold(self):
        table, dm = fresh_mapping(n=400)
        dm.insert(synthetic.insert_batch(table, 30, "high"))
        assert dm.tracker.total_retrains == 0


class TestTrackerPersistence:
    def test_state_round_trip(self):
        tracker = ModificationTracker(threshold_bytes=500)
        tracker.record(120, n_ops=3)
        tracker.mark_rebuilt()
        tracker.record(77, n_ops=2)
        restored = ModificationTracker.from_state(tracker.to_state())
        assert restored.threshold_bytes == 500
        assert restored.bytes_since_build == 77
        assert restored.ops_since_build == 2
        assert restored.total_retrains == 1

    def test_counters_survive_save_load(self, tmp_path):
        """Sec. IV-D: the retrain threshold must not silently restart
        after every process restart."""
        table, dm = fresh_mapping(n=400, retrain_threshold_bytes=10**9)
        dm.insert(synthetic.insert_batch(table, 40, "high"))
        assert dm.tracker.bytes_since_build > 0
        path = str(tmp_path / "store.dm")
        dm.save(path)

        loaded = DeepMapping.load(path)
        assert loaded.tracker.bytes_since_build == dm.tracker.bytes_since_build
        assert loaded.tracker.ops_since_build == dm.tracker.ops_since_build
        assert loaded.tracker.total_retrains == dm.tracker.total_retrains
        # Threshold comes from the config, counters from the payload.
        assert loaded.tracker.threshold_bytes == 10**9

    def test_accumulation_crosses_a_restart(self, tmp_path):
        """Modifications before and after a save/load both count toward
        one threshold."""
        table, dm = fresh_mapping(n=400, retrain_threshold_bytes=10**9)
        dm.insert(synthetic.insert_batch(table, 20, "high"))
        before = dm.tracker.bytes_since_build
        path = str(tmp_path / "store.dm")
        dm.save(path)
        loaded = DeepMapping.load(path)
        grown = loaded.to_table()
        loaded.insert(synthetic.insert_batch(grown, 20, "high"))
        assert loaded.tracker.bytes_since_build > before

    def test_domain_rebuild_preserves_tracker_history(self):
        """An out-of-domain insert rebuilds the structure wholesale; the
        modification history must survive the swap."""
        table, dm = fresh_mapping(n=300, headroom=1.0,
                                  retrain_threshold_bytes=10**9)
        dm.insert(synthetic.insert_batch(table, 10, "high"))
        tracker = dm.tracker
        far_key = int(table.column("key").max()) * 10 + 3
        dm.insert({
            "key": np.array([far_key], dtype=np.int64),
            **{c: np.array([table.column(c)[0]])
               for c in dm.value_names},
        })
        assert dm.tracker is tracker  # same logical history object
        assert dm.tracker.total_retrains == 1


class TestAuxRatioRetrain:
    def test_aux_ratio_triggers_rebuild(self):
        """With retrain_aux_ratio set, a flood of mispredicted rows
        (low-correlation inserts) forces a retrain."""
        table, dm = fresh_mapping(n=400, correlation="low", headroom=1.0,
                                  retrain_aux_ratio=0.05, epochs=40)
        batch = synthetic.insert_batch(table, 200, "low")
        dm.insert(batch)
        assert dm.tracker.total_retrains >= 1
        assert dm.lookup({"key": batch.column("key")}).found.all()

    def test_tiny_store_never_ratio_thrashes(self):
        """Below the row floor, the ratio trigger stays quiet even when
        the aux table dominates — a tiny noise table would otherwise
        rebuild on every batch."""
        table, dm = fresh_mapping(n=40, correlation="low", headroom=2.0,
                                  retrain_aux_ratio=0.01, epochs=3)
        dm.insert(synthetic.insert_batch(table, 5, "low"))
        assert dm.tracker.total_retrains == 0

    def test_auto_rebuild_flag_suppresses_inline_retrain(self):
        table, dm = fresh_mapping(n=300, retrain_threshold_bytes=1)
        dm.auto_rebuild = False
        dm.insert(synthetic.insert_batch(table, 20, "high"))
        assert dm.tracker.total_retrains == 0
        assert dm.tracker.bytes_since_build > 0  # still records

    def test_config_validation(self):
        from repro.core import DeepMappingConfig
        with pytest.raises(ValueError):
            DeepMappingConfig(retrain_aux_ratio=0.0)
        with pytest.raises(ValueError):
            DeepMappingConfig(retrain_aux_ratio=1.5)
