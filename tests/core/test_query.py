"""Tests for the SELECT layer (the paper's SQL point-query framing)."""

import numpy as np
import pytest

from repro.core import DeepMapping
from repro.core.query import QueryError, run_select, select
from repro.data import ColumnTable, tpch

from .conftest import fast_config


@pytest.fixture(scope="module")
def orders_dm():
    table = tpch.generate("orders", scale=0.1, seed=30)
    return table, DeepMapping.fit(table, fast_config(epochs=5))


class TestSelect:
    def test_projection(self, orders_dm):
        table, dm = orders_dm
        key = int(table.column("o_orderkey")[0])
        rows = select(dm, ["o_orderstatus"], {"o_orderkey": key})
        assert len(rows) == 1
        assert rows[0] == {"o_orderstatus": table.column("o_orderstatus")[0]}

    def test_star_projects_all_value_columns(self, orders_dm):
        table, dm = orders_dm
        key = int(table.column("o_orderkey")[0])
        rows = select(dm, ["*"], {"o_orderkey": key})
        assert set(rows[0]) == set(table.value_columns)

    def test_absent_key_is_none(self, orders_dm):
        _, dm = orders_dm
        assert select(dm, ["*"], {"o_orderkey": 3}) == [None]

    def test_batch_where(self, orders_dm):
        table, dm = orders_dm
        keys = table.column("o_orderkey")[:5]
        rows = select(dm, ["o_year"], {"o_orderkey": keys})
        assert len(rows) == 5
        assert all(r is not None for r in rows)

    def test_unknown_column_rejected(self, orders_dm):
        _, dm = orders_dm
        with pytest.raises(QueryError, match="unknown column"):
            select(dm, ["o_totalprice"], {"o_orderkey": 1})

    def test_where_must_cover_key(self, orders_dm):
        _, dm = orders_dm
        with pytest.raises(QueryError, match="WHERE"):
            select(dm, ["*"], {"o_year": 1995})

    def test_ragged_batch_rejected(self):
        table = tpch.generate("lineitem", scale=0.02)
        dm = DeepMapping.fit(table, fast_config(epochs=2))
        with pytest.raises(QueryError, match="equal lengths"):
            select(dm, ["*"], {"l_orderkey": [1, 2],
                               "l_linenumber": [1]})


class TestRunSelect:
    def test_paper_example_shape(self, orders_dm):
        """The paper's motivating query: SELECT Order_Type FROM Orders
        WHERE Order_ID = <k>."""
        table, dm = orders_dm
        key = int(table.column("o_orderkey")[10])
        rows = run_select(
            dm, f"SELECT o_orderstatus FROM orders WHERE o_orderkey = {key}")
        assert rows[0]["o_orderstatus"] == table.column("o_orderstatus")[10]

    def test_from_clause_optional(self, orders_dm):
        table, dm = orders_dm
        key = int(table.column("o_orderkey")[0])
        rows = run_select(dm, f"select o_year where o_orderkey = {key}")
        assert rows[0]["o_year"] == table.column("o_year")[0]

    def test_multi_column_projection(self, orders_dm):
        table, dm = orders_dm
        key = int(table.column("o_orderkey")[0])
        rows = run_select(
            dm, f"SELECT o_year, o_orderstatus WHERE o_orderkey = {key}")
        assert set(rows[0]) == {"o_year", "o_orderstatus"}

    def test_composite_key_with_and(self):
        table = tpch.generate("lineitem", scale=0.02)
        dm = DeepMapping.fit(table, fast_config(epochs=2))
        ok, ln = int(table.column("l_orderkey")[0]), int(
            table.column("l_linenumber")[0])
        rows = run_select(
            dm,
            f"SELECT l_shipmode WHERE l_orderkey = {ok} AND l_linenumber = {ln}",
        )
        assert rows[0]["l_shipmode"] == table.column("l_shipmode")[0]

    def test_trailing_semicolon(self, orders_dm):
        table, dm = orders_dm
        key = int(table.column("o_orderkey")[0])
        rows = run_select(dm, f"SELECT o_year WHERE o_orderkey = {key};")
        assert rows[0] is not None

    def test_malformed_statement_rejected(self, orders_dm):
        _, dm = orders_dm
        with pytest.raises(QueryError):
            run_select(dm, "DELETE FROM orders")
        with pytest.raises(QueryError):
            run_select(dm, "SELECT * WHERE o_orderkey > 5")
        with pytest.raises(QueryError):
            run_select(dm, "SELECT * WHERE o_orderkey = abc")
        with pytest.raises(QueryError, match="duplicate"):
            run_select(dm, "SELECT * WHERE o_orderkey = 1 AND o_orderkey = 2")
