"""Tests for the command-line interface."""

import os

import numpy as np
import pytest

from repro.cli import load_dataset, main


def build_args(tmp_path, dataset="synthetic:multi-high", scale=0.05,
               extra=()):
    out = str(tmp_path / "structure.dm")
    argv = ["build", "--dataset", dataset, "--scale", str(scale),
            "--out", out, "--epochs", "15", "--batch-size", "256"]
    argv.extend(extra)
    return argv, out


class TestLoadDataset:
    def test_tpch(self):
        table = load_dataset("tpch:orders", scale=0.05, seed=1)
        assert table.name == "orders"

    def test_tpcds(self):
        table = load_dataset("tpcds:catalog_returns", scale=0.1, seed=1)
        assert table.name == "catalog_returns"

    @pytest.mark.parametrize("name,expected", [
        ("single-low", "synthetic_single_low"),
        ("multi-high", "synthetic_multi_high"),
    ])
    def test_synthetic(self, name, expected):
        table = load_dataset(f"synthetic:{name}", scale=0.05, seed=1)
        assert table.name == expected

    def test_crop(self):
        table = load_dataset("crop:raster", scale=0.05, seed=1)
        assert table.key == ("lat", "lon")

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            load_dataset("mysql:orders", scale=1.0, seed=0)

    def test_unknown_synthetic(self):
        with pytest.raises(SystemExit):
            load_dataset("synthetic:weird-high", scale=1.0, seed=0)


class TestBuildInfoQuery:
    def test_build_saves_structure(self, tmp_path, capsys):
        argv, out = build_args(tmp_path)
        assert main(argv) == 0
        assert os.path.exists(out)
        stdout = capsys.readouterr().out
        assert "hybrid:" in stdout and "saved" in stdout

    def test_info_reports_components(self, tmp_path, capsys):
        argv, out = build_args(tmp_path)
        main(argv)
        capsys.readouterr()
        assert main(["info", out]) == 0
        stdout = capsys.readouterr().out
        assert "model:" in stdout
        assert "aux table:" in stdout
        assert "exist vector:" in stdout

    def test_query_hits_and_misses(self, tmp_path, capsys):
        argv, out = build_args(tmp_path)
        main(argv)
        capsys.readouterr()
        assert main(["query", out, "--key", "key=0",
                     "--key", "key=99999"]) == 0
        stdout = capsys.readouterr().out
        assert "(key=0) ->" in stdout
        assert "NULL" in stdout

    def test_query_rejects_unknown_column(self, tmp_path, capsys):
        argv, out = build_args(tmp_path)
        main(argv)
        with pytest.raises(SystemExit):
            main(["query", out, "--key", "nope=1"])

    def test_query_requires_keys(self, tmp_path):
        argv, out = build_args(tmp_path)
        main(argv)
        with pytest.raises(SystemExit):
            main(["query", out])

    def test_composite_key_query(self, tmp_path, capsys):
        out = str(tmp_path / "crop.dm")
        main(["build", "--dataset", "crop:raster", "--scale", "0.02",
              "--out", out, "--epochs", "10", "--batch-size", "256"])
        capsys.readouterr()
        main(["query", out, "--key", "lat=0", "--key", "lon=0"])
        stdout = capsys.readouterr().out
        assert "(lat=0, lon=0) -> crop_type=" in stdout

    def test_incomplete_composite_key_rejected(self, tmp_path):
        out = str(tmp_path / "crop.dm")
        main(["build", "--dataset", "crop:raster", "--scale", "0.02",
              "--out", out, "--epochs", "5", "--batch-size", "256"])
        with pytest.raises(SystemExit, match="incomplete"):
            main(["query", out, "--key", "lat=0"])


class TestBench:
    def test_bench_prints_comparison(self, capsys):
        assert main(["bench", "--dataset", "synthetic:single-low",
                     "--scale", "0.03", "--systems", "DM-Z,AB",
                     "--batch", "50", "--repeats", "1",
                     "--epochs", "5", "--batch-size", "256"]) == 0
        stdout = capsys.readouterr().out
        assert "DM-Z" in stdout and "AB" in stdout
        assert "storage (KB)" in stdout
