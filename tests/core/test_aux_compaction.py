"""Tests for auxiliary-table auto-compaction and overlay accounting."""

import numpy as np
import pytest

from repro.core import AuxiliaryTable, DeepMapping
from repro.data import synthetic

from .conftest import fast_config


def fresh_aux(auto_compact_rows=8):
    keys = np.arange(0, 100, 2, dtype=np.int64)
    aux = AuxiliaryTable(("v",), target_partition_bytes=512,
                         auto_compact_rows=auto_compact_rows)
    aux.build(keys, {"v": keys % 5})
    return aux


class TestAutoCompaction:
    def test_triggers_at_threshold(self):
        aux = fresh_aux(auto_compact_rows=4)
        for i in range(3):
            aux.add_batch(np.array([200 + i]), {"v": np.array([1])})
        assert len(aux._overlay) == 3  # below threshold, still buffered
        aux.add_batch(np.array([300]), {"v": np.array([2])})
        assert len(aux._overlay) == 0  # threshold reached -> compacted
        found, codes = aux.lookup_batch(np.array([300]))
        assert found[0] and codes["v"][0] == 2

    def test_tombstones_count_toward_threshold(self):
        aux = fresh_aux(auto_compact_rows=3)
        aux.remove_batch(np.array([0, 2, 4]))
        assert len(aux._tombstones) == 0  # compaction folded them in
        found, _ = aux.lookup_batch(np.array([0, 2, 4]))
        assert not found.any()

    def test_content_identical_across_compaction(self):
        loose = fresh_aux(auto_compact_rows=10_000)
        eager = fresh_aux(auto_compact_rows=1)
        rng = np.random.default_rng(3)
        for _ in range(30):
            key = int(rng.integers(0, 400))
            if rng.random() < 0.6:
                value = int(rng.integers(0, 5))
                loose.add_batch(np.array([key]), {"v": np.array([value])})
                eager.add_batch(np.array([key]), {"v": np.array([value])})
            else:
                loose.remove_batch(np.array([key]))
                eager.remove_batch(np.array([key]))
        probe = np.arange(400, dtype=np.int64)
        found_a, codes_a = loose.lookup_batch(probe)
        found_b, codes_b = eager.lookup_batch(probe)
        np.testing.assert_array_equal(found_a, found_b)
        np.testing.assert_array_equal(codes_a["v"][found_a],
                                      codes_b["v"][found_b])

    def test_validation(self):
        with pytest.raises(ValueError):
            AuxiliaryTable(("v",), auto_compact_rows=0)

    def test_compaction_shrinks_overlay_heavy_footprint(self):
        aux = fresh_aux(auto_compact_rows=10_000)
        keys = np.arange(1000, 3000, dtype=np.int64)
        aux.add_batch(keys, {"v": keys % 5})
        before = aux.stored_bytes()
        aux.compact()
        # Compressed partitions beat the pickled dict overlay.
        assert aux.stored_bytes() < before


class TestDeepMappingCompactionConfig:
    def test_config_threads_through(self):
        table = synthetic.multi_column(300, "low")
        dm = DeepMapping.fit(table, fast_config(
            epochs=2, aux_auto_compact_rows=7))
        assert dm.aux.auto_compact_rows == 7

    def test_inserts_fold_into_partitions(self):
        table = synthetic.multi_column(400, "low")
        dm = DeepMapping.fit(table, fast_config(
            epochs=2, key_headroom_fraction=1.0, aux_auto_compact_rows=50))
        batch = synthetic.insert_batch(table, 200, "low")
        dm.insert(batch)
        # 200 > 50 threshold: the overlay was folded at least once.
        assert len(dm.aux._overlay) < 200
        result = dm.lookup({"key": batch.column("key")})
        assert result.found.all()
