"""Tests for the DeepMapping hybrid structure: build, lookup, persistence.

The heart of the suite: *losslessness* — whatever the model's accuracy,
every stored row must come back exactly, and absent keys must come back
NULL (no hallucination).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeepMapping, DeepMappingConfig
from repro.data import ColumnTable, synthetic, tpch

from .conftest import fast_config


class TestFitValidation:
    def test_duplicate_keys_rejected(self):
        table = ColumnTable(
            {"k": np.array([1, 1, 2]), "v": np.array([1, 2, 3])}, key=("k",)
        )
        with pytest.raises(ValueError, match="uniquely"):
            DeepMapping.fit(table, fast_config())

    def test_no_value_columns_rejected(self):
        table = ColumnTable({"k": np.arange(5)}, key=("k",))
        with pytest.raises(ValueError, match="value columns"):
            DeepMapping.fit(table, fast_config())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DeepMappingConfig(epochs=0)
        with pytest.raises(ValueError):
            DeepMappingConfig(key_base=1)
        with pytest.raises(ValueError):
            DeepMappingConfig(retrain_threshold_bytes=0)
        with pytest.raises(ValueError):
            DeepMappingConfig(key_headroom_fraction=-0.5)


class TestLosslessness:
    """Desideratum #1: no missing data, no spurious results."""

    def test_every_row_returned_exactly_high_corr(self, small_high_table):
        dm = DeepMapping.fit(small_high_table, fast_config())
        result = dm.lookup({"key": small_high_table.column("key")})
        assert result.found.all()
        for col in small_high_table.value_columns:
            np.testing.assert_array_equal(
                result.values[col], small_high_table.column(col)
            )

    def test_every_row_returned_exactly_low_corr(self, small_low_table):
        """Even when the model memorizes almost nothing, T_aux guarantees
        exact answers."""
        dm = DeepMapping.fit(small_low_table, fast_config(epochs=3))
        result = dm.lookup({"key": small_low_table.column("key")})
        assert result.found.all()
        for col in small_low_table.value_columns:
            np.testing.assert_array_equal(
                result.values[col], small_low_table.column(col)
            )

    def test_untrained_model_still_lossless(self, small_low_table):
        dm = DeepMapping.fit(small_low_table, fast_config(epochs=1))
        result = dm.lookup({"key": small_low_table.column("key")})
        assert result.found.all()

    def test_absent_keys_return_null(self, sparse_table):
        dm = DeepMapping.fit(sparse_table, fast_config())
        missing = sparse_table.column("key")[:-1] + 1  # gaps of 3
        result = dm.lookup({"key": missing})
        assert not result.found.any()

    def test_out_of_domain_keys_return_null(self, fitted_high):
        result = fitted_high.lookup({"key": np.array([-1, 10**9])})
        assert not result.found.any()

    def test_mixed_batch(self, sparse_table):
        dm = DeepMapping.fit(sparse_table, fast_config())
        batch = np.array([0, 1, 3, 4, 6])  # exist, miss, exist, miss, exist
        result = dm.lookup({"key": batch})
        assert result.found.tolist() == [True, False, True, False, True]

    def test_string_values_roundtrip(self, sparse_table):
        dm = DeepMapping.fit(sparse_table, fast_config())
        result = dm.lookup({"key": sparse_table.column("key")})
        np.testing.assert_array_equal(
            result.values["status"], sparse_table.column("status")
        )


class TestCompositeKeys:
    def test_lineitem_style_composite_key(self):
        table = tpch.generate("lineitem", scale=0.02)
        dm = DeepMapping.fit(table, fast_config(epochs=5))
        result = dm.lookup(
            {"l_orderkey": table.column("l_orderkey"),
             "l_linenumber": table.column("l_linenumber")}
        )
        assert result.found.all()
        np.testing.assert_array_equal(
            result.values["l_shipmode"], table.column("l_shipmode")
        )

    def test_absent_composite_key(self):
        table = tpch.generate("lineitem", scale=0.02)
        dm = DeepMapping.fit(table, fast_config(epochs=2))
        # linenumber 0 never exists (domain is 1..7)
        probe = {"l_orderkey": table.column("l_orderkey")[:5],
                 "l_linenumber": np.zeros(5, dtype=np.int64)}
        result = dm.lookup(probe)
        assert not result.found.any()

    def test_table_as_keys_argument(self):
        table = tpch.generate("lineitem", scale=0.02)
        dm = DeepMapping.fit(table, fast_config(epochs=2))
        result = dm.lookup(table)
        assert result.found.all()


class TestLookupAPI:
    def test_plain_array_for_single_key(self, fitted_high):
        result = fitted_high.lookup(np.array([0, 1, 2]))
        assert result.found.all()

    def test_2d_array_for_composite_key(self):
        table = tpch.generate("lineitem", scale=0.02)
        dm = DeepMapping.fit(table, fast_config(epochs=2))
        probe = np.stack(
            [table.column("l_orderkey")[:4], table.column("l_linenumber")[:4]],
            axis=1,
        )
        assert dm.lookup(probe).found.all()

    def test_missing_key_column_rejected(self, fitted_high):
        with pytest.raises(KeyError):
            fitted_high.lookup({"wrong": np.array([1])})

    def test_lookup_one(self, small_high_table):
        dm = DeepMapping.fit(small_high_table, fast_config())
        row = dm.lookup_one(key=5)
        assert row is not None
        assert row["v0"] == small_high_table.column("v0")[5]
        assert dm.lookup_one(key=10**8) is None

    def test_lookup_one_validates_key_names(self, fitted_high):
        with pytest.raises(KeyError):
            fitted_high.lookup_one(wrong=1)

    def test_result_rows_iterator(self, sparse_table):
        dm = DeepMapping.fit(sparse_table, fast_config(epochs=2))
        result = dm.lookup({"key": np.array([0, 1])})
        rows = list(result.rows())
        assert rows[0] is not None and rows[1] is None

    def test_duplicate_query_keys(self, fitted_high):
        result = fitted_high.lookup({"key": np.array([7, 7, 7])})
        assert result.found.all()
        assert len({result.values["v0"][i] for i in range(3)}) == 1


class TestSizeReport:
    def test_report_fields(self, fitted_high):
        report = fitted_high.size_report()
        assert report.model_bytes > 0
        assert report.exist_bytes > 0
        assert report.decode_bytes > 0
        assert report.total_bytes == (
            report.model_bytes + report.aux_bytes + report.exist_bytes
            + report.decode_bytes
        )

    def test_high_corr_compresses_well(self, small_high_table):
        dm = DeepMapping.fit(
            small_high_table,
            fast_config(epochs=120, shared_sizes=(64,), private_sizes=(32,)),
        )
        report = dm.size_report()
        assert report.compression_ratio < 0.6
        assert report.memorized_fraction > 0.5

    def test_low_corr_aux_dominates(self, small_low_table):
        """Fig. 6's pattern: with little key-value structure the auxiliary
        table holds the bulk of the bytes."""
        dm = DeepMapping.fit(small_low_table, fast_config(epochs=3))
        report = dm.size_report()
        assert report.aux_bytes > report.model_bytes * 0.5
        assert report.memorized_fraction < 0.7

    def test_breakdown_sums_to_100(self, fitted_high):
        breakdown = fitted_high.size_report().breakdown()
        assert sum(breakdown.values()) == pytest.approx(100.0)

    def test_len_counts_live_keys(self, small_high_table):
        dm = DeepMapping.fit(small_high_table, fast_config())
        assert len(dm) == small_high_table.n_rows


class TestPersistence:
    def test_save_load_roundtrip(self, small_high_table, tmp_path):
        dm = DeepMapping.fit(small_high_table, fast_config())
        path = os.path.join(tmp_path, "dm.bin")
        nbytes = dm.save(path)
        assert nbytes > 0
        clone = DeepMapping.load(path)
        probe = {"key": small_high_table.column("key")}
        a, b = dm.lookup(probe), clone.lookup(probe)
        np.testing.assert_array_equal(a.found, b.found)
        for col in small_high_table.value_columns:
            np.testing.assert_array_equal(a.values[col], b.values[col])

    def test_loaded_structure_supports_modifications(self, small_high_table,
                                                     tmp_path):
        dm = DeepMapping.fit(small_high_table,
                             fast_config(key_headroom_fraction=1.0))
        path = os.path.join(tmp_path, "dm.bin")
        dm.save(path)
        clone = DeepMapping.load(path)
        clone.delete({"key": np.array([0])})
        assert clone.lookup_one(key=0) is None


class TestToTable:
    def test_materializes_original_content(self, small_high_table):
        dm = DeepMapping.fit(small_high_table, fast_config())
        out = dm.to_table()
        assert out.n_rows == small_high_table.n_rows
        # Key order is ascending flat order == ascending key here.
        np.testing.assert_array_equal(
            out.column("key"), small_high_table.column("key")
        )
        for col in small_high_table.value_columns:
            np.testing.assert_array_equal(
                out.column(col), small_high_table.column(col)
            )


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=20, max_value=120),
    cardinality=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
)
def test_losslessness_property_random_tables(n, cardinality, seed):
    """Property: DeepMapping is lossless on arbitrary random tables, with
    a deliberately under-trained model."""
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(n * 4, size=n, replace=False)).astype(np.int64)
    table = ColumnTable(
        {"k": keys, "v": rng.integers(0, cardinality, size=n)}, key=("k",)
    )
    dm = DeepMapping.fit(table, fast_config(epochs=2))
    result = dm.lookup({"k": keys})
    assert result.found.all()
    np.testing.assert_array_equal(result.values["v"], table.column("v"))
    absent = np.setdiff1d(np.arange(n * 4), keys)[:20]
    assert not dm.lookup({"k": absent}).found.any()
