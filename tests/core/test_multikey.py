"""Tests for multi-key and multi-relation mappings (paper Sec. III)."""

import numpy as np
import pytest

from repro.core import MultiKeyDeepMapping, MultiRelationDeepMapping
from repro.data import ColumnTable

from .conftest import fast_config


def two_key_table(n=300):
    """A relation where both `id` and `alt_id` uniquely identify rows."""
    rng = np.random.default_rng(17)
    ids = np.arange(n, dtype=np.int64)
    alt = rng.permutation(n).astype(np.int64) + 10_000
    return ColumnTable(
        {
            "id": ids,
            "alt_id": alt,
            "grade": rng.integers(0, 5, size=n),
        },
        key=("id",),
        name="two_key",
    )


def star_schema(n_orders=200, n_customers=40):
    rng = np.random.default_rng(23)
    customers = ColumnTable(
        {
            "c_id": np.arange(n_customers, dtype=np.int64),
            "c_segment": rng.integers(0, 5, size=n_customers),
        },
        key=("c_id",),
        name="customers",
    )
    orders = ColumnTable(
        {
            "o_id": np.arange(n_orders, dtype=np.int64),
            "o_customer": rng.integers(0, n_customers, size=n_orders),
            "o_status": rng.integers(0, 3, size=n_orders),
        },
        key=("o_id",),
        name="orders",
    )
    return customers, orders


class TestMultiKey:
    def test_lookup_through_both_keys(self):
        table = two_key_table()
        mk = MultiKeyDeepMapping.fit(table, keys=[("id",), ("alt_id",)],
                                     config=fast_config(epochs=3))
        by_id = mk.lookup(("id",), {"id": table.column("id")[:10]})
        assert by_id.found.all()
        np.testing.assert_array_equal(by_id.values["grade"],
                                      table.column("grade")[:10])
        by_alt = mk.lookup(("alt_id",), {"alt_id": table.column("alt_id")[:10]})
        assert by_alt.found.all()
        np.testing.assert_array_equal(by_alt.values["grade"],
                                      table.column("grade")[:10])

    def test_unknown_key_designation_rejected(self):
        table = two_key_table()
        mk = MultiKeyDeepMapping.fit(table, keys=[("id",)],
                                     config=fast_config(epochs=2))
        with pytest.raises(KeyError):
            mk.lookup(("alt_id",), {"alt_id": np.array([10000])})

    def test_non_unique_key_rejected(self):
        table = two_key_table()
        with pytest.raises(ValueError, match="uniquely"):
            MultiKeyDeepMapping.fit(table, keys=[("grade",)],
                                    config=fast_config(epochs=2))

    def test_storage_bytes_sums_mappings(self):
        table = two_key_table()
        mk = MultiKeyDeepMapping.fit(table, keys=[("id",), ("alt_id",)],
                                     config=fast_config(epochs=2))
        total = mk.storage_bytes()
        parts = sum(mk.mapping_for(k).storage_bytes() for k in mk.keys)
        assert total == parts

    def test_requires_one_designation(self):
        with pytest.raises(ValueError):
            MultiKeyDeepMapping({})


class TestMultiRelation:
    def test_per_relation_lookup(self):
        customers, orders = star_schema()
        mr = MultiRelationDeepMapping.fit(
            {"customers": customers, "orders": orders},
            config=fast_config(epochs=3),
        )
        result = mr.lookup("orders", {"o_id": orders.column("o_id")[:5]})
        assert result.found.all()

    def test_foreign_key_chase(self):
        customers, orders = star_schema()
        mr = MultiRelationDeepMapping.fit(
            {"customers": customers, "orders": orders},
            config=fast_config(epochs=30),
        )
        fact, dim = mr.lookup_via(
            "orders", {"o_id": orders.column("o_id")[:20]},
            fk_column="o_customer", dimension="customers",
        )
        assert fact.found.all() and dim.found.all()
        expected = customers.column("c_segment")[
            orders.column("o_customer")[:20]
        ]
        np.testing.assert_array_equal(dim.values["c_segment"], expected)

    def test_fk_chase_propagates_missing_fact_rows(self):
        customers, orders = star_schema()
        mr = MultiRelationDeepMapping.fit(
            {"customers": customers, "orders": orders},
            config=fast_config(epochs=3),
        )
        fact, dim = mr.lookup_via(
            "orders", {"o_id": np.array([0, 10**6])},
            fk_column="o_customer", dimension="customers",
        )
        assert fact.found.tolist() == [True, False]
        assert dim.found.tolist() == [True, False]

    def test_unknown_relation_rejected(self):
        customers, _ = star_schema()
        mr = MultiRelationDeepMapping.fit({"customers": customers},
                                          config=fast_config(epochs=2))
        with pytest.raises(KeyError):
            mr.lookup("orders", {"o_id": np.array([0])})

    def test_unknown_fk_column_rejected(self):
        customers, orders = star_schema()
        mr = MultiRelationDeepMapping.fit(
            {"customers": customers, "orders": orders},
            config=fast_config(epochs=2),
        )
        with pytest.raises(KeyError):
            mr.lookup_via("orders", {"o_id": np.array([0])},
                          fk_column="nope", dimension="customers")

    def test_requires_one_relation(self):
        with pytest.raises(ValueError):
            MultiRelationDeepMapping({})
