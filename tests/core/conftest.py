"""Fixtures for core tests: fast configs and small tables."""

import numpy as np
import pytest

from repro.core import DeepMapping, DeepMappingConfig
from repro.data import ColumnTable, synthetic


def fast_config(**overrides):
    """A config that builds in well under a second."""
    defaults = dict(
        epochs=25,
        batch_size=256,
        shared_sizes=(32,),
        private_sizes=(16,),
        learning_rate=0.003,
        aux_partition_bytes=4096,
    )
    defaults.update(overrides)
    return DeepMappingConfig(**defaults)


@pytest.fixture
def small_high_table():
    """1k-row fully-learnable table (multi-column, high correlation)."""
    return synthetic.multi_column(1000, "high")


@pytest.fixture
def small_low_table():
    """1k-row noise table (multi-column, low correlation)."""
    return synthetic.multi_column(1000, "low")


@pytest.fixture
def fitted_high(small_high_table):
    """A DeepMapping over the high-correlation table."""
    return DeepMapping.fit(small_high_table, fast_config())


@pytest.fixture
def sparse_table():
    """Table with gaps in the key domain (every third key exists)."""
    keys = np.arange(0, 3000, 3, dtype=np.int64)
    rng = np.random.default_rng(8)
    return ColumnTable(
        {
            "key": keys,
            "status": rng.choice(np.array(["A", "B", "C"]), size=keys.size),
        },
        key=("key",),
        name="sparse",
    )
