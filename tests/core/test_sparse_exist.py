"""Tests for the sparse existence index and the dense/sparse selector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DeepMapping,
    ExistenceIndex,
    SparseExistenceIndex,
    load_existence,
    make_existence_index,
)
from repro.data import ColumnTable

from .conftest import fast_config


class TestSparseIndex:
    def test_set_test_clear(self):
        index = SparseExistenceIndex(10**12)
        index.set_batch(np.array([5, 10**11, 7]))
        assert index.test_batch(np.array([5, 7, 10**11])).all()
        assert not index.test_batch(np.array([6])).any()
        index.clear_batch(np.array([7]))
        assert index.count() == 2

    def test_duplicates_collapse(self):
        index = SparseExistenceIndex(100)
        index.set_batch(np.array([3, 3, 3]))
        assert index.count() == 1

    def test_existing_keys_sorted(self):
        index = SparseExistenceIndex(1000)
        index.set_batch(np.array([500, 2, 77]))
        assert index.existing_keys().tolist() == [2, 77, 500]

    def test_out_of_domain_rejected(self):
        index = SparseExistenceIndex(10)
        with pytest.raises(IndexError):
            index.set_batch(np.array([10]))
        with pytest.raises(IndexError):
            index.test_batch(np.array([-1]))

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            SparseExistenceIndex(0)

    def test_roundtrip(self):
        index = SparseExistenceIndex(10**10)
        index.set_batch(np.array([1, 10**9, 123456789]))
        clone = SparseExistenceIndex.from_bytes(index.to_bytes())
        assert clone.domain_size == 10**10
        assert clone.existing_keys().tolist() == index.existing_keys().tolist()

    def test_footprint_independent_of_domain(self):
        small_domain = SparseExistenceIndex(10**4)
        huge_domain = SparseExistenceIndex(10**12)
        keys = np.arange(0, 1000, dtype=np.int64)
        small_domain.set_batch(keys)
        huge_domain.set_batch(keys)
        assert huge_domain.nbytes == small_domain.nbytes

    def test_stored_bytes_excludes_tag_and_domain_header(self):
        """size(V_exist) counts the compressed keys only — not the 1-byte
        format tag or 8-byte domain header — mirroring the dense
        variant's accounting in the Eq. 1 objective."""
        index = SparseExistenceIndex(10**10)
        index.set_batch(np.array([1, 7, 10**9], dtype=np.int64))
        assert index.stored_bytes() == len(index.to_bytes()) - 9

    def test_stored_bytes_matches_dense_accounting_convention(self):
        """Dense counts len(compressed bits); sparse must likewise count
        only its compressed payload, so the Eq. 1 comparison between the
        two variants is apples-to-apples."""
        dense = ExistenceIndex(512)
        overhead = len(dense.to_bytes()) - dense.stored_bytes()
        assert overhead == 1  # dense: tag only
        sparse = SparseExistenceIndex(512)
        sparse.set_batch(np.array([3, 400], dtype=np.int64))
        overhead = len(sparse.to_bytes()) - sparse.stored_bytes()
        assert overhead == 9  # sparse: tag + domain header


class TestSelector:
    def test_dense_for_dense_domains(self):
        assert isinstance(make_existence_index(1000, 500), ExistenceIndex)

    def test_sparse_for_sparse_domains(self):
        index = make_existence_index(10**9, 1000)
        assert isinstance(index, SparseExistenceIndex)

    def test_sparse_above_dense_cap(self):
        index = make_existence_index(2**40, 2**40 // 2)
        assert isinstance(index, SparseExistenceIndex)

    def test_load_dispatches_both(self):
        dense = ExistenceIndex(100)
        dense.set_batch(np.array([1, 2]))
        sparse = SparseExistenceIndex(10**9)
        sparse.set_batch(np.array([5]))
        assert isinstance(load_existence(dense.to_bytes()), ExistenceIndex)
        assert isinstance(load_existence(sparse.to_bytes()),
                          SparseExistenceIndex)


class TestDeepMappingWithSparseKeys:
    def test_wide_composite_key_domain(self):
        """Keys scattered over a ~10^8 domain must not allocate 10^8 bits
        per... they get the sparse index and stay exact."""
        rng = np.random.default_rng(9)
        keys = np.sort(rng.choice(10**8, size=500, replace=False))
        table = ColumnTable(
            {"key": keys, "v": (keys % 5).astype(np.int64)}, key=("key",)
        )
        dm = DeepMapping.fit(table, fast_config(epochs=3))
        assert isinstance(dm.exist, SparseExistenceIndex)
        assert dm.lookup({"key": keys}).found.all()
        absent = keys[:-1] + 1
        absent = absent[~np.isin(absent, keys)]
        assert not dm.lookup({"key": absent}).found.any()

    def test_sparse_structure_save_load(self, tmp_path):
        rng = np.random.default_rng(10)
        keys = np.sort(rng.choice(10**7, size=300, replace=False))
        table = ColumnTable(
            {"key": keys, "v": (keys % 3).astype(np.int64)}, key=("key",)
        )
        dm = DeepMapping.fit(table, fast_config(epochs=2))
        path = str(tmp_path / "sparse.dm")
        dm.save(path)
        clone = DeepMapping.load(path)
        assert isinstance(clone.exist, SparseExistenceIndex)
        assert clone.lookup({"key": keys}).found.all()


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10**6), max_size=50,
                  unique=True),
    probe=st.lists(st.integers(min_value=0, max_value=10**6), max_size=30),
)
def test_sparse_matches_dense_semantics(keys, probe):
    """Property: sparse and dense indexes agree on every operation."""
    dense = ExistenceIndex(10**6 + 1)
    sparse = SparseExistenceIndex(10**6 + 1)
    arr = np.array(keys, dtype=np.int64)
    dense.set_batch(arr)
    sparse.set_batch(arr)
    probe_arr = np.array(probe, dtype=np.int64)
    np.testing.assert_array_equal(dense.test_batch(probe_arr),
                                  sparse.test_batch(probe_arr))
    assert dense.count() == sparse.count()
    np.testing.assert_array_equal(dense.existing_keys(),
                                  sparse.existing_keys())
