"""Tests for the verification audit helper."""

import numpy as np
import pytest

from repro.core import DeepMapping
from repro.core.verify import verify
from repro.data import ColumnTable, synthetic

from .conftest import fast_config


@pytest.fixture(scope="module")
def built():
    table = synthetic.multi_column(800, "high")
    return table, DeepMapping.fit(table, fast_config(epochs=20))


class TestVerify:
    def test_fresh_build_passes(self, built):
        table, dm = built
        report = verify(dm, table)
        assert report.ok
        assert report.rows_checked == table.n_rows
        assert report.spurious_hits == 0

    def test_key_mismatch_rejected(self, built):
        _, dm = built
        other = ColumnTable({"id": np.arange(3), "v": np.arange(3)},
                            key=("id",))
        with pytest.raises(ValueError, match="key"):
            verify(dm, other)

    def test_detects_value_drift(self, built):
        table, dm = built
        # Tamper with the source snapshot: verification must flag it.
        tampered = {n: table.column(n).copy() for n in table.column_names}
        tampered["v0"][:5] = (tampered["v0"][:5] + 1) % 2
        report = verify(dm, ColumnTable(tampered, key=table.key))
        assert not report.ok
        assert report.cells_wrong == 5
        assert report.wrong_by_column == {"v0": 5}
        assert len(report.examples["wrong:v0"]) == 5

    def test_detects_missing_rows(self, built):
        table, dm = built
        extra = synthetic.insert_batch(table, 5, "high")
        bigger = table.concat(extra)
        report = verify(dm, bigger)
        assert not report.ok
        assert report.rows_missing == 5

    def test_detects_spurious_rows_after_deletion_drift(self):
        table = synthetic.multi_column(400, "high")
        dm = DeepMapping.fit(table, fast_config(epochs=10))
        # The mapping keeps rows the snapshot no longer has -> spurious.
        snapshot = table.take(np.arange(200))
        report = verify(dm, snapshot, probe_absent=400)
        assert report.spurious_hits > 0

    def test_small_batches_equivalent(self, built):
        table, dm = built
        report = verify(dm, table, batch_size=64)
        assert report.ok

    def test_probe_absent_zero_skips_pass_two(self, built):
        table, dm = built
        report = verify(dm, table, probe_absent=0)
        assert report.ok

    def test_repr_mentions_status(self, built):
        table, dm = built
        assert "OK" in repr(verify(dm, table))
