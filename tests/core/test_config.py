"""Focused tests for DeepMappingConfig validation and variants."""

from dataclasses import replace

import pytest

from repro.core import DeepMappingConfig


class TestDefaults:
    def test_defaults_are_valid(self):
        config = DeepMappingConfig()
        assert config.key_base == 10
        assert config.aux_codec == "zstd"
        assert config.warm_start_rebuild is True
        assert config.retrain_threshold_bytes is None

    def test_variant_via_replace(self):
        base = DeepMappingConfig()
        lzma_variant = replace(base, aux_codec="lzma")
        assert lzma_variant.aux_codec == "lzma"
        assert base.aux_codec == "zstd"


class TestValidation:
    def test_key_base_scalar(self):
        with pytest.raises(ValueError):
            DeepMappingConfig(key_base=1)

    def test_key_base_tuple(self):
        DeepMappingConfig(key_base=(10, 7))  # valid
        with pytest.raises(ValueError):
            DeepMappingConfig(key_base=(10, 1))
        with pytest.raises(ValueError):
            DeepMappingConfig(key_base=())

    def test_headroom(self):
        with pytest.raises(ValueError):
            DeepMappingConfig(key_headroom_fraction=-0.1)

    def test_training_fields(self):
        with pytest.raises(ValueError):
            DeepMappingConfig(epochs=0)
        with pytest.raises(ValueError):
            DeepMappingConfig(batch_size=0)

    def test_aux_fields(self):
        with pytest.raises(ValueError):
            DeepMappingConfig(aux_partition_bytes=0)
        with pytest.raises(ValueError):
            DeepMappingConfig(aux_auto_compact_rows=0)

    def test_retrain_threshold(self):
        DeepMappingConfig(retrain_threshold_bytes=None)  # valid
        DeepMappingConfig(retrain_threshold_bytes=1)     # valid
        with pytest.raises(ValueError):
            DeepMappingConfig(retrain_threshold_bytes=0)
