"""Tests for the LookupResult and SizeReport value objects."""

import numpy as np
import pytest

from repro.core import LookupResult, SizeReport


class TestLookupResult:
    def test_len(self):
        result = LookupResult(found=np.array([True, False]),
                              values={"v": np.array([1, 2])})
        assert len(result) == 2

    def test_rows_yield_none_for_missing(self):
        result = LookupResult(found=np.array([True, False, True]),
                              values={"v": np.array([1, 2, 3])})
        rows = list(result.rows())
        assert rows[0] == {"v": 1}
        assert rows[1] is None
        assert rows[2] == {"v": 3}

    def test_empty(self):
        result = LookupResult(found=np.empty(0, dtype=bool),
                              values={"v": np.empty(0)})
        assert len(result) == 0
        assert list(result.rows()) == []


class TestSizeReport:
    def make(self, **overrides):
        fields = dict(model_bytes=100, aux_bytes=300, exist_bytes=50,
                      decode_bytes=50, dataset_bytes=1000, n_rows=10,
                      n_in_aux=4)
        fields.update(overrides)
        return SizeReport(**fields)

    def test_total(self):
        assert self.make().total_bytes == 500

    def test_ratio(self):
        assert self.make().compression_ratio == pytest.approx(0.5)

    def test_ratio_empty_dataset_is_inf(self):
        assert self.make(dataset_bytes=0).compression_ratio == float("inf")

    def test_memorized_fraction(self):
        assert self.make().memorized_fraction == pytest.approx(0.6)

    def test_memorized_fraction_empty_structure(self):
        assert self.make(n_rows=0, n_in_aux=0).memorized_fraction == 1.0

    def test_breakdown_percentages(self):
        breakdown = self.make().breakdown()
        assert breakdown["model"] == pytest.approx(20.0)
        assert breakdown["aux_table"] == pytest.approx(60.0)
        assert sum(breakdown.values()) == pytest.approx(100.0)
