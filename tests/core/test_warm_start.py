"""Tests for warm-started retraining (paper Sec. V-D model reuse)."""

import numpy as np
import pytest

from repro.core import DeepMapping, DeepMappingConfig
from repro.data import synthetic
from repro.nn import ArchitectureSpec, InferenceSession, MultiTaskMLP

from .conftest import fast_config


class TestLoadStateArrays:
    def test_matching_tensors_copied(self):
        rng = np.random.default_rng(0)
        spec = ArchitectureSpec(8, (16,), {"t": (8,)}, {"t": 3})
        source = MultiTaskMLP(spec, rng=rng)
        target = MultiTaskMLP(spec, rng=np.random.default_rng(1))
        loaded = target.load_state_arrays(source.state_arrays())
        assert loaded == 6  # 3 layers x (W, b)
        np.testing.assert_array_equal(target.shared[0].weight.value,
                                      source.shared[0].weight.value)

    def test_shape_mismatches_skipped(self):
        rng = np.random.default_rng(0)
        small = MultiTaskMLP(ArchitectureSpec(8, (16,), {"t": ()}, {"t": 3}),
                             rng=rng)
        wide = MultiTaskMLP(ArchitectureSpec(8, (32,), {"t": ()}, {"t": 3}),
                            rng=np.random.default_rng(1))
        before = wide.shared[0].weight.value.copy()
        loaded = wide.load_state_arrays(small.state_arrays())
        # Only the output bias (3,) still matches; mismatched weight
        # matrices keep their fresh initialization.
        assert loaded == 1
        np.testing.assert_array_equal(wide.shared[0].weight.value, before)

    def test_partial_transfer_on_grown_head(self):
        rng = np.random.default_rng(0)
        base = MultiTaskMLP(ArchitectureSpec(8, (16,), {"t": ()}, {"t": 3}),
                            rng=rng)
        grown = MultiTaskMLP(ArchitectureSpec(8, (16,), {"t": ()}, {"t": 5}),
                             rng=np.random.default_rng(1))
        loaded = grown.load_state_arrays(base.state_arrays())
        assert loaded == 2  # only the shared layer transfers

    def test_session_arrays_compatible_with_model(self):
        rng = np.random.default_rng(2)
        spec = ArchitectureSpec(6, (12,), {"a": (4,), "b": ()},
                                {"a": 3, "b": 2})
        model = MultiTaskMLP(spec, rng=rng)
        session = InferenceSession.from_model(model, weight_dtype="float32")
        clone = MultiTaskMLP(spec, rng=np.random.default_rng(3))
        loaded = clone.load_state_arrays(session.state_arrays())
        assert loaded == len(model.parameters())
        x = rng.normal(size=(10, 6)).astype(np.float32)
        np.testing.assert_array_equal(clone.predict_codes(x)["a"],
                                      model.predict_codes(x)["a"])


class TestWarmStartFit:
    def test_warm_start_lowers_initial_loss(self):
        table = synthetic.multi_column(800, "high")
        cold = DeepMapping.fit(table, fast_config(epochs=40))
        warm = DeepMapping.fit(table, fast_config(epochs=2),
                               warm_start=cold.session.state_arrays())
        assert warm.warm_started_tensors > 0
        cold_restart = DeepMapping.fit(table, fast_config(epochs=2))
        assert (warm.last_training.epoch_losses[0]
                < cold_restart.last_training.epoch_losses[0])

    def test_warm_start_preserves_losslessness(self):
        table = synthetic.multi_column(500, "low")
        first = DeepMapping.fit(table, fast_config(epochs=5))
        second = DeepMapping.fit(table, fast_config(epochs=1),
                                 warm_start=first.session.state_arrays())
        result = second.lookup({"key": table.column("key")})
        assert result.found.all()


class TestWarmRebuild:
    def test_rebuild_transfers_weights_by_default(self):
        table = synthetic.multi_column(600, "high")
        dm = DeepMapping.fit(table, fast_config(epochs=30,
                                                key_headroom_fraction=1.0))
        dm.rebuild()
        assert dm.warm_started_tensors > 0

    def test_rebuild_cold_when_disabled(self):
        table = synthetic.multi_column(600, "high")
        config = fast_config(epochs=10, warm_start_rebuild=False)
        dm = DeepMapping.fit(table, config)
        dm.rebuild()
        assert dm.warm_started_tensors == 0

    def test_warm_rebuild_converges_faster(self):
        """The paper's motivation: reuse makes the expensive retrain step
        cheap.  With a tight tolerance, the warm rebuild stops in fewer
        epochs than the cold one."""
        table = synthetic.multi_column(1500, "high")
        config = fast_config(epochs=120, tol=1e-4, shared_sizes=(64,),
                             private_sizes=(32,))
        dm = DeepMapping.fit(table, config)

        dm_warm = DeepMapping.fit(table, config,
                                  warm_start=dm.session.state_arrays())
        dm_cold = DeepMapping.fit(table, config)
        assert (dm_warm.last_training.epochs_run
                <= dm_cold.last_training.epochs_run)
