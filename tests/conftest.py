"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic numpy Generator for tests."""
    return np.random.default_rng(20240610)


@pytest.fixture
def tmp_store_dir(tmp_path):
    """Directory for disk-store artifacts, unique per test."""
    path = tmp_path / "store"
    path.mkdir()
    return str(path)
