"""Shared fixtures for the test suite."""

import importlib.util

import numpy as np
import pytest

#: Per-test wall-clock budget (seconds).  Concurrency tests that
#: deadlock would otherwise hang the whole suite; a minute is far above
#: any legitimate test here.
TEST_TIMEOUT_SECONDS = 60

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


def pytest_configure(config):
    if _HAVE_PYTEST_TIMEOUT and config.getoption("timeout", None) is None:
        config.option.timeout = TEST_TIMEOUT_SECONDS


if not _HAVE_PYTEST_TIMEOUT:
    # Fallback guard for environments without the pytest-timeout plugin
    # (it is a dev extra, see pyproject.toml): dump every thread's stack
    # and abort the process if a single test exceeds the budget.  Less
    # graceful than the plugin — a hung test kills the run instead of
    # failing alone — but a deadlock never goes unnoticed either way.
    import faulthandler

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        faulthandler.dump_traceback_later(TEST_TIMEOUT_SECONDS, exit=True)
        try:
            yield
        finally:
            faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def rng():
    """Deterministic numpy Generator for tests."""
    return np.random.default_rng(20240610)


@pytest.fixture
def tmp_store_dir(tmp_path):
    """Directory for disk-store artifacts, unique per test."""
    path = tmp_path / "store"
    path.mkdir()
    return str(path)
