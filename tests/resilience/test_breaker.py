"""Circuit breaker state machine on a fake clock."""

import pytest

from repro.resilience import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker,
                              CircuitOpenError)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker("dep", failure_threshold=3, reset_timeout=10.0,
                          clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED  # streak was broken

    def test_half_open_after_timeout_then_close_on_probe_success(
            self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_failure_reopens_for_a_full_period(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert breaker.state == OPEN  # a *full* fresh period
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_bounds_concurrent_probes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()       # probe slot taken
        assert not breaker.allow()   # half_open_max=1: refuse the second

    def test_call_wraps_and_reports_retry_eta(self, breaker, clock):
        for _ in range(3):
            breaker.call_count = 0
            with pytest.raises(RuntimeError):
                breaker.call(lambda: (_ for _ in ()).throw(
                    RuntimeError("down")))
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError, match="retry in"):
            breaker.call(lambda: "never runs")
        clock.advance(10.0)
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state == CLOSED

    def test_release_frees_a_half_open_probe_slot(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()          # probe slot taken
        breaker.release()               # neutral outcome returns it
        assert breaker.state == HALF_OPEN  # neither closed nor reopened
        assert breaker.allow()          # the next probe can run

    def test_release_outside_half_open_is_a_noop(self, breaker):
        breaker.release()
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.release()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_reset_force_closes(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()
