"""ResilientBackend's capability surface: retried vs forwarded attrs.

The remote read path reaches the wrapped backend through *capabilities*
(``read_view`` / ``read_range`` / ``blob_version`` / ``size`` sniffed
with ``getattr``), not just the core ``read_bytes``.  Each of those must
be retried under the policy and breaker exactly like a core read, while
non-I/O capabilities (``url`` / ``scheme`` / ``remote`` / ``stats`` /
``bind_stats``) forward verbatim so capability sniffing sees the same
surface as the inner backend.
"""

import pytest

from repro.resilience import (BACKEND_READ_RETRY, ResilientBackend,
                              RetryPolicy, StoreNotFoundError)
from repro.storage import StoreStats

FAST = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0,
                   retry_on=BACKEND_READ_RETRY.retry_on,
                   give_up_on=BACKEND_READ_RETRY.give_up_on)


class CapabilityBackend:
    """Inner double exposing the full remote capability surface, with a
    scriptable count of transient failures per capability."""

    scheme = "fake"
    remote = True
    writable = False
    url = "fake://unit"

    def __init__(self):
        self.blobs = {"blob": b"0123456789abcdef"}
        self.calls = []
        self._failures = {}
        self.stats = StoreStats()

    def fail_next(self, capability, n=1):
        self._failures[capability] = n

    def _maybe_fail(self, capability):
        self.calls.append(capability)
        left = self._failures.get(capability, 0)
        if left > 0:
            self._failures[capability] = left - 1
            raise ConnectionError(f"transient {capability} fault")

    def _lookup(self, name):
        if name not in self.blobs:
            raise StoreNotFoundError(name)
        return self.blobs[name]

    def read_bytes(self, name):
        self._maybe_fail("read_bytes")
        return self._lookup(name)

    def read_view(self, name):
        self._maybe_fail("read_view")
        return memoryview(self._lookup(name))

    def read_range(self, name, start, length):
        self._maybe_fail("read_range")
        return self._lookup(name)[start:start + length]

    def blob_version(self, name):
        self._maybe_fail("blob_version")
        return ("etag", len(self._lookup(name)))

    def size(self, name):
        self._maybe_fail("size")
        return len(self._lookup(name))

    def exists(self, name):
        self._maybe_fail("exists")
        return name in self.blobs

    def bind_stats(self, stats):
        self.stats = stats


@pytest.fixture
def inner():
    return CapabilityBackend()


@pytest.fixture
def backend(inner):
    return ResilientBackend(inner, policy=FAST)


class TestRetriedCapabilities:
    @pytest.mark.parametrize("capability,call,expected", [
        ("read_view", lambda b: bytes(b.read_view("blob")),
         b"0123456789abcdef"),
        ("read_range", lambda b: b.read_range("blob", 4, 4), b"4567"),
        ("blob_version", lambda b: b.blob_version("blob"), ("etag", 16)),
        ("size", lambda b: b.size("blob"), 16),
    ])
    def test_capability_recovers_from_transient_faults(
            self, inner, backend, capability, call, expected):
        inner.fail_next(capability, 2)
        assert call(backend) == expected
        assert inner.calls.count(capability) == 3  # 2 faults + success

    @pytest.mark.parametrize("capability,call", [
        ("read_view", lambda b: b.read_view("missing")),
        ("read_range", lambda b: b.read_range("missing", 0, 4)),
        ("blob_version", lambda b: b.blob_version("missing")),
        ("size", lambda b: b.size("missing")),
    ])
    def test_absent_blob_gives_up_immediately(self, inner, backend,
                                              capability, call):
        with pytest.raises(StoreNotFoundError):
            call(backend)
        assert inner.calls.count(capability) == 1
        assert backend.breaker.state == "closed"

    def test_exhausted_retries_raise_the_transient_error(self, inner,
                                                         backend):
        inner.fail_next("read_range", 99)
        with pytest.raises(ConnectionError):
            backend.read_range("blob", 0, 4)
        assert inner.calls.count("read_range") == FAST.attempts


class TestForwardedCapabilities:
    def test_identity_attributes_forward_verbatim(self, inner, backend):
        assert backend.url == "fake://unit"
        assert backend.scheme == "fake"
        assert backend.remote is True
        assert backend.writable is False
        assert backend.stats is inner.stats

    def test_bind_stats_reaches_the_inner_backend(self, inner, backend):
        sink = StoreStats()
        backend.bind_stats(sink)
        assert inner.stats is sink

    def test_absent_capability_stays_absent(self, backend):
        # Capability sniffing must see the same surface as the inner
        # backend: nothing invents attributes the inner lacks.
        with pytest.raises(AttributeError):
            backend.batch
