"""Deadline budgets: arithmetic, expiry, and combinators on a fake clock."""

import pytest

from repro.resilience import (DEFAULT_TIMEOUT_S, Deadline, DeadlineExceeded,
                              default_timeout)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(0.4)
        assert deadline.remaining() == pytest.approx(0.6)
        assert not deadline.expired

    def test_expiry_and_check(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        deadline.check("warmup")  # within budget: no raise
        clock.advance(0.75)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="warmup.*250.0 ms"):
            deadline.check("warmup")

    def test_deadline_exceeded_is_a_timeout(self):
        clock = FakeClock()
        deadline = Deadline(0.0, clock=clock)
        clock.advance(0.1)
        with pytest.raises(TimeoutError):
            deadline.check()

    def test_after_ms(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250, clock=clock)
        assert deadline.remaining() == pytest.approx(0.25)

    def test_min_and_earliest(self):
        clock = FakeClock()
        short = Deadline(0.1, clock=clock)
        long = Deadline(5.0, clock=clock)
        assert short.min(long) is short
        assert long.min(short) is short
        assert short.min(None) is short
        assert Deadline.earliest([None, long, short, None]) is short
        assert Deadline.earliest([None, None]) is None
        assert Deadline.earliest([]) is None

    def test_timeout_or_clamps(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.timeout_or() == pytest.approx(2.0)
        assert deadline.timeout_or(cap=0.5) == pytest.approx(0.5)
        clock.advance(3.0)
        assert deadline.timeout_or() == 0.0  # never negative

    def test_default_timeout(self):
        assert default_timeout() == DEFAULT_TIMEOUT_S
        assert default_timeout(1.5) == 1.5
