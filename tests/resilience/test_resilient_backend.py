"""ResilientBackend: retried reads, pass-through writes, breaker trips."""

import pytest

from repro.resilience import (BACKEND_READ_RETRY, CircuitBreaker,
                              CircuitOpenError, ResilientBackend,
                              RetryPolicy, StoreNotFoundError)
from repro.storage.backends import InMemoryBackend
from repro.testing import FaultInjectingBackend


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


FAST = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0,
                   retry_on=BACKEND_READ_RETRY.retry_on,
                   give_up_on=BACKEND_READ_RETRY.give_up_on)


@pytest.fixture
def inner():
    backend = InMemoryBackend()
    backend.write_bytes("blob", b"payload-bytes")
    return backend


class TestRetriedReads:
    def test_read_recovers_from_transient_errors(self, inner):
        flaky = FaultInjectingBackend(inner)
        flaky.fail_next(2)
        backend = ResilientBackend(flaky, policy=FAST)
        assert backend.read_bytes("blob") == b"payload-bytes"
        assert flaky.injected_errors == 2

    def test_absent_blob_is_not_retried(self, inner):
        flaky = FaultInjectingBackend(inner)
        backend = ResilientBackend(flaky, policy=FAST)
        with pytest.raises(StoreNotFoundError):
            backend.read_bytes("missing")
        # A definitive miss must not have burned retry attempts: the
        # breaker saw no failures either.
        assert backend.breaker.state == "closed"

    def test_exists_and_list_are_retried(self, inner):
        flaky = FaultInjectingBackend(inner)
        flaky.fail_next(1)
        backend = ResilientBackend(flaky, policy=FAST)
        assert backend.exists("blob")
        assert "blob" in list(backend.list())

    def test_writes_pass_through_unretried(self, inner):
        flaky = FaultInjectingBackend(inner)
        backend = ResilientBackend(flaky, policy=FAST)
        backend.write_bytes("fresh", b"new")
        assert inner.read_bytes("fresh") == b"new"
        backend.delete("fresh")
        assert not inner.exists("fresh")

    def test_read_view_capability_forwarded_and_retried(self, inner):
        flaky = FaultInjectingBackend(inner)
        flaky.fail_next(1)
        backend = ResilientBackend(flaky, policy=FAST)
        assert bytes(backend.read_view("blob")) == b"payload-bytes"


class TestBreakerIntegration:
    def test_persistent_failure_trips_the_breaker(self, inner):
        clock = FakeClock()
        flaky = FaultInjectingBackend(inner)
        flaky.fail_next(100)
        breaker = CircuitBreaker("backend", failure_threshold=4,
                                 reset_timeout=30.0, clock=clock)
        backend = ResilientBackend(flaky, policy=FAST, breaker=breaker)
        with pytest.raises(OSError):
            backend.read_bytes("blob")  # 3 attempts, 3 failures
        with pytest.raises((OSError, CircuitOpenError)):
            backend.read_bytes("blob")  # crosses the threshold
        assert breaker.state == "open"
        # While open: refused without touching the backend.
        touched_before = flaky.injected_errors
        with pytest.raises(CircuitOpenError):
            backend.read_bytes("blob")
        assert flaky.injected_errors == touched_before

    def test_breaker_recovers_through_half_open(self, inner):
        clock = FakeClock()
        flaky = FaultInjectingBackend(inner)
        flaky.fail_next(4)
        breaker = CircuitBreaker("backend", failure_threshold=4,
                                 reset_timeout=30.0, clock=clock)
        backend = ResilientBackend(flaky, policy=FAST, breaker=breaker)
        with pytest.raises(OSError):
            backend.read_bytes("blob")
        with pytest.raises((OSError, CircuitOpenError)):
            backend.read_bytes("blob")
        assert breaker.state == "open"
        clock.advance(30.0)
        # Half-open: the probe read succeeds (faults exhausted) and
        # closes the circuit.
        assert backend.read_bytes("blob") == b"payload-bytes"
        assert breaker.state == "closed"

    def test_auto_breaker_named_after_backend_url(self, inner):
        backend = ResilientBackend(inner)
        assert inner.url in backend.breaker.name
