"""retry(): attempt counting, backoff shape, give-up classes, deadlines."""

import random

import pytest

from repro.resilience import (CircuitBreaker, CircuitOpenError, Deadline,
                              DeadlineExceeded, RetryPolicy,
                              StoreNotFoundError, retry)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures: int, value="ok",
                 exc_factory=lambda: OSError("transient")):
        self.failures = failures
        self.value = value
        self.exc_factory = exc_factory
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return self.value


def no_sleep(_seconds: float) -> None:
    pass


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        fn = Flaky(failures=2)
        assert retry(fn, RetryPolicy(attempts=3), sleep=no_sleep) == "ok"
        assert fn.calls == 3

    def test_exhausted_attempts_raise_last_error(self):
        fn = Flaky(failures=10)
        with pytest.raises(OSError, match="transient"):
            retry(fn, RetryPolicy(attempts=3), sleep=no_sleep)
        assert fn.calls == 3

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(failures=10, exc_factory=lambda: ValueError("logic bug"))
        with pytest.raises(ValueError):
            retry(fn, RetryPolicy(attempts=5), sleep=no_sleep)
        assert fn.calls == 1

    def test_give_up_on_definitive_subclass(self):
        # StoreNotFoundError IS an OSError, but retrying an absent blob
        # is pointless — give_up_on short-circuits the schedule.
        fn = Flaky(failures=10,
                   exc_factory=lambda: StoreNotFoundError("no blob 'x'"))
        policy = RetryPolicy(attempts=5, retry_on=(OSError,),
                             give_up_on=(StoreNotFoundError,))
        with pytest.raises(StoreNotFoundError):
            retry(fn, policy, sleep=no_sleep)
        assert fn.calls == 1

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff(0, rng) == pytest.approx(0.1)
        assert policy.backoff(1, rng) == pytest.approx(0.2)
        assert policy.backoff(4, rng) == pytest.approx(0.5)  # capped

    def test_full_jitter_spreads_below_ceiling(self):
        policy = RetryPolicy(base_delay=1.0, jitter=1.0)
        rng = random.Random(7)
        samples = [policy.backoff(0, rng) for _ in range(64)]
        assert all(0.0 <= s <= 1.0 for s in samples)
        assert max(samples) - min(samples) > 0.2  # actually spread

    def test_sleeps_between_attempts_but_not_after_last(self):
        sleeps = []
        fn = Flaky(failures=10)
        with pytest.raises(OSError):
            retry(fn, RetryPolicy(attempts=3, jitter=0.0, base_delay=0.05),
                  sleep=sleeps.append)
        assert len(sleeps) == 2  # between 1->2 and 2->3 only

    def test_deadline_stops_the_loop(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)

        def failing():
            clock.advance(0.6)  # each attempt burns budget
            raise OSError("transient")

        with pytest.raises(DeadlineExceeded) as info:
            retry(failing, RetryPolicy(attempts=10), deadline=deadline,
                  sleep=no_sleep)
        assert isinstance(info.value.__cause__, OSError)

    def test_backoff_clamped_to_remaining_budget(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        sleeps = []
        fn = Flaky(failures=1)
        policy = RetryPolicy(attempts=3, base_delay=10.0, jitter=0.0)
        assert retry(fn, policy, deadline=deadline,
                     sleep=sleeps.append) == "ok"
        assert sleeps == [pytest.approx(0.1)]

    def test_give_up_during_half_open_probe_releases_the_slot(self):
        # Regression: a give-up-on answer (absent blob) during the single
        # half-open probe used to leak the probe slot, wedging the
        # breaker half-open and refusing every later call forever.
        clock = FakeClock()
        breaker = CircuitBreaker("dep", failure_threshold=2,
                                 reset_timeout=10.0, half_open_max=1,
                                 clock=clock)
        policy = RetryPolicy(attempts=2, retry_on=(OSError,),
                             give_up_on=(StoreNotFoundError,))
        with pytest.raises(OSError):
            retry(Flaky(failures=10), policy, breaker=breaker,
                  sleep=no_sleep)
        assert breaker.state == "open"
        clock.advance(10.0)
        # First half-open probe hits an absent blob: a definitive answer
        # that neither closes nor reopens the circuit.
        with pytest.raises(StoreNotFoundError):
            retry(Flaky(failures=10,
                        exc_factory=lambda: StoreNotFoundError("no blob")),
                  policy, breaker=breaker, sleep=no_sleep)
        # The slot came back: the recovered backend is reachable again.
        assert retry(lambda: "ok", policy, breaker=breaker,
                     sleep=no_sleep) == "ok"
        assert breaker.state == "closed"

    def test_unclassified_exception_during_probe_releases_the_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker("dep", failure_threshold=2,
                                 reset_timeout=10.0, clock=clock)
        policy = RetryPolicy(attempts=2, retry_on=(OSError,))
        with pytest.raises(OSError):
            retry(Flaky(failures=10), policy, breaker=breaker,
                  sleep=no_sleep)
        clock.advance(10.0)
        with pytest.raises(ValueError):
            retry(Flaky(failures=10,
                        exc_factory=lambda: ValueError("logic bug")),
                  policy, breaker=breaker, sleep=no_sleep)
        assert retry(lambda: "ok", policy, breaker=breaker,
                     sleep=no_sleep) == "ok"

    def test_open_breaker_fails_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker("dep", failure_threshold=2, clock=clock)
        fn = Flaky(failures=10)
        with pytest.raises(OSError):
            retry(fn, RetryPolicy(attempts=2), breaker=breaker,
                  sleep=no_sleep)
        assert breaker.state == "open"
        # Fresh call against the tripped breaker: refused before fn runs.
        calls_before = fn.calls
        with pytest.raises(CircuitOpenError):
            retry(fn, RetryPolicy(attempts=2), breaker=breaker,
                  sleep=no_sleep)
        assert fn.calls == calls_before
