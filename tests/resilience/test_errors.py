"""The typed error taxonomy: every resilience error stays catchable by
the stdlib exception sites that predate it (the compatibility contract
that let the layer land without breaking a single caller)."""

import pickle

import pytest

from repro.resilience import (CircuitOpenError, DeadlineExceeded,
                              PartialResultError, ResilienceError,
                              StoreCorruptedError, StoreNotFoundError)


class TestHierarchy:
    def test_common_root(self):
        for error_type in (StoreNotFoundError, StoreCorruptedError,
                           DeadlineExceeded, PartialResultError,
                           CircuitOpenError):
            assert issubclass(error_type, ResilienceError)

    def test_not_found_is_key_and_file_error(self):
        # Pre-resilience callers catch KeyError (backends) or
        # FileNotFoundError (facade paths); both keep working.
        error = StoreNotFoundError("no blob named 'x'")
        assert isinstance(error, KeyError)
        assert isinstance(error, FileNotFoundError)
        assert isinstance(error, OSError)

    def test_not_found_str_is_not_repr_quoted(self):
        # KeyError.__str__ would render the repr ("\"no blob...\"");
        # the override keeps messages greppable and pytest.raises
        # match= patterns working.
        assert str(StoreNotFoundError("no blob named 'x'")) \
            == "no blob named 'x'"

    def test_corrupted_is_unpickling_error(self):
        assert isinstance(StoreCorruptedError("bit flip"),
                          pickle.UnpicklingError)

    def test_deadline_is_timeout(self):
        assert isinstance(DeadlineExceeded("late"), TimeoutError)

    def test_circuit_open_is_connection_error(self):
        assert isinstance(CircuitOpenError("open"), ConnectionError)

    def test_partial_is_runtime_error(self):
        assert isinstance(PartialResultError("lost keys"), RuntimeError)

    def test_legacy_catch_sites_still_work(self):
        with pytest.raises(KeyError, match="nope"):
            raise StoreNotFoundError("no blob named 'nope'")
        with pytest.raises(FileNotFoundError):
            raise StoreNotFoundError("gone")
        with pytest.raises(pickle.UnpicklingError):
            raise StoreCorruptedError("checksum")
