"""Old entry points keep working behind warn-once deprecation shims."""

import warnings

import numpy as np
import pytest

from repro import DeepMapping
from repro.cli import main
from repro.store import reset_warnings


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test observes its own first-warning event."""
    reset_warnings()
    yield
    reset_warnings()


class TestDeepMappingLoadShim:
    def test_warns_exactly_once_and_behaves(self, tmp_path, mono,
                                            query_keys):
        path = str(tmp_path / "legacy.dm")
        mono.save(path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = DeepMapping.load(path)
            second = DeepMapping.load(path)
        messages = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "DeepMapping.load" in str(w.message)]
        assert len(messages) == 1
        # Behavior is unchanged: both shim loads answer like the source.
        expected = mono.lookup(query_keys)
        for clone in (first, second):
            result = clone.lookup(query_keys)
            np.testing.assert_array_equal(result.found, expected.found)
            for column in mono.value_names:
                np.testing.assert_array_equal(result.values[column],
                                              expected.values[column])

    def test_open_does_not_warn(self, tmp_path, mono):
        path = str(tmp_path / "modern.dm")
        mono.save(path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DeepMapping.open(path)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]


class TestCliPathDispatchShim:
    def test_bare_path_warns_exactly_once_and_behaves(self, tmp_path, mono,
                                                      capsys):
        path = str(tmp_path / "cli.dm")
        mono.save(path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert main(["info", path]) == 0
            assert main(["info", path]) == 0
        messages = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "bare store paths" in str(w.message)]
        assert len(messages) == 1
        stdout = capsys.readouterr().out
        assert "model:" in stdout and "total:" in stdout

    def test_url_dispatch_does_not_warn(self, tmp_path, mono, capsys):
        path = tmp_path / "cli-url.dm"
        mono.save(str(path))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert main(["info", f"file://{path}"]) == 0
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert "model:" in capsys.readouterr().out

    def test_missing_store_error_names_schemes(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["info", str(tmp_path / "absent.dm")])
        message = str(excinfo.value)
        for scheme in ("file://", "mem://", "zip://"):
            assert scheme in message

    def test_directory_without_manifest_names_schemes(self, tmp_path):
        bare = tmp_path / "not-a-store"
        bare.mkdir()
        with pytest.raises(SystemExit) as excinfo:
            main(["query", str(bare), "--key", "key=1"])
        assert "file://" in str(excinfo.value)
