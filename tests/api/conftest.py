"""Fixtures for the unified-store API tests: one table, both store kinds.

Stores are module-scoped (fitting is the slow part); tests that mutate a
store must build their own.
"""

import numpy as np
import pytest

from repro import DeepMapping, ShardedDeepMapping, ShardingConfig
from repro.data import synthetic

from ..core.conftest import fast_config


@pytest.fixture(scope="module")
def api_table():
    """Small multi-column table with gaps (low correlation, busy aux)."""
    return synthetic.multi_column(900, "low", seed=11)


@pytest.fixture(scope="module")
def mono(api_table):
    """A monolithic DeepMapping over the table (read-only in tests)."""
    return DeepMapping.fit(api_table, fast_config(epochs=5))


@pytest.fixture(scope="module")
def sharded(api_table):
    """A 4-shard range store over the table (read-only in tests)."""
    return ShardedDeepMapping.fit(api_table, fast_config(epochs=5),
                                  ShardingConfig(n_shards=4))


@pytest.fixture(scope="module")
def query_keys(api_table):
    """A mixed hit/miss key batch (last quarter is guaranteed misses)."""
    live = api_table.column("key")[:300]
    missing = np.arange(10**7, 10**7 + 100, dtype=np.int64)
    return {"key": np.concatenate([live, missing])}


def assert_same_result(actual, expected, value_names):
    """Bit-identical LookupResult comparison."""
    np.testing.assert_array_equal(actual.found, expected.found)
    for column in value_names:
        np.testing.assert_array_equal(actual.values[column],
                                      expected.values[column])
