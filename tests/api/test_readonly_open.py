"""`repro.open(url, writable=False)`: shared read-only opens.

Covers the cache/mmap lifetime rules: component sharing across warm
opens, mutation refusal, invalidation after ``save`` (including a
lifecycle split), mmap view validity across re-saves, and bit-identical
results vs the writable open.
"""

import numpy as np
import pytest

import repro
from repro.shard import ShardedDeepMapping, ShardingConfig
from repro.storage import payload_cache

from ..core.conftest import fast_config
from .conftest import assert_same_result


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from bundles cached by its neighbours."""
    payload_cache().clear()
    yield
    payload_cache().clear()


@pytest.fixture()
def mono_url(tmp_path, api_table):
    store = repro.build(api_table, fast_config(epochs=4),
                        url=str(tmp_path / "m.dm"))
    return str(tmp_path / "m.dm"), store


@pytest.fixture()
def sharded_url(tmp_path, api_table):
    store = repro.build(api_table, fast_config(epochs=4),
                        sharding=ShardingConfig(n_shards=3),
                        url=str(tmp_path / "store"))
    return str(tmp_path / "store"), store


class TestMonolithicReadOnly:
    def test_parity_with_writable_open(self, mono_url, query_keys):
        url, original = mono_url
        readonly = repro.open(url, writable=False)
        assert_same_result(readonly.lookup(query_keys),
                           original.lookup(query_keys),
                           original.value_names)

    def test_warm_open_shares_components(self, mono_url):
        url, _ = mono_url
        first = repro.open(url, writable=False)
        second = repro.open(url, writable=False)
        assert first.session is second.session
        assert first.aux is second.aux
        assert first.exist is second.exist
        assert first.compiled_session() is second.compiled_session()
        assert payload_cache().hits >= 1

    def test_writable_open_stays_private(self, mono_url):
        url, _ = mono_url
        readonly = repro.open(url, writable=False)
        writable = repro.open(url)
        assert writable.session is not readonly.session
        assert writable.writable and not readonly.writable

    def test_mutations_refused(self, mono_url, api_table):
        url, _ = mono_url
        readonly = repro.open(url, writable=False)
        row = {name: np.array([api_table.column(name)[0]])
               for name in readonly.key_names + readonly.value_names}
        with pytest.raises(PermissionError):
            readonly.insert(row)
        with pytest.raises(PermissionError):
            readonly.delete({n: np.array([0]) for n in readonly.key_names})
        with pytest.raises(PermissionError):
            readonly.update(row)
        with pytest.raises(PermissionError):
            readonly.rebuild()

    def test_payload_arrays_are_readonly_views(self, mono_url):
        url, _ = mono_url
        readonly = repro.open(url, writable=False)
        for task in readonly.value_names:
            vocab = readonly.fdecode.encoders[task].vocab
            assert not vocab.flags.writeable

    def test_save_invalidates_cache(self, mono_url, query_keys, api_table):
        url, original = mono_url
        stale = repro.open(url, writable=False)
        # Mutate through a writable handle and re-save in place.
        writable = repro.open(url)
        live = {n: np.asarray(api_table.column(n)[:5])
                for n in writable.key_names}
        writable.delete(live)
        writable.save(url)
        fresh = repro.open(url, writable=False)
        assert fresh.session is not stale.session
        assert_same_result(fresh.lookup(query_keys),
                           writable.lookup(query_keys),
                           writable.value_names)

    def test_views_stay_valid_across_resave(self, mono_url, query_keys):
        """The mmap'd payload outlives an os.replace of its file: a
        store opened before a re-save keeps answering (with the content
        it was opened on) across many lookups."""
        url, original = mono_url
        readonly = repro.open(url, writable=False)
        before = readonly.lookup(query_keys)
        writable = repro.open(url)
        live = {n: np.asarray([readonly.key_codec.unflatten(
            readonly.exist.existing_keys()[:1])[n][0]])
            for n in readonly.key_names}
        writable.delete(live)
        writable.save(url)  # atomic replace under the old mapping
        for _ in range(3):
            assert_same_result(readonly.lookup(query_keys), before,
                               readonly.value_names)

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            repro.open(str(tmp_path / "absent.dm"), writable=False)


class TestShardedReadOnly:
    def test_parity_with_writable_open(self, sharded_url, query_keys):
        url, original = sharded_url
        readonly = repro.open(url, writable=False)
        assert_same_result(readonly.lookup(query_keys),
                           original.lookup(query_keys),
                           original.value_names)
        assert_same_result(readonly.lookup_barrier(query_keys),
                           original.lookup(query_keys),
                           original.value_names)

    def test_warm_open_shares_shard_bundles(self, sharded_url):
        url, _ = sharded_url
        first = repro.open(url, writable=False)
        second = repro.open(url, writable=False)
        for a, b in zip(first.shards, second.shards):
            if a is not None:
                assert a.session is b.session
                assert not a.writable

    def test_mutations_refused(self, sharded_url, api_table):
        url, _ = sharded_url
        readonly = repro.open(url, writable=False)
        with pytest.raises(PermissionError):
            readonly.delete({n: np.array([0]) for n in readonly.key_names})
        with pytest.raises(PermissionError):
            readonly.rebuild()
        with pytest.raises(PermissionError):
            readonly.split_shard(0)
        with pytest.raises(PermissionError):
            readonly.merge_shards(0)

    def test_save_after_split_invalidates(self, tmp_path, api_table,
                                          query_keys):
        """A lifecycle split changes the topology and the blob set; the
        re-save must retire every cached bundle for the container."""
        url = str(tmp_path / "store")
        store = repro.build(api_table, fast_config(epochs=4),
                            sharding=ShardingConfig(n_shards=2), url=url)
        stale = repro.open(url, writable=False)
        assert len(payload_cache()) > 0
        store.split_shard(0)
        store.save(url)
        fresh = repro.open(url, writable=False)
        assert fresh.n_shards == store.n_shards == 3
        assert_same_result(fresh.lookup(query_keys),
                           store.lookup(query_keys), store.value_names)
        # The pre-split handle still answers from its own (old) bundles.
        assert stale.n_shards == 2
        assert_same_result(stale.lookup(query_keys),
                           store.lookup(query_keys), store.value_names)

    def test_async_lookup_on_readonly(self, sharded_url, query_keys):
        url, original = sharded_url
        readonly = repro.open(url, writable=False)
        assert_same_result(readonly.lookup_async(query_keys).result(),
                           original.lookup(query_keys),
                           original.value_names)
        readonly.close()


class TestOtherBackends:
    @pytest.mark.parametrize("scheme", ["mem", "zip"])
    def test_container_backends_roundtrip(self, scheme, tmp_path,
                                          api_table, query_keys):
        url = (f"mem://readonly-{id(api_table):x}" if scheme == "mem"
               else f"zip://{tmp_path}/store.zip")
        store = repro.build(api_table, fast_config(epochs=4), url=url)
        readonly = repro.open(url, writable=False)
        assert_same_result(readonly.lookup(query_keys),
                           store.lookup(query_keys), store.value_names)
        again = repro.open(url, writable=False)
        assert again.session is readonly.session
        with pytest.raises(PermissionError):
            again.rebuild()
