"""`repro.open()` / `repro.build()` round-trips across every backend.

The acceptance matrix: both store kinds round-trip through ``file://``
(bare path and URL form), ``mem://``, and ``zip://`` with bit-identical
lookup results, and ``lookup_async`` under every executor strategy
matches synchronous ``lookup`` exactly.
"""

import os

import numpy as np
import pytest

import repro
from repro import DeepMapping, ShardedDeepMapping
from repro.store import EXECUTOR_NAMES, describe_target

from .conftest import assert_same_result

BACKENDS = ("path", "file", "mem", "zip")


def target_url(kind, tmp_path, label):
    if kind == "path":
        return str(tmp_path / f"{label}.dm")
    if kind == "file":
        return f"file://{tmp_path}/{label}-store"
    if kind == "mem":
        return f"mem://facade-{label}-{os.path.basename(str(tmp_path))}"
    return f"zip://{tmp_path}/{label}.zip"


class TestRoundTrips:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_monolithic_round_trip(self, backend, tmp_path, mono,
                                   query_keys):
        url = target_url(backend, tmp_path, "mono")
        nbytes = mono.save(url)
        assert nbytes > 0
        with repro.open(url) as clone:
            assert isinstance(clone, DeepMapping)
            assert_same_result(clone.lookup(query_keys),
                               mono.lookup(query_keys), mono.value_names)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded_round_trip(self, backend, tmp_path, sharded,
                                query_keys):
        url = target_url(backend, tmp_path, "shard")
        if backend == "path":
            url = str(tmp_path / "shard-store")
        nbytes = sharded.save(url)
        assert nbytes > 0
        with repro.open(url) as clone:
            assert isinstance(clone, ShardedDeepMapping)
            assert clone.n_shards == sharded.n_shards
            assert_same_result(clone.lookup(query_keys),
                               sharded.lookup(query_keys),
                               sharded.value_names)

    def test_zip_store_is_one_file(self, tmp_path, sharded):
        url = f"zip://{tmp_path}/whole.zip"
        sharded.save(url)
        assert os.path.isfile(tmp_path / "whole.zip")
        # Nothing else materialized: the archive is the entire store.
        assert sorted(os.listdir(tmp_path)) == ["whole.zip"]

    @pytest.mark.parametrize("kind", ("mono", "sharded"))
    def test_zip_store_opens_by_bare_path(self, kind, tmp_path, mono,
                                          sharded, query_keys):
        # zip:// omitted on open: the archive is sniffed, not unpickled.
        source = mono if kind == "mono" else sharded
        path = str(tmp_path / f"{kind}-bare.zip")
        source.save(f"zip://{path}")
        with repro.open(path) as clone:
            assert_same_result(clone.lookup(query_keys),
                               source.lookup(query_keys),
                               source.value_names)


class TestAsyncMatchesSync:
    @pytest.mark.parametrize("strategy", EXECUTOR_NAMES)
    @pytest.mark.parametrize("kind", ("mono", "sharded"))
    @pytest.mark.parametrize("backend", ("file", "mem", "zip"))
    def test_lookup_async_matches_lookup(self, kind, strategy, backend,
                                         tmp_path, mono, sharded,
                                         query_keys):
        source = mono if kind == "mono" else sharded
        url = target_url(backend, tmp_path, f"{kind}-{strategy}")
        if kind == "mono" and backend == "file":
            url = f"file://{tmp_path}/{kind}-{strategy}.dm"
        source.save(url)
        with repro.open(url, executor=strategy) as store:
            future = store.lookup_async(query_keys)
            assert_same_result(future.result(timeout=30),
                               store.lookup(query_keys),
                               source.value_names)
            assert store.executor.name == strategy


class TestBuild:
    def test_build_monolithic_default(self, api_table):
        from ..core.conftest import fast_config
        store = repro.build(api_table, fast_config(epochs=3))
        assert isinstance(store, DeepMapping)

    def test_build_shards_shorthand(self, api_table):
        from ..core.conftest import fast_config
        store = repro.build(api_table, fast_config(epochs=3), shards=3)
        assert isinstance(store, ShardedDeepMapping)
        assert store.n_shards == 3

    def test_build_conflicting_shard_counts_rejected(self, api_table):
        from repro import ShardingConfig
        with pytest.raises(ValueError, match="conflicting"):
            repro.build(api_table, sharding=ShardingConfig(n_shards=2),
                        shards=4)

    def test_build_persists_to_url(self, api_table, tmp_path):
        from ..core.conftest import fast_config
        url = f"zip://{tmp_path}/built.zip"
        store = repro.build(api_table, fast_config(epochs=3), url=url)
        clone = repro.open(url)
        key = int(api_table.column("key")[0])
        assert clone.lookup_one(key=key) == store.lookup_one(key=key)


class TestErrors:
    def test_open_missing_names_schemes(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            repro.open(str(tmp_path / "nothing-here.dm"))
        message = str(excinfo.value)
        for scheme in ("file://", "mem://", "zip://"):
            assert scheme in message

    def test_open_directory_without_manifest(self, tmp_path):
        empty = tmp_path / "just-a-dir"
        empty.mkdir()
        with pytest.raises(FileNotFoundError, match="file://"):
            repro.open(str(empty))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="accepted schemes"):
            repro.open("s3://bucket/key")

    def test_mem_url_requires_name(self):
        with pytest.raises(ValueError, match="store name"):
            repro.open("mem://")

    def test_non_store_file_gets_helpful_error(self, tmp_path):
        junk = tmp_path / "junk.dm"
        junk.write_bytes(b"definitely not a pickle payload")
        with pytest.raises(ValueError, match="does not hold a DeepMapping"):
            repro.open(str(junk))


class TestDescribeTarget:
    def test_classifies_monolithic_file(self, tmp_path, mono):
        path = str(tmp_path / "m.dm")
        mono.save(path)
        _backend, blob, kind = describe_target(path)
        assert (blob, kind) == ("m.dm", "monolithic")

    def test_classifies_sharded_dir(self, tmp_path, sharded):
        path = str(tmp_path / "s")
        sharded.save(path)
        _backend, blob, kind = describe_target(path)
        assert (blob, kind) == (None, "sharded")

    def test_classifies_absent(self, tmp_path):
        assert describe_target(str(tmp_path / "nope"))[2] == "absent"
