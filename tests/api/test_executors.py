"""Unit tests for the pluggable executor strategies."""

import threading

import pytest

from repro.store import (EXECUTOR_NAMES, ExecutorStrategy,
                         FreeThreadingStrategy, SerialStrategy,
                         ThreadPoolStrategy, gil_enabled, make_executor)


class TestSerial:
    def test_map_preserves_order(self):
        strategy = SerialStrategy()
        assert strategy.map(lambda x: x * 2, range(5)) == [0, 2, 4, 6, 8]

    def test_map_runs_on_calling_thread(self):
        seen = []
        SerialStrategy().map(lambda _: seen.append(threading.get_ident()),
                             range(3))
        assert set(seen) == {threading.get_ident()}

    def test_submit_returns_resolved_future(self):
        future = SerialStrategy().submit(lambda a, b: a + b, 2, b=3)
        assert future.done()
        assert future.result() == 5

    def test_submit_carries_exception(self):
        def boom():
            raise RuntimeError("nope")

        future = SerialStrategy().submit(boom)
        assert future.done()
        with pytest.raises(RuntimeError, match="nope"):
            future.result()


class TestThreadPool:
    def test_map_preserves_order(self):
        strategy = ThreadPoolStrategy(max_workers=4)
        try:
            assert strategy.map(lambda x: x * x, range(20)) == \
                [x * x for x in range(20)]
        finally:
            strategy.close()

    def test_single_worker_runs_inline(self):
        strategy = ThreadPoolStrategy(max_workers=1)
        seen = []
        strategy.map(lambda _: seen.append(threading.get_ident()), range(3))
        assert set(seen) == {threading.get_ident()}
        assert strategy._pool is None  # never materialized

    def test_single_job_runs_inline(self):
        strategy = ThreadPoolStrategy(max_workers=4)
        seen = []
        strategy.map(lambda _: seen.append(threading.get_ident()), [0])
        assert seen == [threading.get_ident()]
        assert strategy._pool is None

    def test_submit_runs_off_fanout_pool(self):
        # An async job that fans out onto the same strategy's map must
        # not deadlock, even at width 1 (the coordinator is separate).
        strategy = ThreadPoolStrategy(max_workers=1)
        try:
            future = strategy.submit(strategy.map, lambda x: x + 1, [1, 2])
            assert future.result(timeout=10) == [2, 3]
        finally:
            strategy.close()

    def test_close_is_idempotent_and_recoverable(self):
        strategy = ThreadPoolStrategy(max_workers=2)
        strategy.map(lambda x: x, range(4))
        strategy.close()
        strategy.close()
        # A closed strategy lazily rebuilds its pool on next use.
        assert strategy.map(lambda x: x, range(4)) == [0, 1, 2, 3]
        strategy.close()

    def test_exception_propagates_from_map(self):
        strategy = ThreadPoolStrategy(max_workers=2)

        def maybe_boom(x):
            if x == 3:
                raise ValueError("worker failure")
            return x

        try:
            with pytest.raises(ValueError, match="worker failure"):
                strategy.map(maybe_boom, range(8))
        finally:
            strategy.close()


class TestFreeThreading:
    def test_reports_gil_state(self):
        strategy = FreeThreadingStrategy(max_workers=2)
        assert strategy.gil_enabled == gil_enabled()
        strategy.close()

    def test_behaves_like_thread_pool(self):
        strategy = FreeThreadingStrategy(max_workers=3)
        try:
            assert strategy.map(lambda x: -x, range(6)) == \
                [0, -1, -2, -3, -4, -5]
        finally:
            strategy.close()


class TestMakeExecutor:
    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_names_resolve(self, name):
        strategy = make_executor(name, max_workers=2)
        assert strategy.name == name
        assert isinstance(strategy, ExecutorStrategy)
        strategy.close()

    def test_none_is_threads(self):
        strategy = make_executor(None, max_workers=2)
        assert isinstance(strategy, ThreadPoolStrategy)
        strategy.close()

    def test_instance_passes_through(self):
        instance = SerialStrategy()
        assert make_executor(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("fibers")

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            make_executor(42)
