"""Snapshot of the public API surface.

Locks ``repro.__all__`` and the ``DataStore`` protocol's method set and
parameter names, so a future PR cannot silently rename, drop, or reshape
the facade.  Deliberate API changes must update the snapshots here *and*
the migration table in ``docs/api.md``.

Also runs the package-docstring quickstart as a real doctest — the first
thing a reader tries is executed on every test run.
"""

import doctest
import inspect

import repro
from repro.store import DataStore

# --------------------------------------------------------------------------
# repro.__all__ snapshot
# --------------------------------------------------------------------------
EXPECTED_ALL = {
    "__version__",
    "open",
    "build",
    "open_store",
    "build_store",
    "serving",
    "DataStore",
    "DeepMapping",
    "DeepMappingConfig",
    "LookupResult",
    "SizeReport",
    "MultiKeyDeepMapping",
    "MultiRelationDeepMapping",
    "ShardedDeepMapping",
    "ShardingConfig",
    "LifecycleConfig",
    "MaintenanceEngine",
    "lookup_range",
    "build_range_view",
    "ColumnTable",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "retry",
    "CircuitBreaker",
    "PartialResult",
    "StoreCorruptedError",
    "StoreNotFoundError",
    "baselines",
    "bench",
    "core",
    "data",
    "lifecycle",
    "nn",
    "resilience",
    "serve",
    "shard",
    "storage",
    "store",
    "testing",
}

# --------------------------------------------------------------------------
# DataStore protocol snapshot: member -> parameter names (None: property)
# --------------------------------------------------------------------------
EXPECTED_DATASTORE = {
    "key_names": None,
    "value_names": None,
    "__len__": ("self",),
    "size_report": ("self",),
    "aux_ratio": ("self",),
    "lookup": ("self", "keys"),
    "lookup_one": ("self", "key_parts"),
    "lookup_async": ("self", "keys"),
    "contains_batch": ("self", "keys"),
    "insert": ("self", "rows"),
    "delete": ("self", "keys"),
    "update": ("self", "rows"),
    "rebuild": ("self", "config"),
    "save": ("self", "target"),
    "close": ("self",),
    "__enter__": ("self",),
    "__exit__": ("self", "exc"),
}


class TestAllSnapshot:
    def test_all_matches_snapshot(self):
        assert set(repro.__all__) == EXPECTED_ALL

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_open_and_build_are_the_facade(self):
        assert repro.open is repro.store.open_store
        assert repro.build is repro.store.build_store


class TestDataStoreSnapshot:
    def test_member_set_matches_snapshot(self):
        declared = {
            name for name, value in vars(DataStore).items()
            if (callable(value) or isinstance(value, property))
            and (not name.startswith("_")
                 or name in ("__len__", "__enter__", "__exit__"))
        }
        assert declared == set(EXPECTED_DATASTORE)

    def test_parameter_names_match_snapshot(self):
        for name, params in EXPECTED_DATASTORE.items():
            member = inspect.getattr_static(DataStore, name)
            if params is None:
                assert isinstance(member, property), name
                continue
            signature = inspect.signature(member)
            assert tuple(signature.parameters) == params, name

    def test_both_stores_expose_every_member(self, mono, sharded):
        for store in (mono, sharded):
            assert isinstance(store, DataStore)
            for name in EXPECTED_DATASTORE:
                assert hasattr(store, name), (type(store).__name__, name)


class TestQuickstartDoctest:
    def test_module_docstring_quickstart_runs(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.attempted >= 4
        assert results.failed == 0
