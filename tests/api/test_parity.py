"""Cross-store parity: both implementations satisfy ``DataStore`` alike.

The sharded facade historically lagged the monolithic surface
(``contains_batch`` / ``aux_ratio`` / ``rebuild`` were missing); these
tests pin the shared behavior so the two can never drift apart again.
"""

import numpy as np
import pytest

from repro import DeepMapping, ShardedDeepMapping, ShardingConfig
from repro.store import DataStore

from ..core.conftest import fast_config
from .conftest import assert_same_result


class TestProtocolConformance:
    def test_monolithic_is_a_datastore(self, mono):
        assert isinstance(mono, DataStore)

    def test_sharded_is_a_datastore(self, sharded):
        assert isinstance(sharded, DataStore)

    def test_not_everything_is_a_datastore(self):
        assert not isinstance(object(), DataStore)


class TestContainsBatch:
    def test_matches_monolithic(self, mono, sharded, query_keys):
        np.testing.assert_array_equal(sharded.contains_batch(query_keys),
                                      mono.contains_batch(query_keys))

    def test_matches_lookup_found(self, sharded, query_keys):
        np.testing.assert_array_equal(sharded.contains_batch(query_keys),
                                      sharded.lookup(query_keys).found)

    def test_empty_batch(self, sharded):
        mask = sharded.contains_batch({"key": np.empty(0, dtype=np.int64)})
        assert mask.shape == (0,) and mask.dtype == bool

    def test_preserves_input_order(self, api_table, sharded):
        # Interleave keys across shards so routing must un-shuffle.
        live = api_table.column("key")
        keys = np.stack([live[::-1][:50], live[:50]]).T.reshape(-1)
        mask = sharded.contains_batch({"key": keys})
        assert mask.all()


class TestAuxRatio:
    def test_monolithic_definition(self, mono):
        assert mono.aux_ratio() == pytest.approx(
            len(mono.aux) / len(mono))

    def test_sharded_aggregates_shards(self, sharded):
        in_aux = sum(len(s.aux) for s in sharded.shards if s is not None)
        assert sharded.aux_ratio() == pytest.approx(in_aux / len(sharded))

    def test_bounded(self, mono, sharded):
        for store in (mono, sharded):
            assert 0.0 <= store.aux_ratio() <= 1.0


class TestRebuild:
    def test_sharded_rebuild_is_lossless(self, api_table, query_keys):
        store = ShardedDeepMapping.fit(api_table, fast_config(epochs=4),
                                       ShardingConfig(n_shards=3))
        before = store.lookup(query_keys)
        store.rebuild()
        assert_same_result(store.lookup(query_keys), before,
                           store.value_names)

    def test_sharded_rebuild_accepts_config(self, api_table):
        store = ShardedDeepMapping.fit(api_table, fast_config(epochs=4),
                                       ShardingConfig(n_shards=2))
        new_config = fast_config(epochs=3, shared_sizes=(16,),
                                 private_sizes=(8,))
        store.rebuild(new_config)
        for shard in store.shards:
            if shard is not None:
                assert shard.config.shared_sizes == (16,)

    def test_rebuild_resets_trackers(self, api_table):
        store = ShardedDeepMapping.fit(api_table, fast_config(epochs=4),
                                       ShardingConfig(n_shards=2))
        head = {name: api_table.column(name)[:5]
                for name in store.key_names}
        store.delete(head)
        assert any(s.tracker.bytes_since_build > 0
                   for s in store.shards if s is not None)
        store.rebuild()
        assert all(s.tracker.bytes_since_build == 0
                   for s in store.shards if s is not None)


class TestSharedSurfaceBehaves:
    """The same calls give the same answers through either store."""

    def test_len_matches(self, api_table, mono, sharded):
        assert len(mono) == len(sharded) == api_table.n_rows

    def test_lookup_results_identical(self, mono, sharded, query_keys):
        assert_same_result(sharded.lookup(query_keys),
                           mono.lookup(query_keys), mono.value_names)

    def test_context_manager_both(self, api_table):
        with DeepMapping.fit(api_table, fast_config(epochs=3)) as store:
            assert len(store) == api_table.n_rows
        with ShardedDeepMapping.fit(api_table, fast_config(epochs=3),
                                    ShardingConfig(n_shards=2)) as store:
            assert len(store) == api_table.n_rows

    def test_close_is_idempotent(self, api_table):
        store = ShardedDeepMapping.fit(api_table, fast_config(epochs=3),
                                       ShardingConfig(n_shards=2))
        store.close()
        store.close()
        # Reads still work after close (executors rebuild lazily).
        key = int(api_table.column("key")[0])
        assert store.lookup_one(key=key) is not None

    def test_close_keeps_installed_strategy(self, api_table, query_keys):
        # Post-close async behavior must match across implementations:
        # the installed strategy survives close on both store kinds.
        from repro.store import ThreadPoolStrategy
        mono_store = DeepMapping.fit(api_table, fast_config(epochs=3))
        mono_store.set_executor("threads")
        mono_store.close()
        assert isinstance(mono_store.executor, ThreadPoolStrategy)
        assert mono_store.lookup_async(query_keys).result(timeout=30)

    def test_shared_executor_instance_stays_caller_owned(self, api_table):
        from repro.store import ThreadPoolStrategy
        shared = ThreadPoolStrategy(max_workers=2)
        a = ShardedDeepMapping.fit(api_table, fast_config(epochs=3),
                                   ShardingConfig(n_shards=2,
                                                  executor=shared))
        b = DeepMapping.fit(api_table, fast_config(epochs=3))
        b.set_executor(shared)
        shared.map(lambda x: x, range(4))  # materialize the pool
        a.close()
        b.close()
        # Neither store shut the shared pool down.
        assert shared._pool is not None
        shared.close()
