"""Tests for ArchitectureSpec and MultiTaskMLP, incl. memorization."""

import numpy as np
import pytest

from repro.nn import Adam, ArchitectureSpec, MultiTaskMLP, Parameter, Trainer

from .gradcheck import check_param_grad


def small_spec():
    return ArchitectureSpec(
        input_dim=6,
        shared_sizes=(8,),
        private_sizes={"type": (5,), "status": ()},
        output_dims={"type": 3, "status": 2},
    )


@pytest.fixture
def np_rng():
    return np.random.default_rng(5)


class TestArchitectureSpec:
    def test_tasks_sorted(self):
        assert small_spec().tasks == ("status", "type")

    def test_trunk_output_dim(self):
        assert small_spec().trunk_output_dim() == 8
        spec = ArchitectureSpec(4, (), {"t": ()}, {"t": 2})
        assert spec.trunk_output_dim() == 4

    def test_layer_plan_covers_all_layers(self):
        plan = small_spec().layer_plan()
        scopes = [scope for scope, _, _ in plan]
        assert scopes == ["shared/0", "status/out", "type/private/0", "type/out"]

    def test_param_count(self):
        spec = ArchitectureSpec(2, (3,), {"t": ()}, {"t": 4})
        # 2*3+3 shared + 3*4+4 head
        assert spec.param_count() == 9 + 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchitectureSpec(0, (), {"t": ()}, {"t": 2})
        with pytest.raises(ValueError):
            ArchitectureSpec(2, (), {"a": ()}, {"b": 2})
        with pytest.raises(ValueError):
            ArchitectureSpec(2, (), {}, {})
        with pytest.raises(ValueError):
            ArchitectureSpec(2, (), {"t": ()}, {"t": 0})


class TestForward:
    def test_output_shapes(self, np_rng):
        model = MultiTaskMLP(small_spec(), rng=np_rng)
        x = np_rng.normal(size=(10, 6)).astype(np.float32)
        out = model.forward(x, train=False)
        assert out["type"].shape == (10, 3)
        assert out["status"].shape == (10, 2)

    def test_predict_codes_batched(self, np_rng):
        model = MultiTaskMLP(small_spec(), rng=np_rng)
        x = np_rng.normal(size=(50, 6)).astype(np.float32)
        full = model.predict_codes(x)
        chunked = model.predict_codes(x, batch_size=7)
        np.testing.assert_array_equal(full["type"], chunked["type"])

    def test_param_count_matches_spec(self, np_rng):
        spec = small_spec()
        model = MultiTaskMLP(spec, rng=np_rng)
        assert model.param_count() == spec.param_count()


class TestBackward:
    def test_whole_model_gradients_match_numeric(self, np_rng):
        model = MultiTaskMLP(small_spec(), rng=np_rng)
        # Run the check in float64 with a tiny eps so ReLU kinks and float32
        # rounding don't pollute the numeric gradient.
        for param in model.parameters():
            param.value = param.value.astype(np.float64)
            param.grad = np.zeros_like(param.value)
        x = np_rng.normal(size=(12, 6)).astype(np.float64)
        labels = {
            "type": np_rng.integers(0, 3, size=12),
            "status": np_rng.integers(0, 2, size=12),
        }

        def loss_fn():
            logits = model.forward(x, train=False)
            total = 0.0
            from repro.nn import softmax_cross_entropy

            for task, lg in logits.items():
                total += softmax_cross_entropy(lg, labels[task])[0]
            return total

        model.loss_and_grad(x, labels)
        for param in model.parameters():
            check_param_grad(loss_fn, param, np_rng, n_checks=4, eps=1e-5,
                             rtol=1e-3, atol=1e-7)

    def test_shared_trunk_receives_both_heads(self, np_rng):
        model = MultiTaskMLP(small_spec(), rng=np_rng)
        x = np_rng.normal(size=(4, 6)).astype(np.float32)
        labels = {"type": np.zeros(4, dtype=np.int64),
                  "status": np.zeros(4, dtype=np.int64)}
        model.loss_and_grad(x, labels)
        trunk_grad = model.shared[0].weight.grad
        assert np.abs(trunk_grad).sum() > 0


class TestWeightSharing:
    def test_external_weight_provider_used(self, np_rng):
        bank = {}

        def provider(scope, in_dim, out_dim):
            key = (scope, in_dim, out_dim)
            if key not in bank:
                bank[key] = (
                    Parameter(np.zeros((in_dim, out_dim), dtype=np.float32)),
                    Parameter(np.zeros(out_dim, dtype=np.float32)),
                )
            return bank[key]

        first = MultiTaskMLP(small_spec(), weights=provider)
        second = MultiTaskMLP(small_spec(), weights=provider)
        assert first.shared[0].weight is second.shared[0].weight


class TestMemorization:
    def test_memorizes_small_correlated_mapping(self, np_rng):
        """Core paper premise: a small MLP can memorize a structured
        key->value mapping perfectly."""
        n, dim = 200, 16
        keys = np.arange(n)
        # Structured labels: derived from key bits (high key-value correlation).
        y_type = (keys // 64) % 3
        y_status = (keys // 16) % 2
        x = ((keys[:, None] >> np.arange(dim)) & 1).astype(np.float32)
        spec = ArchitectureSpec(
            input_dim=dim,
            shared_sizes=(64,),
            private_sizes={"type": (32,), "status": (32,)},
            output_dims={"type": 3, "status": 2},
        )
        model = MultiTaskMLP(spec, rng=np_rng)
        trainer = Trainer(model, Adam(0.01), batch_size=64, tol=0.0,
                          rng=np_rng)
        trainer.fit(x, {"type": y_type, "status": y_status}, epochs=150)
        pred = model.predict_codes(x)
        assert (pred["type"] == y_type).mean() == 1.0
        assert (pred["status"] == y_status).mean() == 1.0

    def test_state_arrays_named(self, np_rng):
        model = MultiTaskMLP(small_spec(), rng=np_rng)
        arrays = model.state_arrays()
        assert "shared/0.W" in arrays
        assert any(key.startswith("type/") for key in arrays)
