"""Parity tests: CompiledSession vs the reference InferenceSession.

The compiled engine must predict exactly the label codes the reference
path predicts (``InferenceSession.run`` over the one-hot encoding) on
every supported configuration — that is the oracle the lookup algorithm
was built against.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.encoding import KeyEncoder
from repro.nn import (ArchitectureSpec, CompiledSession, InferenceSession,
                      MultiTaskMLP)


def make_pair(bases, shared_sizes, private_sizes, output_dims, max_key,
              weight_dtype="float16", seed=7):
    """A (reference session, compiled session, encoder) triple."""
    rng = np.random.default_rng(seed)
    encoder = KeyEncoder(bases).fit(max_key)
    spec = ArchitectureSpec(
        input_dim=encoder.input_dim,
        shared_sizes=shared_sizes,
        private_sizes=private_sizes,
        output_dims=output_dims,
    )
    model = MultiTaskMLP(spec, rng=rng)
    session = InferenceSession.from_model(model, weight_dtype=weight_dtype)
    return session, CompiledSession(session, encoder), encoder


def assert_codes_match(session, compiled, encoder, keys, batch_size=None):
    reference = session.run(encoder.encode(keys), batch_size=batch_size)
    got = compiled.run(keys, batch_size=batch_size)
    assert set(got) == set(reference)
    for task in reference:
        np.testing.assert_array_equal(got[task], reference[task])


CONFIGS = [
    pytest.param(10, (12,), {"a": (6,), "b": ()}, {"a": 4, "b": 3},
                 id="single-base-trunk"),
    pytest.param((10, 7, 4), (16,), {"a": (8,)}, {"a": 5},
                 id="multi-base-trunk"),
    pytest.param(10, (), {"a": (6,), "b": ()}, {"a": 4, "b": 3},
                 id="no-trunk-fused-heads"),
    pytest.param((10, 3), (12, 8), {"a": ()}, {"a": 9},
                 id="deep-trunk"),
    pytest.param(2, (10,), {"a": ()}, {"a": 4},
                 id="binary-base-wide-groups"),
]


class TestParity:
    @pytest.mark.parametrize("bases,shared,private,outputs", CONFIGS)
    @pytest.mark.parametrize("dtype", ["float16", "float32"])
    def test_codes_match_reference(self, bases, shared, private, outputs,
                                   dtype):
        session, compiled, encoder = make_pair(
            bases, shared, private, outputs, max_key=99999,
            weight_dtype=dtype)
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 100000, size=4000)
        assert_codes_match(session, compiled, encoder, keys)

    def test_chunked_run_equals_single_shot(self):
        session, compiled, encoder = make_pair(
            10, (12,), {"a": (6,)}, {"a": 4}, max_key=9999)
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 10000, size=2500)
        single = compiled.run(keys, batch_size=None)
        chunked = compiled.run(keys, batch_size=333)
        np.testing.assert_array_equal(single["a"], chunked["a"])
        assert_codes_match(session, compiled, encoder, keys, batch_size=333)

    def test_empty_batch(self):
        _, compiled, _ = make_pair(10, (8,), {"a": ()}, {"a": 3},
                                   max_key=999)
        out = compiled.run(np.empty(0, dtype=np.int64))
        assert out["a"].shape == (0,)
        assert out["a"].dtype == np.int64
        logits = compiled.run_logits(np.empty(0, dtype=np.int64))
        assert logits["a"].shape == (0, 3)

    def test_composite_style_key_domain(self):
        # Keys spanning a wide flattened composite domain (many digits).
        session, compiled, encoder = make_pair(
            10, (16,), {"a": (8,), "b": ()}, {"a": 6, "b": 2},
            max_key=10**8 - 1)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 10**8, size=3000)
        assert_codes_match(session, compiled, encoder, keys)

    def test_logits_close_to_reference(self):
        session, compiled, encoder = make_pair(
            10, (12,), {"a": (6,)}, {"a": 4}, max_key=9999,
            weight_dtype="float32")
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 10000, size=500)
        reference = session.run_logits(encoder.encode(keys))
        got = compiled.run_logits(keys)
        np.testing.assert_allclose(got["a"], reference["a"],
                                   rtol=1e-5, atol=1e-5)


class TestValidation:
    def test_unfitted_encoder_rejected(self):
        session, _, _ = make_pair(10, (8,), {"a": ()}, {"a": 3}, max_key=99)
        with pytest.raises(ValueError):
            CompiledSession(session, KeyEncoder(10))

    def test_input_dim_mismatch_rejected(self):
        session, _, _ = make_pair(10, (8,), {"a": ()}, {"a": 3}, max_key=99)
        wrong = KeyEncoder(10).fit(10**6)
        with pytest.raises(ValueError):
            CompiledSession(session, wrong)

    def test_negative_keys_rejected(self):
        _, compiled, _ = make_pair(10, (8,), {"a": ()}, {"a": 3}, max_key=99)
        with pytest.raises(ValueError):
            compiled.run(np.array([3, -1]))


@settings(max_examples=25, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=10**6 - 1),
                     min_size=0, max_size=200))
def test_parity_property_random_batches(keys):
    """Property: any key batch yields the reference path's codes."""
    session, compiled, encoder = make_pair(
        (10, 7), (10,), {"a": (5,), "b": ()}, {"a": 4, "b": 3},
        max_key=10**6 - 1)
    arr = np.array(keys, dtype=np.int64)
    assert_codes_match(session, compiled, encoder, arr)
