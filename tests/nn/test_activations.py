"""Tests for activation functions and their derivatives."""

import numpy as np
import pytest

from repro.nn import log_softmax, relu, sigmoid, softmax, tanh
from repro.nn.activations import relu_grad, sigmoid_grad, tanh_grad


class TestReLU:
    def test_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert relu(x).tolist() == [0.0, 0.0, 3.0]

    def test_grad(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert relu_grad(x).tolist() == [0.0, 0.0, 1.0]


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_saturation_is_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.isfinite(out).all()

    def test_grad_matches_numeric(self):
        x = np.linspace(-3, 3, 7)
        y = sigmoid(x)
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        np.testing.assert_allclose(sigmoid_grad(y), numeric, rtol=1e-5)


class TestTanh:
    def test_grad_matches_numeric(self):
        x = np.linspace(-2, 2, 9)
        y = tanh(x)
        eps = 1e-6
        numeric = (tanh(x + eps) - tanh(x - eps)) / (2 * eps)
        np.testing.assert_allclose(tanh_grad(y), numeric, rtol=1e-5, atol=1e-8)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 7))
        out = softmax(logits)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), rtol=1e-6)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0),
                                   rtol=1e-6)

    def test_large_logits_stable(self):
        out = softmax(np.array([[1e4, -1e4]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(1).normal(size=(4, 6))
        np.testing.assert_allclose(
            np.exp(log_softmax(logits)), softmax(logits), rtol=1e-6
        )
