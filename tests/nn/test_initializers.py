"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import glorot_uniform, orthogonal, uniform, zeros


@pytest.fixture
def np_rng():
    return np.random.default_rng(55)


class TestGlorot:
    def test_bounds(self, np_rng):
        weights = glorot_uniform((50, 80), np_rng)
        limit = np.sqrt(6.0 / (50 + 80))
        assert np.abs(weights).max() <= limit
        assert weights.dtype == np.float32

    def test_vector_shape(self, np_rng):
        assert glorot_uniform((16,), np_rng).shape == (16,)

    def test_spread_fills_range(self, np_rng):
        weights = glorot_uniform((100, 100), np_rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(weights).max() > 0.8 * limit


class TestOrthogonal:
    def test_square_orthogonality(self, np_rng):
        matrix = orthogonal((32, 32), np_rng)
        np.testing.assert_allclose(matrix @ matrix.T, np.eye(32), atol=1e-4)

    def test_rectangular_rows_orthonormal(self, np_rng):
        matrix = orthogonal((8, 32), np_rng)
        np.testing.assert_allclose(matrix @ matrix.T, np.eye(8), atol=1e-4)


class TestUniform:
    def test_scale(self, np_rng):
        weights = uniform((1000,), np_rng, scale=0.05)
        assert np.abs(weights).max() <= 0.05


class TestZeros:
    def test_zeros(self):
        out = zeros((3, 4))
        assert (out == 0).all()
        assert out.dtype == np.float32
