"""Gradient-checked tests for the LSTM cell."""

import numpy as np
import pytest

from repro.nn import Adam, LSTMCell, LSTMState

from .gradcheck import check_param_grad


@pytest.fixture
def np_rng():
    return np.random.default_rng(11)


class TestForward:
    def test_shapes(self, np_rng):
        cell = LSTMCell(3, 5, np_rng)
        state = LSTMState.zero(batch=2, hidden=5)
        x = np.zeros((2, 3), dtype=np.float32)
        nxt, cache = cell.step(x, state)
        assert nxt.h.shape == (2, 5)
        assert nxt.c.shape == (2, 5)
        assert cache.x.shape == (2, 3)

    def test_forget_bias_initialised_to_one(self, np_rng):
        cell = LSTMCell(2, 4, np_rng)
        h = cell.hidden_dim
        assert (cell.b.value[h: 2 * h] == 1.0).all()

    def test_state_evolves(self, np_rng):
        cell = LSTMCell(2, 4, np_rng)
        state = LSTMState.zero(1, 4)
        x = np.ones((1, 2), dtype=np.float32)
        first, _ = cell.step(x, state)
        second, _ = cell.step(x, first)
        assert not np.allclose(first.h, second.h)

    def test_dimension_validation(self, np_rng):
        with pytest.raises(ValueError):
            LSTMCell(0, 4, np_rng)


class TestBackward:
    def test_parameter_gradients_match_numeric(self, np_rng):
        cell = LSTMCell(3, 4, np_rng)
        x1 = np_rng.normal(size=(2, 3)).astype(np.float32)
        x2 = np_rng.normal(size=(2, 3)).astype(np.float32)
        target = np_rng.normal(size=(2, 4)).astype(np.float32)

        def loss_fn():
            state = LSTMState.zero(2, 4)
            state, _ = cell.step(x1, state)
            state, _ = cell.step(x2, state)
            return float(0.5 * np.sum((state.h - target) ** 2))

        # Analytic: run two steps, backprop through both.
        state0 = LSTMState.zero(2, 4)
        state1, cache1 = cell.step(x1, state0)
        state2, cache2 = cell.step(x2, state1)
        dh = (state2.h - target).astype(np.float32)
        dc = np.zeros_like(state2.c)
        _, dh_prev, dc_prev = cell.backward_step(dh, dc, cache2)
        cell.backward_step(dh_prev, dc_prev, cache1)

        for param in cell.parameters():
            check_param_grad(loss_fn, param, np_rng, n_checks=5, eps=1e-2,
                             rtol=8e-2, atol=2e-4)

    def test_input_gradient_shape(self, np_rng):
        cell = LSTMCell(3, 4, np_rng)
        state = LSTMState.zero(2, 4)
        x = np_rng.normal(size=(2, 3)).astype(np.float32)
        nxt, cache = cell.step(x, state)
        dx, dh, dc = cell.backward_step(np.ones_like(nxt.h), np.zeros_like(nxt.c),
                                        cache)
        assert dx.shape == (2, 3)
        assert dh.shape == (2, 4)
        assert dc.shape == (2, 4)


class TestLearning:
    def test_can_learn_to_remember_first_input(self, np_rng):
        """Train the LSTM to output the first element of a two-step sequence;
        requires carrying information through the cell state."""
        cell = LSTMCell(1, 8, np_rng)
        readout_w = np.zeros((8, 1), dtype=np.float32)
        opt = Adam(lr=0.02)
        from repro.nn import Parameter

        readout = Parameter(readout_w)
        losses = []
        for step in range(300):
            first = np_rng.choice([-1.0, 1.0], size=(8, 1)).astype(np.float32)
            second = np.zeros_like(first)
            state = LSTMState.zero(8, 8)
            state1, cache1 = cell.step(first, state)
            state2, cache2 = cell.step(second, state1)
            pred = state2.h @ readout.value
            diff = pred - first
            loss = float(np.mean(diff**2))
            losses.append(loss)
            dpred = (2.0 / diff.size) * diff
            readout.grad += state2.h.T @ dpred
            dh = dpred @ readout.value.T
            _, dh1, dc1 = cell.backward_step(dh, np.zeros((8, 8), dtype=np.float32),
                                             cache2)
            cell.backward_step(dh1, dc1, cache1)
            opt.step(cell.parameters() + [readout])
        assert np.mean(losses[-20:]) < np.mean(losses[:20]) * 0.2

    def test_run_sequence_helper(self, np_rng):
        cell = LSTMCell(2, 3, np_rng)
        xs = [np.zeros((1, 2), dtype=np.float32) for _ in range(4)]
        states, caches = cell.run_sequence(xs, LSTMState.zero(1, 3))
        assert len(states) == 4
        assert len(caches) == 4
