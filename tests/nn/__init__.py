"""Test package (enables package-relative imports in the suite)."""
