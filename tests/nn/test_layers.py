"""Gradient-checked tests for Dense and Embedding layers."""

import numpy as np
import pytest

from repro.nn import Dense, Embedding, Parameter

from .gradcheck import check_param_grad


@pytest.fixture
def np_rng():
    return np.random.default_rng(42)


class TestDenseForward:
    def test_linear_output(self, np_rng):
        layer = Dense(3, 2, rng=np_rng, activation="linear")
        x = np.ones((1, 3), dtype=np.float32)
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_relu_clamps(self, np_rng):
        layer = Dense(2, 2, rng=np_rng, activation="relu")
        layer.weight.value[...] = np.array([[1.0, -1.0], [1.0, -1.0]])
        out = layer.forward(np.array([[1.0, 1.0]], dtype=np.float32))
        assert out[0, 0] == pytest.approx(2.0)
        assert out[0, 1] == pytest.approx(0.0)

    def test_invalid_activation_rejected(self, np_rng):
        with pytest.raises(ValueError):
            Dense(2, 2, rng=np_rng, activation="gelu")

    def test_requires_rng_or_weights(self):
        with pytest.raises(ValueError):
            Dense(2, 2)

    def test_shared_weight_shape_validated(self, np_rng):
        w = Parameter(np.zeros((3, 3), dtype=np.float32))
        b = Parameter(np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError):
            Dense(2, 3, weight=w, bias=b)


class TestDenseBackward:
    @pytest.mark.parametrize("activation", ["linear", "relu"])
    def test_gradients_match_numeric(self, np_rng, activation):
        layer = Dense(4, 3, rng=np_rng, activation=activation)
        x = np_rng.normal(size=(8, 4)).astype(np.float32)
        target = np_rng.normal(size=(8, 3)).astype(np.float32)

        def loss_fn():
            out = layer.forward(x, train=False)
            return float(0.5 * np.sum((out - target) ** 2))

        out = layer.forward(x, train=True)
        layer.backward(out - target)
        check_param_grad(loss_fn, layer.weight, np_rng)
        check_param_grad(loss_fn, layer.bias, np_rng)

    def test_input_gradient(self, np_rng):
        layer = Dense(4, 3, rng=np_rng, activation="linear")
        x = np_rng.normal(size=(5, 4)).astype(np.float32)
        dout = np_rng.normal(size=(5, 3)).astype(np.float32)
        layer.forward(x, train=True)
        dx = layer.backward(dout)
        np.testing.assert_allclose(dx, dout @ layer.weight.value.T, rtol=1e-5)

    def test_backward_without_forward_raises(self, np_rng):
        layer = Dense(2, 2, rng=np_rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2), dtype=np.float32))

    def test_gradients_accumulate(self, np_rng):
        layer = Dense(2, 2, rng=np_rng, activation="linear")
        x = np.ones((1, 2), dtype=np.float32)
        dout = np.ones((1, 2), dtype=np.float32)
        layer.forward(x, train=True)
        layer.backward(dout)
        first = layer.weight.grad.copy()
        layer.forward(x, train=True)
        layer.backward(dout)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestParameterSharing:
    def test_two_layers_share_parameters(self, np_rng):
        w = Parameter(np.zeros((2, 2), dtype=np.float32))
        b = Parameter(np.zeros(2, dtype=np.float32))
        a = Dense(2, 2, weight=w, bias=b, activation="linear")
        c = Dense(2, 2, weight=w, bias=b, activation="linear")
        x = np.ones((1, 2), dtype=np.float32)
        a.forward(x, train=True)
        a.backward(np.ones((1, 2), dtype=np.float32))
        c.forward(x, train=True)
        c.backward(np.ones((1, 2), dtype=np.float32))
        # Both backward passes accumulated into the same tensor.
        np.testing.assert_allclose(w.grad, 2 * np.ones((2, 2)))


class TestEmbedding:
    def test_lookup(self, np_rng):
        emb = Embedding(5, 3, rng=np_rng)
        out = emb.forward([1, 4])
        np.testing.assert_allclose(out[0], emb.table.value[1])
        np.testing.assert_allclose(out[1], emb.table.value[4])

    def test_out_of_range_rejected(self, np_rng):
        emb = Embedding(5, 3, rng=np_rng)
        with pytest.raises(IndexError):
            emb.forward([5])

    def test_backward_scatter_adds(self, np_rng):
        emb = Embedding(4, 2, rng=np_rng)
        emb.forward([1, 1, 2], train=True)
        emb.backward(np.ones((3, 2), dtype=np.float32))
        np.testing.assert_allclose(emb.table.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.table.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(emb.table.grad[0], [0.0, 0.0])

    def test_backward_without_forward_raises(self, np_rng):
        emb = Embedding(4, 2, rng=np_rng)
        with pytest.raises(RuntimeError):
            emb.backward(np.zeros((1, 2), dtype=np.float32))


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert (p.grad == 0).all()

    def test_size(self):
        assert Parameter(np.ones((3, 4))).size == 12
