"""Tests for the frozen InferenceSession (the ONNX-runtime stand-in)."""

import numpy as np
import pytest

from repro.nn import ArchitectureSpec, InferenceSession, MultiTaskMLP


def trained_model(rng):
    spec = ArchitectureSpec(
        input_dim=5,
        shared_sizes=(12,),
        private_sizes={"a": (6,), "b": ()},
        output_dims={"a": 4, "b": 3},
    )
    return MultiTaskMLP(spec, rng=rng)


@pytest.fixture
def np_rng():
    return np.random.default_rng(21)


class TestFreeze:
    def test_float32_session_matches_model_exactly(self, np_rng):
        model = trained_model(np_rng)
        session = InferenceSession.from_model(model, weight_dtype="float32")
        x = np_rng.normal(size=(40, 5)).astype(np.float32)
        np.testing.assert_array_equal(
            session.run(x)["a"], model.predict_codes(x)["a"]
        )

    def test_float16_session_predictions_close(self, np_rng):
        model = trained_model(np_rng)
        session = InferenceSession.from_model(model, weight_dtype="float16")
        x = np_rng.normal(size=(200, 5)).astype(np.float32)
        agreement = (session.run(x)["a"] == model.predict_codes(x)["a"]).mean()
        assert agreement > 0.95

    def test_float16_halves_model_bytes(self, np_rng):
        model = trained_model(np_rng)
        half = InferenceSession.from_model(model, weight_dtype="float16").nbytes
        full = InferenceSession.from_model(model, weight_dtype="float32").nbytes
        assert half < full * 0.75

    def test_param_count_matches_model(self, np_rng):
        model = trained_model(np_rng)
        session = InferenceSession.from_model(model)
        assert session.param_count() == model.param_count()


class TestRun:
    def test_batched_run_equals_single_shot(self, np_rng):
        model = trained_model(np_rng)
        session = InferenceSession.from_model(model, weight_dtype="float32")
        x = np_rng.normal(size=(100, 5)).astype(np.float32)
        np.testing.assert_array_equal(
            session.run(x, batch_size=None)["b"],
            session.run(x, batch_size=13)["b"],
        )

    def test_run_logits_shapes(self, np_rng):
        session = InferenceSession.from_model(trained_model(np_rng))
        logits = session.run_logits(np.zeros((7, 5), dtype=np.float32))
        assert logits["a"].shape == (7, 4)
        assert logits["b"].shape == (7, 3)

    def test_tasks_property(self, np_rng):
        session = InferenceSession.from_model(trained_model(np_rng))
        assert session.tasks == ("a", "b")


class TestSerialization:
    def test_roundtrip_preserves_predictions(self, np_rng):
        model = trained_model(np_rng)
        session = InferenceSession.from_model(model)
        clone = InferenceSession.from_bytes(session.to_bytes())
        x = np_rng.normal(size=(30, 5)).astype(np.float32)
        np.testing.assert_array_equal(session.run(x)["a"], clone.run(x)["a"])
        assert clone.spec == session.spec

    def test_nbytes_equals_serialized_length(self, np_rng):
        session = InferenceSession.from_model(trained_model(np_rng))
        assert session.nbytes == len(session.to_bytes())

    def test_nbytes_memoized(self, np_rng, monkeypatch):
        """Weights are frozen, so the blob is pickled at most once."""
        session = InferenceSession.from_model(trained_model(np_rng))
        calls = []
        original = InferenceSession.to_bytes
        monkeypatch.setattr(
            InferenceSession, "to_bytes",
            lambda self: (calls.append(1), original(self))[1])
        expected = session.nbytes
        assert session.nbytes == expected
        assert repr(session)  # __repr__ paths must not re-pickle either
        assert len(calls) <= 1

    def test_from_bytes_knows_nbytes_without_repickling(self, np_rng,
                                                        monkeypatch):
        payload = InferenceSession.from_model(trained_model(np_rng)).to_bytes()
        clone = InferenceSession.from_bytes(payload)
        monkeypatch.setattr(
            InferenceSession, "to_bytes",
            lambda self: (_ for _ in ()).throw(AssertionError("re-pickled")))
        assert clone.nbytes == len(payload)
