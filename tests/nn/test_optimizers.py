"""Tests for SGD/Adam and the exponential learning-rate schedule."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, ExponentialDecay, Parameter


def quadratic_param():
    """Parameter minimizing f(w) = 0.5 * ||w||^2 (gradient = w)."""
    return Parameter(np.array([10.0, -10.0], dtype=np.float32))


class TestExponentialDecay:
    def test_constant_when_decay_one(self):
        sched = ExponentialDecay(0.1, 1.0)
        assert sched.advance() == pytest.approx(0.1)
        assert sched.advance() == pytest.approx(0.1)

    def test_decays(self):
        sched = ExponentialDecay(1.0, 0.5)
        assert sched.advance() == pytest.approx(1.0)
        assert sched.advance() == pytest.approx(0.5)
        assert sched.advance() == pytest.approx(0.25)

    def test_minimum_floor(self):
        sched = ExponentialDecay(1.0, 0.1, minimum=0.5)
        sched.advance()
        assert sched.advance() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecay(0.0)
        with pytest.raises(ValueError):
            ExponentialDecay(0.1, 0.0)
        with pytest.raises(ValueError):
            ExponentialDecay(0.1, 1.5)


class TestSGD:
    def test_converges_on_quadratic(self):
        param = quadratic_param()
        opt = SGD(lr=0.1)
        for _ in range(200):
            param.grad[...] = param.value
            opt.step([param])
        assert np.abs(param.value).max() < 1e-4

    def test_momentum_accelerates(self):
        plain, heavy = quadratic_param(), quadratic_param()
        sgd = SGD(lr=0.01)
        mom = SGD(lr=0.01, momentum=0.9)
        for _ in range(50):
            plain.grad[...] = plain.value
            sgd.step([plain])
            heavy.grad[...] = heavy.value
            mom.step([heavy])
        assert np.abs(heavy.value).max() < np.abs(plain.value).max()

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)

    def test_step_zeroes_grads(self):
        param = quadratic_param()
        param.grad[...] = 1.0
        SGD(lr=0.1).step([param])
        assert (param.grad == 0).all()


class TestAdam:
    def test_converges_on_quadratic(self):
        param = quadratic_param()
        opt = Adam(lr=0.5)
        for _ in range(300):
            param.grad[...] = param.value
            opt.step([param])
        assert np.abs(param.value).max() < 1e-3

    def test_scale_invariance_of_first_step(self):
        # Adam's first step is ~lr regardless of gradient magnitude.
        small, large = quadratic_param(), quadratic_param()
        opt1, opt2 = Adam(lr=0.1), Adam(lr=0.1)
        small.grad[...] = 1e-3
        large.grad[...] = 1e3
        opt1.step([small])
        opt2.step([large])
        np.testing.assert_allclose(
            np.abs(10.0 - small.value[0]), np.abs(10.0 - large.value[0]), rtol=1e-3
        )

    def test_state_keyed_per_parameter(self):
        a, b = quadratic_param(), quadratic_param()
        opt = Adam(lr=0.1)
        for _ in range(3):
            a.grad[...] = a.value
            b.grad[...] = b.value
            opt.step([a, b])
        assert len(opt._state) == 2

    def test_schedule_integration(self):
        param = quadratic_param()
        opt = Adam(lr=ExponentialDecay(0.1, 0.9))
        param.grad[...] = param.value
        opt.step([param])
        assert opt.schedule.steps == 1
