"""Numeric gradient checking helper shared by the nn tests."""

import numpy as np


def numeric_grad(fn, param_value, indices, eps=1e-4):
    """Central-difference gradient of scalar ``fn()`` w.r.t. selected entries
    of ``param_value`` (modified in place and restored)."""
    grads = []
    flat = param_value.reshape(-1)
    for idx in indices:
        original = flat[idx]
        flat[idx] = original + eps
        plus = fn()
        flat[idx] = original - eps
        minus = fn()
        flat[idx] = original
        grads.append((plus - minus) / (2 * eps))
    return np.array(grads)


def check_param_grad(fn, param, rng, n_checks=6, eps=1e-3, rtol=5e-2, atol=1e-4):
    """Assert analytic ``param.grad`` matches numeric gradients of ``fn``.

    ``fn`` must recompute the scalar loss from scratch (no grad side effects
    needed).  ``param.grad`` must already hold the analytic gradient.
    """
    total = param.value.size
    indices = rng.choice(total, size=min(n_checks, total), replace=False)
    numeric = numeric_grad(fn, param.value, indices, eps=eps)
    analytic = param.grad.reshape(-1)[indices]
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
