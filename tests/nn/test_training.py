"""Tests for the Trainer loop and early stopping."""

import numpy as np
import pytest

from repro.nn import Adam, ArchitectureSpec, MultiTaskMLP, Trainer


def make_problem(rng, n=64):
    x = rng.normal(size=(n, 4)).astype(np.float32)
    labels = {"t": (x[:, 0] > 0).astype(np.int64)}
    spec = ArchitectureSpec(4, (8,), {"t": ()}, {"t": 2})
    return x, labels, MultiTaskMLP(spec, rng=rng)


class TestFit:
    def test_loss_decreases(self, rng):
        x, labels, model = make_problem(rng)
        trainer = Trainer(model, Adam(0.01), batch_size=16, tol=0.0, rng=rng)
        result = trainer.fit(x, labels, epochs=30)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_early_stopping_triggers(self, rng):
        x, labels, model = make_problem(rng)
        trainer = Trainer(model, Adam(0.01), batch_size=64, tol=1e9, rng=rng)
        result = trainer.fit(x, labels, epochs=50)
        assert result.converged
        assert result.epochs_run == 2  # needs two epochs to compare deltas

    def test_no_early_stop_with_zero_tol(self, rng):
        x, labels, model = make_problem(rng)
        trainer = Trainer(model, Adam(0.01), batch_size=64, tol=0.0, rng=rng)
        result = trainer.fit(x, labels, epochs=5)
        assert result.epochs_run == 5
        assert not result.converged

    def test_empty_dataset(self, rng):
        _, _, model = make_problem(rng)
        trainer = Trainer(model, rng=rng)
        result = trainer.fit(np.empty((0, 4), dtype=np.float32),
                             {"t": np.empty(0, dtype=np.int64)}, epochs=3)
        assert result.converged
        assert result.epochs_run == 0

    def test_label_length_validated(self, rng):
        x, _, model = make_problem(rng)
        trainer = Trainer(model, rng=rng)
        with pytest.raises(ValueError):
            trainer.fit(x, {"t": np.zeros(3, dtype=np.int64)}, epochs=1)

    def test_batch_size_validated(self, rng):
        _, _, model = make_problem(rng)
        with pytest.raises(ValueError):
            Trainer(model, batch_size=0)

    def test_final_loss_property(self, rng):
        x, labels, model = make_problem(rng)
        trainer = Trainer(model, Adam(0.01), batch_size=32, tol=0.0, rng=rng)
        result = trainer.fit(x, labels, epochs=3)
        assert result.final_loss == result.epoch_losses[-1]

    def test_deterministic_given_seed(self):
        rng_a = np.random.default_rng(9)
        x, labels, model_a = make_problem(rng_a)
        trainer_a = Trainer(model_a, Adam(0.01), batch_size=16, tol=0.0,
                            rng=np.random.default_rng(1))
        res_a = trainer_a.fit(x, labels, epochs=5)

        rng_b = np.random.default_rng(9)
        x_b, labels_b, model_b = make_problem(rng_b)
        trainer_b = Trainer(model_b, Adam(0.01), batch_size=16, tol=0.0,
                            rng=np.random.default_rng(1))
        res_b = trainer_b.fit(x_b, labels_b, epochs=5)
        np.testing.assert_allclose(res_a.epoch_losses, res_b.epoch_losses)
