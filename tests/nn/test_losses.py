"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn import accuracy, mse, softmax_cross_entropy

from .gradcheck import numeric_grad


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((4, 8))
        loss, _ = softmax_cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss == pytest.approx(np.log(8), rel=1e-6)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        _, grad = softmax_cross_entropy(logits, labels)

        def fn():
            return softmax_cross_entropy(logits, labels)[0]

        idx = rng.choice(logits.size, size=8, replace=False)
        numeric = numeric_grad(fn, logits, idx, eps=1e-5)
        np.testing.assert_allclose(grad.reshape(-1)[idx], numeric, rtol=1e-3,
                                   atol=1e-6)

    def test_gradient_rows_sum_to_zero(self):
        logits = np.random.default_rng(4).normal(size=(3, 4))
        _, grad = softmax_cross_entropy(logits, np.array([0, 1, 2]))
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(3), atol=1e-7)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(2, dtype=np.int64))


class TestMSE:
    def test_zero_when_equal(self):
        x = np.ones((2, 2))
        loss, grad = mse(x, x.copy())
        assert loss == 0.0
        assert (grad == 0).all()

    def test_value_and_grad(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        loss, grad = mse(pred, target)
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [[1.0, 2.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((2, 3)))


class TestAccuracy:
    def test_all_correct(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 1.0

    def test_half_correct(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 1])) == 0.5

    def test_empty_is_perfect(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=np.int64)) == 1.0
