"""Smoke tests: every example script imports cleanly against the API.

Examples are guarded by ``if __name__ == "__main__"``, so importing them
exercises their imports and top-level API references without the training
cost of running them (the benchmark suite covers runtime behaviour).
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def example_files():
    return sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )


@pytest.mark.parametrize("filename", example_files())
def test_example_imports(filename):
    path = os.path.join(EXAMPLES_DIR, filename)
    name = f"example_{filename[:-3]}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{filename} lacks a main()"
    finally:
        sys.modules.pop(name, None)


def test_expected_examples_present():
    names = example_files()
    for required in ("quickstart.py", "edge_retail_orders.py",
                     "crop_lookup.py", "architecture_search.py",
                     "star_schema.py", "lazy_updates.py"):
        assert required in names
