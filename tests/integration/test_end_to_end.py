"""Integration tests: every representation agrees on every workload.

These cross-module tests treat DeepMapping and all baselines as black-box
key-value stores and require identical answers over shared workloads,
under generous and hostile memory budgets alike.
"""

import numpy as np
import pytest

from repro import DeepMapping, DeepMappingConfig
from repro.baselines import make_baseline
from repro.bench import key_batches
from repro.data import synthetic, tpcds, tpch
from repro.storage import BufferPool

FAST = DeepMappingConfig(epochs=15, batch_size=512, shared_sizes=(32,),
                         private_sizes=(16,), aux_partition_bytes=8192)

STORES = ["AB", "ABC-D", "ABC-G", "ABC-Z", "ABC-L", "HB", "HBC-Z", "HBC-L"]


@pytest.fixture(scope="module")
def orders():
    return tpch.generate("orders", scale=0.15, seed=21)


@pytest.fixture(scope="module")
def dm(orders):
    return DeepMapping.fit(orders, FAST)


class TestCrossSystemAgreement:
    @pytest.mark.parametrize("store_name", STORES)
    def test_baseline_agrees_with_deepmapping(self, orders, dm, store_name):
        store = make_baseline(store_name,
                              target_partition_bytes=8192).build(orders)
        batch = key_batches(orders, 400, repeats=1, seed=3)[0]
        a = dm.lookup(batch)
        b = store.lookup(batch)
        np.testing.assert_array_equal(a.found, b.found)
        for col in orders.value_columns:
            assert all(
                str(a.values[col][i]) == str(b.values[col][i])
                for i in range(400) if a.found[i]
            ), col

    def test_agreement_on_misses(self, orders, dm):
        probe = {"o_orderkey": orders.column("o_orderkey")[:100] + 1}
        store = make_baseline("ABC-Z").build(orders)
        assert not dm.lookup(probe).found.any()
        assert not store.lookup(probe).found.any()


class TestMemoryPressureInvariance:
    """Answers must not depend on the pool budget — only latency may."""

    @pytest.mark.parametrize("budget", [None, 64 * 1024, 4 * 1024, 256])
    def test_array_store_budget_invariance(self, orders, budget):
        pool = BufferPool(budget_bytes=budget)
        store = make_baseline("ABC-Z", target_partition_bytes=4096,
                              pool=pool).build(orders)
        batch = key_batches(orders, 300, repeats=1, seed=4)[0]
        result = store.lookup(batch)
        reference = make_baseline("AB").build(orders).lookup(batch)
        np.testing.assert_array_equal(result.found, reference.found)
        for col in orders.value_columns:
            assert all(str(x) == str(y) for x, y in
                       zip(result.values[col], reference.values[col]))

    @pytest.mark.parametrize("budget", [None, 16 * 1024, 512])
    def test_deepmapping_budget_invariance(self, orders, budget):
        pool = BufferPool(budget_bytes=budget)
        dm = DeepMapping.fit(orders, FAST, pool=pool)
        batch = key_batches(orders, 300, repeats=1, seed=4)[0]
        result = dm.lookup(batch)
        assert result.found.all()
        idx = np.searchsorted(orders.column("o_orderkey"),
                              batch["o_orderkey"])
        for col in orders.value_columns:
            np.testing.assert_array_equal(result.values[col],
                                          orders.column(col)[idx])


class TestLifecycleRoundtrip:
    def test_modify_save_load_modify(self, tmp_path):
        table = synthetic.multi_column(600, "high")
        dm = DeepMapping.fit(table, DeepMappingConfig(
            epochs=30, batch_size=256, shared_sizes=(32,),
            private_sizes=(16,), key_headroom_fraction=1.0))
        dm.delete({"key": table.column("key")[:50]})
        batch = synthetic.insert_batch(table, 40, "high")
        dm.insert(batch)

        path = str(tmp_path / "m.dm")
        dm.save(path)
        clone = DeepMapping.load(path)

        # The clone carries the modifications...
        assert not clone.lookup({"key": table.column("key")[:50]}).found.any()
        assert clone.lookup({"key": batch.column("key")}).found.all()
        # ...and keeps accepting new ones.
        clone.delete({"key": batch.column("key")[:10]})
        assert not clone.lookup({"key": batch.column("key")[:10]}).found.any()

    def test_rebuild_preserves_equivalence_with_dict(self):
        table = synthetic.multi_column(500, "low")
        dm = DeepMapping.fit(table, DeepMappingConfig(
            epochs=10, batch_size=256, shared_sizes=(32,), private_sizes=(16,),
            key_headroom_fraction=1.0, retrain_threshold_bytes=1))
        model = {int(k): tuple(int(table.column(f"v{j}")[i]) for j in range(4))
                 for i, k in enumerate(table.column("key"))}
        batch = synthetic.insert_batch(table, 50, "low")
        dm.insert(batch)  # certainly triggers a retrain (1-byte threshold)
        for i, k in enumerate(batch.column("key")):
            model[int(k)] = tuple(int(batch.column(f"v{j}")[i])
                                  for j in range(4))
        assert dm.tracker.total_retrains >= 1
        probe = np.array(sorted(model), dtype=np.int64)
        result = dm.lookup({"key": probe})
        assert result.found.all()
        for j in range(4):
            want = np.array([model[int(k)][j] for k in probe])
            np.testing.assert_array_equal(result.values[f"v{j}"], want)


class TestTpcdsEndToEnd:
    def test_customer_demographics_flagship(self):
        """The paper's flagship result: the cross-product table collapses
        into a tiny structure while staying exactly queryable."""
        table = tpcds.generate("customer_demographics", scale=0.15)
        dm = DeepMapping.fit(table, DeepMappingConfig(
            epochs=120, batch_size=512))
        report = dm.size_report()
        assert report.compression_ratio < 0.5
        result = dm.lookup({"cd_demo_sk": table.column("cd_demo_sk")})
        assert result.found.all()
        for col in table.value_columns:
            np.testing.assert_array_equal(result.values[col],
                                          table.column(col))
