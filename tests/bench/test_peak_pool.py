"""Tests for run-time memory footprint reporting (peak pool bytes)."""

import numpy as np

from repro.bench import (
    SystemResult,
    format_storage_latency_table,
    run_comparison,
)
from repro.data import synthetic


def test_peak_pool_recorded_and_bounded():
    table = synthetic.single_column(3000, "low")
    budget = 8 * 1024
    results = run_comparison(
        table, systems=["ABC-Z"], batch_sizes=[200], repeats=1,
        memory_budget=budget, partition_bytes=2048,
    )
    peak = results[0].peak_pool_bytes
    assert 0 < peak <= budget


def test_unbounded_pool_peak_reflects_working_set():
    table = synthetic.single_column(3000, "low")
    results = run_comparison(
        table, systems=["AB"], batch_sizes=[500], repeats=1,
        memory_budget=None, partition_bytes=2048,
    )
    assert results[0].peak_pool_bytes > 0


def test_report_includes_peak_column():
    result = SystemResult("DM-Z", storage_bytes=1024,
                          latencies={10: 0.001}, peak_pool_bytes=2048)
    out = format_storage_latency_table([result], [10], "T")
    assert "peak pool (KB)" in out
    assert "2.00" in out


def test_report_can_omit_peak_column():
    result = SystemResult("DM-Z", storage_bytes=1024, latencies={10: 0.001})
    out = format_storage_latency_table([result], [10], "T",
                                       include_peak=False)
    assert "peak pool" not in out


def test_deepmapping_peak_below_baseline_under_pressure():
    """The paper's run-time footprint claim: the DeepMapping working set
    (its small aux partitions) stays below an array store's."""
    table = synthetic.multi_column(6000, "high")
    from repro.core import DeepMappingConfig

    config = DeepMappingConfig(epochs=100, batch_size=512)
    results = run_comparison(
        table, systems=["AB", "DM-Z"], batch_sizes=[1000], repeats=1,
        memory_budget=None, dm_config=config, partition_bytes=8192,
    )
    by_name = {r.system: r for r in results}
    assert (by_name["DM-Z"].peak_pool_bytes
            < by_name["AB"].peak_pool_bytes)
