"""Tests for benchmark workload generation."""

import numpy as np
import pytest

from repro.bench import delete_batch, key_batches, random_key_batch
from repro.data import synthetic, tpch


@pytest.fixture(scope="module")
def table():
    return synthetic.single_column(500, "low")


class TestRandomKeyBatch:
    def test_size_and_membership(self, table, rng):
        batch = random_key_batch(table, 64, rng)
        assert batch["key"].size == 64
        assert np.isin(batch["key"], table.column("key")).all()

    def test_composite_key_batch(self, rng):
        lineitem = tpch.generate("lineitem", scale=0.02)
        batch = random_key_batch(lineitem, 32, rng)
        assert set(batch) == {"l_orderkey", "l_linenumber"}
        assert batch["l_orderkey"].size == 32


class TestKeyBatches:
    def test_repeats(self, table):
        batches = key_batches(table, 16, repeats=5)
        assert len(batches) == 5

    def test_deterministic(self, table):
        a = key_batches(table, 16, repeats=2, seed=4)
        b = key_batches(table, 16, repeats=2, seed=4)
        np.testing.assert_array_equal(a[0]["key"], b[0]["key"])

    def test_batch_size_changes_stream(self, table):
        a = key_batches(table, 16, repeats=1, seed=4)
        b = key_batches(table, 17, repeats=1, seed=4)
        assert a[0]["key"].size != b[0]["key"].size


class TestDeleteBatch:
    def test_fraction(self, table, rng):
        batch = delete_batch(table, 0.1, rng)
        assert batch["key"].size == 50
        assert np.unique(batch["key"]).size == 50

    def test_fraction_validated(self, table, rng):
        with pytest.raises(ValueError):
            delete_batch(table, 0.0, rng)
        with pytest.raises(ValueError):
            delete_batch(table, 1.5, rng)
