"""Tests for the benchmark measurement harness."""

import numpy as np
import pytest

from repro.bench import (
    build_system,
    dm_with_codec,
    key_batches,
    measure_lookup,
    run_comparison,
    storage_of,
)
from repro.core import DeepMapping, DeepMappingConfig
from repro.data import synthetic


@pytest.fixture(scope="module")
def table():
    return synthetic.single_column(600, "high")


FAST_DM = DeepMappingConfig(epochs=20, batch_size=256, shared_sizes=(32,),
                            private_sizes=(16,))


class TestBuildSystem:
    def test_builds_baseline(self, table):
        store = build_system("ABC-Z", table)
        assert store.name == "ABC-Z"
        assert storage_of(store) > 0

    def test_builds_dm(self, table):
        dm = build_system("DM-Z", table, dm_config=FAST_DM)
        assert isinstance(dm, DeepMapping)
        assert dm.config.aux_codec == "zstd"

    def test_dm_template_reuse(self, table):
        template = build_system("DM-Z", table, dm_config=FAST_DM)
        clone = build_system("DM-L", table, dm_template=template)
        assert clone.config.aux_codec == "lzma"
        assert clone.session is template.session  # model shared, not retrained


class TestDmWithCodec:
    def test_clone_answers_identically(self, table):
        dm = DeepMapping.fit(table, FAST_DM)
        clone = dm_with_codec(dm, "lzma")
        probe = {"key": table.column("key")[:100]}
        a, b = dm.lookup(probe), clone.lookup(probe)
        np.testing.assert_array_equal(a.found, b.found)
        np.testing.assert_array_equal(a.values["value"], b.values["value"])

    def test_lzma_aux_not_larger(self, table):
        low = synthetic.single_column(2000, "low")
        dm = DeepMapping.fit(low, FAST_DM)
        clone = dm_with_codec(dm, "lzma")
        assert clone.aux.stored_bytes() <= dm.aux.stored_bytes()


class TestMeasure:
    def test_measure_lookup_positive(self, table):
        store = build_system("AB", table)
        batches = key_batches(table, 32, repeats=2)
        seconds = measure_lookup(store, batches)
        assert seconds is not None and seconds > 0

    def test_failed_system_reports_none(self, table):
        from repro.storage import BufferPool

        pool = BufferPool(budget_bytes=64, strict=True)
        ds = build_system("DS", table, pool=pool)
        batches = key_batches(table, 8, repeats=1)
        assert measure_lookup(ds, batches) is None


class TestRunComparison:
    def test_full_comparison_rows(self, table):
        results = run_comparison(
            table,
            systems=["AB", "ABC-Z", "DM-Z", "DM-L"],
            batch_sizes=[16, 64],
            dm_config=FAST_DM,
            repeats=1,
            partition_bytes=4096,
        )
        assert [r.system for r in results] == ["AB", "ABC-Z", "DM-Z", "DM-L"]
        for result in results:
            assert result.storage_bytes > 0
            assert set(result.latencies) == {16, 64}
            assert all(v is not None for v in result.latencies.values())

    def test_ds_fails_under_tight_budget(self, table):
        results = run_comparison(
            table,
            systems=["DS"],
            batch_sizes=[8],
            memory_budget=64,
            repeats=1,
        )
        assert results[0].latencies[8] is None

    def test_breakdown_collected(self, table):
        results = run_comparison(
            table, systems=["ABC-Z"], batch_sizes=[64],
            repeats=1, partition_bytes=1024,
        )
        assert any(k.endswith("_seconds") for k in results[0].breakdown)
