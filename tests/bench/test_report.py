"""Tests for report formatting."""

import numpy as np

from repro.bench import (
    SystemResult,
    format_breakdown,
    format_series,
    format_storage_latency_table,
    format_table,
    running_average,
)


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_none_renders_failed(self):
        out = format_table(["x"], [[None]])
        assert "failed" in out

    def test_float_formatting(self):
        out = format_table(["x"], [[0.12345], [1234.5]])
        assert "0.1234" in out or "0.1235" in out
        assert "1,234" in out or "1,235" in out


class TestStorageLatencyTable:
    def test_paper_row_shape(self):
        result = SystemResult("DM-Z", storage_bytes=2048,
                              latencies={10: 0.001, 100: None})
        out = format_storage_latency_table([result], [10, 100], "Table I")
        assert "DM-Z" in out
        assert "B=10 (ms)" in out
        assert "failed" in out


class TestBreakdown:
    def test_only_nonzero_buckets_shown(self):
        out = format_breakdown("AB", {"io_seconds": 0.5,
                                      "decompress_seconds": 0.0})
        assert "io=" in out
        assert "decompress" not in out

    def test_percentages_sum(self):
        out = format_breakdown("X", {"io_seconds": 0.5,
                                     "search_seconds": 0.5})
        assert "(50%)" in out


class TestSeries:
    def test_pairs(self):
        out = format_series("DM", [1, 2], [0.5, None])
        assert "1: 0.5" in out
        assert "2: failed" in out


class TestRunningAverage:
    def test_window_one_is_identity(self):
        values = [1.0, 2.0, 3.0]
        np.testing.assert_allclose(running_average(values, 1), values)

    def test_smooths_toward_mean(self):
        values = [1.0, -1.0] * 50
        smooth = running_average(values, 10)
        assert np.abs(smooth[20:]).max() < 0.6

    def test_preserves_length(self):
        assert running_average(np.arange(17.0), 5).size == 17

    def test_empty(self):
        assert running_average([], 5).size == 0
