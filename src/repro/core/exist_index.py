"""Existence index ``V_exist`` over the flattened key domain.

One bit per possible key (paper Sec. IV-B): set bits mark keys present in
the data.  This is what lets DeepMapping refuse to hallucinate values for
keys it has never seen — the model would happily emit a prediction for any
input, so every lookup is masked through this vector first (Algorithm 1,
line 5).  Offline, the vector is stored compressed; the paper notes the
compressed size depends on the randomness of the set bits (Sec. V-C).

Two implementations share the interface:

- :class:`ExistenceIndex` — the paper's dense bit vector, O(domain) bits;
- :class:`SparseExistenceIndex` — a sorted key array for domains much
  larger than the key count (e.g. wide composite keys), O(n) words, still
  exact (a Bloom filter would reintroduce hallucinations).

:func:`make_existence_index` picks automatically; :func:`load_existence`
restores either from bytes.

Serialization comes in two shapes.  ``to_bytes`` / ``load_existence`` is
the legacy nested-``bytes`` form (tagged, zlib-compressed) still read
from old payloads.  ``to_state`` / :func:`existence_from_state` is the
zero-copy form: a small dict whose arrays stay first-class, so the RZC2
container exports them as out-of-band segments and a ``writable=False``
cold open wraps the mmap bytes directly — no decompression, no copy.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..storage.bitvector import BitVector

__all__ = [
    "ExistenceIndex",
    "SparseExistenceIndex",
    "make_existence_index",
    "load_existence",
    "existence_from_state",
]

#: Use the dense bit vector while domain_size <= this multiple of the
#: expected key count (the break-even between 1 bit/domain-slot and
#: ~64 bits/key, with margin for insertions).
_DENSE_DOMAIN_FACTOR = 64
#: Never allocate a dense vector above this domain size (512 MB of bits).
_MAX_DENSE_DOMAIN = 1 << 32


class ExistenceIndex:
    """Bit-vector existence filter over ``[0, domain_size)`` flat keys."""

    def __init__(self, domain_size: int):
        if domain_size <= 0:
            raise ValueError("domain_size must be positive")
        self._bits = BitVector(domain_size)

    # ------------------------------------------------------------------
    @property
    def domain_size(self) -> int:
        """Number of addressable keys."""
        return len(self._bits)

    def set_batch(self, flat_keys: np.ndarray) -> None:
        """Mark keys as existing."""
        self._bits.set_many(flat_keys, True)

    def clear_batch(self, flat_keys: np.ndarray) -> None:
        """Mark keys as deleted."""
        self._bits.set_many(flat_keys, False)

    def test_batch(self, flat_keys: np.ndarray) -> np.ndarray:
        """Boolean existence mask for the queried keys."""
        return self._bits.test_many(flat_keys)

    def count(self) -> int:
        """Number of live keys."""
        return self._bits.count()

    def existing_keys(self) -> np.ndarray:
        """All live flat keys, ascending (used by rebuild/scan paths)."""
        return np.flatnonzero(self._bits.to_bools()).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """In-memory packed size."""
        return self._bits.nbytes

    def stored_bytes(self) -> int:
        """Offline (compressed) size — the ``size(V_exist)`` term of Eq. 1."""
        return len(zlib.compress(self._bits.to_bytes(), 1))

    def to_bytes(self) -> bytes:
        """Serialize (compressed, tagged dense)."""
        return b"D" + zlib.compress(self._bits.to_bytes(), 1)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ExistenceIndex":
        """Inverse of :meth:`to_bytes`."""
        if payload[:1] == b"D":
            payload = payload[1:]
        bits = BitVector.from_bytes(zlib.decompress(payload))
        index = cls.__new__(cls)
        index._bits = bits
        return index

    def to_state(self) -> dict:
        """Array-first state for the zero-copy container.

        The packed bit buffer rides as a plain ``uint8`` array (shared,
        not copied here — the container snapshots it at pack time), so a
        read-only open wraps the mmap bytes with zero decompression.
        """
        return {"kind": "dense", "size": self.domain_size,
                "bits": self._bits.packed}

    def __repr__(self) -> str:
        return f"ExistenceIndex(domain={self.domain_size}, live={self.count()})"


class SparseExistenceIndex:
    """Exact existence filter as a sorted array of live flat keys.

    Drop-in for :class:`ExistenceIndex` when ``domain_size`` dwarfs the
    key count: membership is a binary search instead of a bit probe, and
    the footprint is O(live keys) instead of O(domain).
    """

    def __init__(self, domain_size: int):
        if domain_size <= 0:
            raise ValueError("domain_size must be positive")
        self._domain = int(domain_size)
        self._keys = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def domain_size(self) -> int:
        """Number of addressable keys."""
        return self._domain

    def set_batch(self, flat_keys: np.ndarray) -> None:
        """Mark keys as existing."""
        flat_keys = self._checked(flat_keys)
        if flat_keys.size:
            self._keys = np.union1d(self._keys, flat_keys)

    def clear_batch(self, flat_keys: np.ndarray) -> None:
        """Mark keys as deleted."""
        flat_keys = self._checked(flat_keys)
        if flat_keys.size:
            self._keys = np.setdiff1d(self._keys, flat_keys,
                                      assume_unique=False)

    def test_batch(self, flat_keys: np.ndarray) -> np.ndarray:
        """Boolean existence mask for the queried keys."""
        flat_keys = self._checked(flat_keys)
        if self._keys.size == 0:
            return np.zeros(flat_keys.size, dtype=bool)
        pos = np.searchsorted(self._keys, flat_keys)
        pos = np.minimum(pos, self._keys.size - 1)
        return self._keys[pos] == flat_keys

    def count(self) -> int:
        """Number of live keys."""
        return int(self._keys.size)

    def existing_keys(self) -> np.ndarray:
        """All live flat keys, ascending."""
        return self._keys.copy()

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """In-memory size of the key array."""
        return int(self._keys.nbytes)

    def stored_bytes(self) -> int:
        """Offline size: delta-encoded, compressed keys.

        Counts only the compressed key payload — not the 1-byte format
        tag or the 8-byte domain header — so ``size(V_exist)`` in Eq. 1
        is accounted exactly like the dense variant's (which likewise
        excludes its serialization tag).
        """
        return len(self._compressed_keys())

    def _compressed_keys(self) -> bytes:
        deltas = np.diff(self._keys, prepend=np.int64(0))
        return zlib.compress(deltas.tobytes(), 1)

    def to_bytes(self) -> bytes:
        """Serialize (delta-encoded + compressed, tagged sparse)."""
        return (b"S" + self._domain.to_bytes(8, "little")
                + self._compressed_keys())

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SparseExistenceIndex":
        """Inverse of :meth:`to_bytes`."""
        if payload[:1] == b"S":
            payload = payload[1:]
        domain = int.from_bytes(payload[:8], "little")
        deltas = np.frombuffer(zlib.decompress(payload[8:]), dtype=np.int64)
        index = cls(domain)
        index._keys = np.cumsum(deltas).astype(np.int64)
        return index

    def to_state(self) -> dict:
        """Array-first state for the zero-copy container (keys stay a
        first-class ``int64`` array; no delta coding, no compression)."""
        return {"kind": "sparse", "domain": self._domain,
                "keys": self._keys}

    def _checked(self, flat_keys) -> np.ndarray:
        arr = np.asarray(flat_keys, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self._domain):
            raise IndexError("flat key outside the domain")
        return arr

    def __repr__(self) -> str:
        return (f"SparseExistenceIndex(domain={self._domain}, "
                f"live={self.count()})")


def make_existence_index(domain_size: int, expected_keys: int):
    """Pick dense vs. sparse for a domain and expected population."""
    dense_affordable = domain_size <= _MAX_DENSE_DOMAIN
    dense_economic = domain_size <= max(expected_keys, 1) * _DENSE_DOMAIN_FACTOR
    if dense_affordable and dense_economic:
        return ExistenceIndex(domain_size)
    return SparseExistenceIndex(domain_size)


def load_existence(payload: bytes):
    """Restore whichever existence index :meth:`to_bytes` produced."""
    tag = payload[:1]
    if tag == b"S":
        return SparseExistenceIndex.from_bytes(payload)
    return ExistenceIndex.from_bytes(payload)


def existence_from_state(state: dict):
    """Restore whichever index ``to_state`` produced — **without copying**.

    The arrays are adopted as-is: under a ``writable=False`` open they
    are read-only views straight into the container mmap (mutation
    raises, per the store contract); under a writable load the container
    hands over private bytearray-backed buffers, so in-place updates
    work exactly as before.
    """
    kind = state["kind"]
    if kind == "sparse":
        index = SparseExistenceIndex(int(state["domain"]))
        index._keys = np.asarray(state["keys"], dtype=np.int64)
        return index
    if kind != "dense":
        raise ValueError(f"unknown existence-index kind {kind!r}")
    index = ExistenceIndex.__new__(ExistenceIndex)
    index._bits = BitVector.wrap(int(state["size"]), state["bits"])
    return index
