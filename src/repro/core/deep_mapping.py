"""The DeepMapping hybrid structure (paper Sec. IV).

A :class:`DeepMapping` couples four artifacts:

1. ``M`` — a frozen multi-task neural network memorizing most of the
   key→value mapping (:class:`~repro.nn.inference.InferenceSession`);
2. ``T_aux`` — a compressed auxiliary table holding the rows ``M`` gets
   wrong (:class:`~repro.core.aux_table.AuxiliaryTable`);
3. ``V_exist`` — an existence bit vector over the flattened key domain
   (:class:`~repro.core.exist_index.ExistenceIndex`);
4. ``f_decode`` — the label-code→value decode map
   (:class:`~repro.data.encoding.DecodeMap`).

Together they answer exact-match lookups losslessly (Algorithm 1), support
insert/delete/update without retraining (Algorithms 3–5), and occupy a
fraction of the raw data's footprint when key-value structure exists.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from ..data.encoding import CompositeKeyCodec, DecodeMap, KeyEncoder
from ..data.table import ColumnTable
from ..nn.compiled import CompiledSession
from ..nn.inference import InferenceSession
from ..nn.multitask import ArchitectureSpec, MultiTaskMLP
from ..nn.optimizers import Adam, ExponentialDecay
from ..nn.training import Trainer
from ..storage import zerocopy
from ..resilience.errors import StoreNotFoundError
from ..storage.backends import read_blob_view, resolve_blob_url
from ..storage.blob_cache import payload_cache
from ..storage.buffer_pool import BufferPool
from ..storage.disk import DiskStore
from ..storage.stats import StoreStats
from ..store.deprecation import warn_once
from ..store.executors import (ExecutorStrategy, SerialStrategy,
                               make_executor)
from .aux_table import AuxiliaryTable
from .config import DeepMappingConfig
from .exist_index import (ExistenceIndex, existence_from_state,
                          load_existence, make_existence_index)
from .modify import (MIN_ROWS_FOR_RATIO_RETRAIN, ModificationTracker,
                     estimate_batch_bytes)

__all__ = ["DeepMapping", "LookupPlan", "LookupResult", "SizeReport",
           "normalize_keys", "normalize_rows"]

KeysLike = Union[Dict[str, np.ndarray], ColumnTable, np.ndarray, list]
RowsLike = Union[Dict[str, np.ndarray], ColumnTable]


def normalize_keys(keys: KeysLike, key_names: Tuple[str, ...]) -> Dict[str, np.ndarray]:
    """Coerce any accepted key shape to a name->array dict.

    Shared by every mapping facade (monolithic and sharded) so they accept
    identical inputs: a ColumnTable, a dict of columns, a flat array for a
    single-column key, or an (n, k) array for a composite key.
    """
    if isinstance(keys, ColumnTable):
        return {k: keys.column(k) for k in key_names}
    if isinstance(keys, dict):
        missing = [k for k in key_names if k not in keys]
        if missing:
            raise KeyError(f"missing key columns: {missing}")
        return {k: np.asarray(keys[k]) for k in key_names}
    arr = np.asarray(keys)
    if len(key_names) == 1:
        return {key_names[0]: arr.reshape(-1)}
    if arr.ndim == 2 and arr.shape[1] == len(key_names):
        return {k: arr[:, i] for i, k in enumerate(key_names)}
    raise ValueError(
        f"cannot interpret keys of shape {arr.shape} for "
        f"composite key {key_names}"
    )


def normalize_rows(
    rows: RowsLike,
    key_names: Tuple[str, ...],
    value_names: Tuple[str, ...],
) -> Dict[str, np.ndarray]:
    """Coerce full rows (keys + values) to a name->array dict, validating
    that exactly the expected columns are supplied."""
    if isinstance(rows, ColumnTable):
        columns = rows.columns_dict()
    else:
        columns = {n: np.asarray(v) for n, v in rows.items()}
    expected = set(key_names) | set(value_names)
    if set(columns) != expected:
        raise ValueError(
            f"rows must supply exactly the columns {sorted(expected)}; "
            f"got {sorted(columns)}"
        )
    return columns


@dataclass
class LookupResult:
    """Outcome of a batch lookup.

    ``found[i]`` is False for keys absent from the data (the paper's NULL);
    ``values[col][i]`` is only meaningful where ``found[i]`` is True.
    """

    found: np.ndarray
    values: Dict[str, np.ndarray]

    def __len__(self) -> int:
        return int(self.found.size)

    def rows(self) -> Iterator[Optional[Dict[str, object]]]:
        """Iterate rows as dicts, yielding ``None`` for missing keys."""
        for i in range(self.found.size):
            if self.found[i]:
                yield {name: arr[i] for name, arr in self.values.items()}
            else:
                yield None


@dataclass
class SizeReport:
    """Storage breakdown of a hybrid structure (paper Fig. 6 / Eq. 1)."""

    model_bytes: int
    aux_bytes: int
    exist_bytes: int
    decode_bytes: int
    dataset_bytes: int
    n_rows: int
    n_in_aux: int

    @property
    def total_bytes(self) -> int:
        """size(M) + size(T_aux) + size(V_exist) + size(f_decode)."""
        return (self.model_bytes + self.aux_bytes + self.exist_bytes
                + self.decode_bytes)

    @property
    def compression_ratio(self) -> float:
        """Eq. 1: total hybrid size over raw dataset size (lower is better)."""
        if self.dataset_bytes == 0:
            return float("inf")
        return self.total_bytes / self.dataset_bytes

    @property
    def memorized_fraction(self) -> float:
        """Fraction of live tuples served by the model alone (Fig. 6)."""
        if self.n_rows == 0:
            return 1.0
        return 1.0 - self.n_in_aux / self.n_rows

    def breakdown(self) -> Dict[str, float]:
        """Percent of the hybrid size per component."""
        total = max(self.total_bytes, 1)
        return {
            "model": 100.0 * self.model_bytes / total,
            "aux_table": 100.0 * self.aux_bytes / total,
            "exist_vector": 100.0 * self.exist_bytes / total,
            "decode_map": 100.0 * self.decode_bytes / total,
        }


class LookupPlan:
    """One batched lookup (Algorithm 1), decomposed into explicit stages.

    The stages and their data dependencies::

        encode ──> existence ──> aux ──> inference ──> decode/scatter
        (ctor)      (V_exist)   (T_aux)  (compiled M)

    Splitting the lookup open buys three things the opaque call could
    not deliver:

    - **Shared sort order.** The auxiliary store wants sorted keys (one
      partition fault per batch).  A caller that already holds the keys
      sorted — the sharded route stage sorts *once* for every shard —
      passes ``presorted=True`` and no stage ever sorts again; otherwise
      the plan sorts the surviving keys once and both the aux probe and
      the scatter reuse that order.
    - **Aux-gated inference.** ``T_aux`` overrides the model wherever it
      has a row, so running the model there is pure waste.  The compiled
      path probes ``T_aux`` first and runs inference only on keys that
      are live *and* not served from the auxiliary table.  (The
      reference path still runs the session over every key, exactly as
      Algorithm 1 is written — it stays the parity oracle.)
    - **Streaming scatter.** :meth:`execute_into` writes the finished
      segment straight into caller-owned output arrays, so a sharded
      fan-out assembles results as shards finish instead of
      concatenating and permuting a list of per-shard results behind a
      barrier.

    Results are bit-identical to the pre-staged lookup on both the
    compiled and the reference path: gating only skips predictions that
    were about to be overwritten, misses decode to the same
    ``vocab[0]`` filler, and stage order never changes any per-key
    answer.  Plans are single-use and not thread-safe; build one per
    batch via :meth:`DeepMapping.plan_lookup`.
    """

    __slots__ = ("mapping", "flat", "in_domain", "presorted", "found",
                 "_hits", "_aux_hit", "_aux_codes", "_model_codes",
                 "_ref_codes")

    def __init__(self, mapping: "DeepMapping",
                 key_cols: Dict[str, np.ndarray],
                 presorted: bool = False):
        self.mapping = mapping
        self.flat, self.in_domain = mapping.key_codec.try_flatten(key_cols)
        self.presorted = presorted
        self.found: Optional[np.ndarray] = None
        self._hits: Optional[np.ndarray] = None       # hit rows, key-sorted
        self._aux_hit: Optional[np.ndarray] = None    # bool per hit row
        self._aux_codes: Optional[Dict[str, np.ndarray]] = None
        self._model_codes: Optional[Dict[str, np.ndarray]] = None
        self._ref_codes: Optional[Dict[str, np.ndarray]] = None

    def __len__(self) -> int:
        return int(self.flat.size)

    # -- stage 2: existence gate ---------------------------------------
    def run_existence(self) -> np.ndarray:
        """Mask the batch through ``V_exist`` (and the key domain)."""
        m = self.mapping
        with m.stats.timing("existence"):
            self.found = m.exist.test_batch(self.flat) & self.in_domain
        return self.found

    # -- stage 3: auxiliary table --------------------------------------
    def run_aux(self) -> None:
        """Probe ``T_aux`` for every surviving key.

        Keys are probed in sorted order — reusing the caller's order
        when ``presorted``, sorting once here otherwise — so the
        partition store's monotonic fast path skips its own argsort and
        each partition is faulted at most once.
        """
        m = self.mapping
        hits = np.flatnonzero(self.found)
        if hits.size == 0:
            self._hits = hits
            self._aux_hit = np.zeros(0, dtype=bool)
            self._aux_codes = {t: np.zeros(0, dtype=np.int64)
                               for t in m.value_names}
            return
        sub = self.flat[hits]
        if not self.presorted and sub.size > 1 \
                and not np.all(sub[1:] >= sub[:-1]):
            order = np.argsort(sub, kind="stable")
            hits = hits[order]
            sub = sub[order]
        with m.stats.timing("aux"):
            aux_hit, aux_codes = m.aux.lookup_batch(sub)
        self._hits = hits
        self._aux_hit = aux_hit
        self._aux_codes = {t: aux_codes[t][aux_hit] for t in m.value_names}

    @property
    def aux_rows(self) -> np.ndarray:
        """Batch positions served from ``T_aux``."""
        return self._hits[self._aux_hit]

    @property
    def model_rows(self) -> np.ndarray:
        """Batch positions served by model inference alone."""
        return self._hits[~self._aux_hit]

    # -- stage 4: model inference --------------------------------------
    def run_inference(self) -> None:
        """Run the frozen model on the rows that still need it.

        Compiled path: the fused kernel runs only on :attr:`model_rows`
        (live keys without an aux override).  Reference path: the
        session runs over every key, as the paper writes Algorithm 1.
        """
        m = self.mapping
        with m.stats.timing("inference"):
            if not m._use_compiled():
                x = m.key_encoder.encode(self.flat)
                self._ref_codes = m.session.run(
                    x, batch_size=m.config.inference_batch)
                return
            rows = self.model_rows
            if rows.size:
                engine = m.compiled_session()
                self._model_codes = engine.run(
                    self.flat[rows], batch_size=m.config.inference_batch)
            else:
                self._model_codes = {t: np.zeros(0, dtype=np.int64)
                                     for t in m.value_names}

    # -- stage 5: decode + assembly ------------------------------------
    def _decoded_task(self, task: str) -> np.ndarray:
        """This batch's decoded values for one task.

        The single decode implementation behind both :meth:`finish` and
        :meth:`execute_into` — the bit-identity-critical branch (clip
        bounds, ``vocab[0]`` miss filler, model/aux overwrite order)
        lives here once.
        """
        enc = self.mapping.fdecode.encoders[task]
        if self._ref_codes is not None:
            codes = self._ref_codes[task].copy()
            codes[self.aux_rows] = self._aux_codes[task]
            out = enc.decode(np.clip(codes, 0, enc.cardinality - 1))
            # Misses read the deterministic ``vocab[0]`` filler in BOTH
            # engines — not whatever the model happened to predict —
            # so compiled and reference lookups are bit-identical even
            # outside the found mask, and the sharded store's
            # miss-pruning tier can synthesize a pruned key's value
            # without consulting the engine at all.
            miss = ~self.found
            if miss.any():
                out[miss] = enc.decode(_ZERO_CODE)[0]
            return out
        out = np.full(self.flat.size, enc.decode(_ZERO_CODE)[0],
                      dtype=enc.vocab.dtype)
        rows = self.model_rows
        if rows.size:
            out[rows] = enc.decode(self._model_codes[task])
        rows = self.aux_rows
        if rows.size:
            out[rows] = enc.decode(self._aux_codes[task])
        return out

    def finish(self) -> LookupResult:
        """Decode codes to values and assemble a LookupResult."""
        m = self.mapping
        with m.stats.timing("decode"):
            values = {task: self._decoded_task(task)
                      for task in m.value_names}
        return LookupResult(found=self.found, values=values)

    def execute(self) -> LookupResult:
        """Run every stage in order — the serial lookup."""
        self.run_existence()
        self.run_aux()
        self.run_inference()
        return self.finish()

    def execute_into(
        self,
        found_out: np.ndarray,
        values_out: Dict[str, np.ndarray],
        dest: np.ndarray,
    ) -> None:
        """Run the plan and scatter its segment into shared output arrays.

        ``dest`` maps this plan's batch positions to positions in the
        caller's arrays; disjoint ``dest`` sets may be filled from
        concurrent threads (the sharded store's streaming assembly).
        Misses inside the segment are written too (the per-store
        ``vocab[0]`` filler), matching what a merge of per-shard
        results would have produced.
        """
        self.run_existence()
        self.run_aux()
        self.run_inference()
        m = self.mapping
        found_out[dest] = self.found
        with m.stats.timing("decode"):
            for task in m.value_names:
                values_out[task][dest] = self._decoded_task(task)


#: Shared scratch for the "decode code 0" filler lookups.
_ZERO_CODE = np.zeros(1, dtype=np.int64)


class DeepMapping:
    """Learned, lossless, updateable key→value mapping.

    Build with :meth:`fit`; query with :meth:`lookup`; mutate with
    :meth:`insert` / :meth:`delete` / :meth:`update`; persist with
    :meth:`save` / :meth:`load`.
    """

    def __init__(
        self,
        key_codec: CompositeKeyCodec,
        key_encoder: KeyEncoder,
        session: InferenceSession,
        aux: AuxiliaryTable,
        exist: ExistenceIndex,
        fdecode: DecodeMap,
        config: DeepMappingConfig,
        dataset_bytes: int,
        stats: Optional[StoreStats] = None,
    ):
        self.key_codec = key_codec
        self.key_encoder = key_encoder
        self.session = session
        self.aux = aux
        self.exist = exist
        self.fdecode = fdecode
        self.config = config
        self.stats = stats if stats is not None else StoreStats()
        self.tracker = ModificationTracker(config.retrain_threshold_bytes)
        #: When False, modifications only *record* into the tracker; the
        #: retrain decision is owned by an external maintenance engine
        #: (see :class:`repro.lifecycle.MaintenanceEngine`) instead of
        #: firing inline in the mutating call.
        self.auto_rebuild = True
        #: False for structures opened via ``repro.open(...,
        #: writable=False)``: components may be shared with other opens
        #: of the same payload (and backed by read-only mmap views), so
        #: every mutating entry point refuses with ``PermissionError``.
        self.writable = True
        self._dataset_bytes = int(dataset_bytes)
        #: Lazily compiled fused lookup kernel (see :meth:`compiled_session`).
        self._compiled: Optional[CompiledSession] = None
        #: Executor strategy behind :meth:`lookup_async` (serial unless
        #: :meth:`set_executor` installs another one).  ``close()`` only
        #: shuts strategies this structure created itself — an instance
        #: handed in by the caller (possibly shared between stores) stays
        #: caller-owned.
        self._executor: Optional[ExecutorStrategy] = None
        self._owns_executor = True
        #: :class:`~repro.core.mhas.SearchOutcome` when MHAS built this
        #: structure (None for fixed architectures).
        self.search_history = None
        #: :class:`~repro.nn.training.TrainingResult` of the build (None
        #: for loaded structures).
        self.last_training = None
        #: How many tensors a warm-started build transferred.
        self.warm_started_tensors = 0

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        table: ColumnTable,
        config: Optional[DeepMappingConfig] = None,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
        warm_start: Optional[Dict[str, np.ndarray]] = None,
        aux_name_prefix: str = "aux",
    ) -> "DeepMapping":
        """Train a hybrid structure that losslessly represents ``table``.

        The build follows the paper's initialization: encode keys/values,
        pick an architecture (fixed sizes or MHAS when
        ``config.use_search``), train to convergence, then materialize the
        auxiliary structures from the model's residual errors.

        ``warm_start`` optionally carries named weight arrays from a
        previous model (see :meth:`rebuild`): tensors whose shape still
        matches are copied before training, implementing the paper's
        model-reuse retraining (Sec. V-D future work).

        ``aux_name_prefix`` names this structure's auxiliary partitions;
        callers co-hosting several structures on one disk store or buffer
        pool (e.g. the sharded store) must keep prefixes distinct.
        """
        config = config if config is not None else DeepMappingConfig()
        stats = stats if stats is not None else StoreStats()
        rng = np.random.default_rng(config.seed)

        key_cols = table.key_columns_dict()
        first_key = np.asarray(key_cols[table.key[0]], dtype=np.int64)
        extent = int(first_key.max() - first_key.min() + 1)
        headroom = int(extent * config.key_headroom_fraction)
        key_codec = CompositeKeyCodec(table.key).fit(key_cols, headroom=headroom)
        flat = key_codec.flatten(key_cols)
        if np.unique(flat).size != flat.size:
            raise ValueError("the designated key does not uniquely identify rows")

        value_cols = table.value_columns_dict()
        if not value_cols:
            raise ValueError("table has no value columns to learn")
        fdecode = DecodeMap.fit(value_cols)
        labels = fdecode.encode(value_cols)

        key_encoder = KeyEncoder(config.key_base).fit(key_codec.domain_size - 1)
        x = key_encoder.encode(flat)

        search_history = None
        if config.use_search:
            from .mhas import MHASConfig, search as mhas_search

            search_cfg = config.search if config.search is not None else MHASConfig()
            outcome = mhas_search(
                x,
                labels,
                output_dims=fdecode.cardinalities(),
                dataset_bytes=table.uncompressed_bytes(),
                overhead_bytes=fdecode.nbytes,
                config=search_cfg,
                rng=rng,
            )
            model = outcome.model
            search_history = outcome
        else:
            spec = ArchitectureSpec(
                input_dim=key_encoder.input_dim,
                shared_sizes=tuple(config.shared_sizes),
                private_sizes={t: tuple(config.private_sizes)
                               for t in fdecode.columns},
                output_dims=fdecode.cardinalities(),
            )
            model = MultiTaskMLP(spec, rng=rng)

        warm_tensors = 0
        if warm_start is not None:
            warm_tensors = model.load_state_arrays(warm_start)

        optimizer = Adam(ExponentialDecay(config.learning_rate, config.lr_decay))
        trainer = Trainer(model, optimizer, batch_size=config.batch_size,
                          tol=config.tol, rng=rng)
        training = trainer.fit(x, labels, epochs=config.epochs)

        session = InferenceSession.from_model(model, config.weight_dtype)
        aux = AuxiliaryTable(
            tasks=fdecode.columns,
            codec=config.aux_codec,
            target_partition_bytes=config.aux_partition_bytes,
            disk=disk,
            pool=pool,
            stats=stats,
            auto_compact_rows=config.aux_auto_compact_rows,
            name_prefix=aux_name_prefix,
        )
        # T_aux must hold every row the *query-time* predictor gets wrong.
        # The compiled kernel's fused float32 partial sums can differ from
        # the reference GEMM by an ulp — enough to flip a near-tie argmax —
        # so when compiled lookups are enabled the mask is the UNION of
        # both predictors' errors: any key the two paths disagree on is
        # wrong for at least one of them, lands in T_aux, and is served
        # from there by either path.  That keeps lookups lossless even if
        # ``compiled_lookup`` is later toggled at query time.  The freshly
        # compiled engine is kept for the mapping.
        mis = cls._misclassified_mask(session, x, labels,
                                      config.inference_batch)
        engine = None
        if getattr(config, "compiled_lookup", True):
            engine = CompiledSession(session, key_encoder)
            predicted = engine.run(flat, batch_size=config.inference_batch)
            for task in fdecode.columns:
                mis |= predicted[task] != np.asarray(labels[task])
        aux.build(flat[mis], {t: labels[t][mis] for t in fdecode.columns})

        exist = make_existence_index(key_codec.domain_size, flat.size)
        exist.set_batch(flat)

        mapping = cls(
            key_codec=key_codec,
            key_encoder=key_encoder,
            session=session,
            aux=aux,
            exist=exist,
            fdecode=fdecode,
            config=config,
            dataset_bytes=table.uncompressed_bytes(),
            stats=stats,
        )
        mapping.search_history = search_history
        mapping.last_training = training
        mapping.warm_started_tensors = warm_tensors
        mapping._compiled = engine
        return mapping

    @staticmethod
    def _misclassified_mask(
        session: InferenceSession,
        x: np.ndarray,
        labels: Dict[str, np.ndarray],
        batch: int,
    ) -> np.ndarray:
        """Rows where any task's prediction disagrees with the label."""
        predicted = session.run(x, batch_size=batch)
        mis = np.zeros(x.shape[0], dtype=bool)
        for task, lab in labels.items():
            mis |= predicted[task] != np.asarray(lab)
        return mis

    def _mis_mask(self, flat: np.ndarray,
                  labels: Dict[str, np.ndarray]) -> np.ndarray:
        """Rows where the serving predictor(s) disagree with the labels.

        With compiled lookups enabled this is the union of the reference
        and compiled predictions' errors, mirroring :meth:`fit`'s aux
        mask: a modified row stays out of ``T_aux`` only when *both*
        predictors get it right, so lookups stay lossless under either
        path (the knob may be toggled at query time).  The model itself
        is unchanged by modifications, so the cached engine stays valid.
        """
        x = self.key_encoder.encode(flat)
        mis = self._misclassified_mask(self.session, x, labels,
                                       self.config.inference_batch)
        if self._use_compiled():
            predicted = self.compiled_session().run(
                flat, batch_size=self.config.inference_batch)
            for task, lab in labels.items():
                mis |= predicted[task] != np.asarray(lab)
        return mis

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def key_names(self) -> Tuple[str, ...]:
        """Key column names."""
        return self.key_codec.key_names

    @property
    def value_names(self) -> Tuple[str, ...]:
        """Value column (task) names."""
        return self.fdecode.columns

    def __len__(self) -> int:
        """Number of live keys."""
        return self.exist.count()

    def storage_bytes(self) -> int:
        """Total offline footprint of the hybrid structure."""
        return self.size_report().total_bytes

    def size_report(self) -> SizeReport:
        """Per-component storage breakdown (Fig. 6 / Eq. 1)."""
        return SizeReport(
            model_bytes=self.session.nbytes,
            aux_bytes=self.aux.stored_bytes(),
            exist_bytes=self.exist.stored_bytes(),
            decode_bytes=self.fdecode.nbytes,
            dataset_bytes=self._dataset_bytes,
            n_rows=len(self),
            n_in_aux=len(self.aux),
        )

    # ------------------------------------------------------------------
    # Lookup (paper Algorithm 1)
    # ------------------------------------------------------------------
    def compiled_session(self) -> CompiledSession:
        """The fused lookup kernel for the current frozen model.

        Compiled lazily on first use and cached; the cache is keyed to the
        live ``session``/``key_encoder`` objects, so any path that swaps
        them (``rebuild``, domain-widening inserts) recompiles on the next
        call even without an explicit invalidation.  Concurrent readers
        may race to build the first engine — construction is cheap and
        idempotent, and the attribute swap is atomic.
        """
        engine = self._compiled
        if (engine is None or engine.session is not self.session
                or engine.key_encoder is not self.key_encoder):
            engine = CompiledSession(self.session, self.key_encoder)
            self._compiled = engine
        return engine

    def _use_compiled(self) -> bool:
        # getattr: configs pickled before this knob existed lack the field.
        return bool(getattr(self.config, "compiled_lookup", True))

    def plan_lookup(self, keys: KeysLike,
                    presorted: bool = False) -> LookupPlan:
        """Stage a batched lookup without executing it.

        Returns a :class:`LookupPlan` whose stages (existence gate, aux
        probe, gated inference, decode/scatter) the caller drives —
        ``plan.execute()`` reproduces :meth:`lookup` exactly, while
        ``plan.execute_into`` streams the finished segment into shared
        output arrays (the sharded store's pipelined fan-out).  Pass
        ``presorted=True`` only when the keys arrive in ascending
        flattened order; the aux stage then skips sorting entirely.
        """
        return LookupPlan(self, self._normalize_keys(keys),
                          presorted=presorted)

    def lookup(self, keys: KeysLike) -> LookupResult:
        """Batch exact-match lookup.

        Masks non-existing keys through ``V_exist``, probes ``T_aux``,
        runs batch inference (through the compiled kernel, gated to keys
        that are live and not served from ``T_aux``, unless
        ``config.compiled_lookup`` is off), and decodes label codes to
        original values.  Implemented as the serial execution of a
        :class:`LookupPlan`; see :meth:`plan_lookup` for the staged
        form.
        """
        return self.plan_lookup(keys).execute()

    def lookup_one(self, **key_parts) -> Optional[Dict[str, object]]:
        """Convenience single-key lookup; returns a row dict or None."""
        key_cols = {name: np.array([value]) for name, value in key_parts.items()}
        if set(key_cols) != set(self.key_names):
            raise KeyError(f"expected key columns {self.key_names}")
        result = self.lookup(key_cols)
        return next(result.rows())

    def contains_batch(self, keys: KeysLike) -> np.ndarray:
        """Liveness test per key — no inference, just ``V_exist``.

        The cheap membership predicate behind lookup/delete/update; also
        used by the sharded facade to pre-validate mutation batches.
        """
        key_cols = self._normalize_keys(keys)
        flat, in_domain = self.key_codec.try_flatten(key_cols)
        return self.exist.test_batch(flat) & in_domain

    # ------------------------------------------------------------------
    # Async reads / executor strategy
    # ------------------------------------------------------------------
    @property
    def executor(self) -> ExecutorStrategy:
        """The strategy behind :meth:`lookup_async` (serial by default —
        a monolithic structure has no internal fan-out to overlap)."""
        if self._executor is None:
            self._executor = SerialStrategy()
        return self._executor

    def set_executor(self, executor) -> None:
        """Install an executor strategy (a name from
        :data:`repro.store.EXECUTOR_NAMES` or a strategy instance).

        A strategy built here from a name is owned (and closed) by this
        structure; a passed-in instance stays caller-owned and is never
        closed by :meth:`close`.
        """
        new = make_executor(executor)
        if (self._executor is not None and self._owns_executor
                and new is not self._executor):
            self._executor.close()
        self._executor = new
        self._owns_executor = new is not executor

    def lookup_async(self, keys: KeysLike) -> Future:
        """Schedule :meth:`lookup` on the executor strategy.

        Returns a future resolving to the same :class:`LookupResult` the
        synchronous call would produce.  Under the serial strategy the
        work happens inline and the future comes back already resolved.
        """
        return self.executor.submit(self.lookup, keys)

    # ------------------------------------------------------------------
    # Modifications (paper Algorithms 3-5)
    # ------------------------------------------------------------------
    def insert(self, rows: RowsLike) -> int:
        """Insert new key→value rows (Algorithm 3).

        Existence bits are set, the model is evaluated on the new keys, and
        only rows the model mispredicts are materialized in ``T_aux``.
        Returns the number of rows landed in the auxiliary table.
        """
        self._require_writable()
        columns = self._normalize_rows(rows)
        try:
            flat = self._flatten_or_rebuild_domain(columns)
        except _DomainRebuilt:
            # The structure was rebuilt over old + new rows; nothing lands
            # in the (fresh) auxiliary overlay for this call specifically.
            return 0
        existing = self.exist.test_batch(flat)
        if existing.any():
            raise ValueError(
                f"{int(existing.sum())} key(s) already exist; use update()"
            )

        value_cols = {t: np.asarray(columns[t]) for t in self.value_names}
        self.fdecode.extend(value_cols)
        labels = self.fdecode.encode(value_cols)

        self.exist.set_batch(flat)
        mis = self._mis_mask(flat, labels)
        if mis.any():
            self.aux.add_batch(flat[mis], {t: labels[t][mis]
                                           for t in self.value_names})

        self.tracker.record(estimate_batch_bytes(columns), n_ops=flat.size)
        self._maybe_retrain()
        return int(mis.sum())

    def delete(self, keys: KeysLike) -> int:
        """Delete keys (Algorithm 4): clear existence bits, drop aux rows.

        Returns the number of keys actually deleted (absent keys are
        ignored, matching the paper's idempotent bit-clear semantics).
        """
        self._require_writable()
        key_cols = self._normalize_keys(keys)
        flat, in_domain = self.key_codec.try_flatten(key_cols)
        live = self.exist.test_batch(flat) & in_domain
        targets = flat[live]
        self.exist.clear_batch(targets)
        self.aux.remove_batch(targets)
        self.tracker.record(estimate_batch_bytes(key_cols), n_ops=targets.size)
        self._maybe_retrain()
        return int(targets.size)

    def update(self, rows: RowsLike) -> int:
        """Replace values of existing keys (Algorithm 5).

        Rows the model now predicts correctly are dropped from ``T_aux``;
        the rest are inserted or updated in place there.  Returns the
        number of rows materialized in the auxiliary table.
        """
        self._require_writable()
        columns = self._normalize_rows(rows)
        flat, in_domain = self.key_codec.try_flatten(columns)
        live = self.exist.test_batch(flat) & in_domain
        if not live.all():
            raise KeyError(
                f"{int((~live).sum())} key(s) do not exist; use insert()"
            )

        value_cols = {t: np.asarray(columns[t]) for t in self.value_names}
        self.fdecode.extend(value_cols)
        labels = self.fdecode.encode(value_cols)

        mis = self._mis_mask(flat, labels)
        if (~mis).any():
            self.aux.remove_batch(flat[~mis])
        if mis.any():
            self.aux.add_batch(flat[mis], {t: labels[t][mis]
                                           for t in self.value_names})
        self.tracker.record(estimate_batch_bytes(columns), n_ops=flat.size)
        self._maybe_retrain()
        return int(mis.sum())

    # ------------------------------------------------------------------
    # Retraining (paper Sec. IV-D closing discussion)
    # ------------------------------------------------------------------
    def rebuild(self, config: Optional[DeepMappingConfig] = None) -> None:
        """Retrain the model and reconstruct the auxiliary structures from
        the current logical content (triggered lazily by the tracker).

        When ``config.warm_start_rebuild`` is set (default), the retrain is
        initialized from the current model's weights — the paper's
        model-reuse optimization for its expensive retraining step.

        ``config`` optionally replaces the build configuration for this and
        future rebuilds — the hook behind per-shard MHAS sizing, where a
        lifecycle rebuild right-sizes the architecture to the rows the
        shard now holds (warm-start tensors transfer only where shapes
        still match).

        The rebuilt auxiliary table keeps this structure's buffer pool and
        partition-name prefix (co-hosted structures like the sharded store
        rely on both), and the retired table's cached partitions are purged
        so the successor never reads stale blocks under its own names.
        """
        self._require_writable()
        table = self.to_table()
        build_config = config if config is not None else self.config
        warm = (self.session.state_arrays()
                if build_config.warm_start_rebuild and not build_config.use_search
                else None)
        fresh = DeepMapping.fit(table, build_config, pool=self.aux.pool,
                                stats=self.stats, warm_start=warm,
                                aux_name_prefix=self.aux.name_prefix)
        self.aux.drop_storage()
        self.config = fresh.config
        self.key_codec = fresh.key_codec
        self.key_encoder = fresh.key_encoder
        self.session = fresh.session
        self.aux = fresh.aux
        self.exist = fresh.exist
        self.fdecode = fresh.fdecode
        self._dataset_bytes = fresh._dataset_bytes
        self.last_training = fresh.last_training
        self.warm_started_tensors = fresh.warm_started_tensors
        # The compiled kernel is frozen over the retired session/encoder;
        # adopt the rebuilt structure's engine (None when compiled lookups
        # are off — the staleness check in compiled_session() would also
        # catch a stale engine).
        self._compiled = fresh._compiled
        self.tracker.threshold_bytes = self.config.retrain_threshold_bytes
        self.tracker.mark_rebuilt()

    def aux_ratio(self) -> float:
        """Fraction of live rows currently served from ``T_aux``."""
        n_rows = len(self)
        if n_rows == 0:
            return 0.0
        return len(self.aux) / n_rows

    def _maybe_retrain(self) -> None:
        if not self.auto_rebuild:
            return
        trigger = self.tracker.should_retrain()
        ratio_bound = getattr(self.config, "retrain_aux_ratio", None)
        if (not trigger and ratio_bound is not None
                and len(self) >= MIN_ROWS_FOR_RATIO_RETRAIN):
            trigger = self.aux_ratio() >= ratio_bound
        if trigger:
            self.rebuild()

    def to_table(self) -> ColumnTable:
        """Materialize the current logical content as a ColumnTable."""
        flat = self.exist.existing_keys()
        key_cols = self.key_codec.unflatten(flat)
        columns: Dict[str, np.ndarray] = dict(key_cols)
        batch = max(self.config.inference_batch, 1)
        parts = {t: [] for t in self.value_names}
        for start in range(0, flat.size, batch):
            chunk_keys = {n: arr[start: start + batch]
                          for n, arr in key_cols.items()}
            result = self.lookup(chunk_keys)
            for t in self.value_names:
                parts[t].append(result.values[t])
        for t in self.value_names:
            columns[t] = (np.concatenate(parts[t]) if parts[t]
                          else np.empty(0))
        return ColumnTable(columns, key=self.key_names, name="deepmapping")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> bytearray:
        """Serialize the full hybrid structure to one byte payload.

        The payload is a :mod:`repro.storage.zerocopy` container: the
        pickled state plus out-of-band, 64-byte-aligned buffer segments
        for **every** array — aux rows, vocabularies, codec domains,
        and (since the ``session_v2`` / ``exist_v2`` keys) the model
        weights and existence bit-vector, which older payloads nested
        inside pickled ``bytes`` blobs that had to be copied and
        decompressed on every cold open.  Opened through an mmap-capable
        backend with ``writable=False``, all of those arrays materialize
        as views over shared pages instead of copies — the cold open is
        pure mmap.  Legacy payloads (nested ``session`` / ``exist``
        bytes, or pre-container plain pickle) remain readable.
        """
        aux_keys, aux_codes = self.aux.scan()
        state = {
            "config": self.config,
            "key_codec": self.key_codec.to_state(),
            "key_encoder": self.key_encoder.to_state(),
            "session_v2": self.session.to_state(),
            "exist_v2": self.exist.to_state(),
            "fdecode": self.fdecode.to_state(),
            "aux_keys": aux_keys,
            "aux_codes": aux_codes,
            "dataset_bytes": self._dataset_bytes,
            # Sec. IV-D lazy-update state: without this a loaded store
            # would restart the retrain threshold from zero every reopen.
            "tracker": self.tracker.to_state(),
        }
        return zerocopy.pack(state)

    def _to_payload_legacy(self) -> bytearray:
        """The pre-``*_v2`` payload layout: session and exist index as
        nested pickled/compressed ``bytes``.  Kept (private) so the
        compatibility tests and ``benchmarks/bench_prune.py`` can write
        payloads in the old format and measure the cold-open cost the
        ``*_v2`` keys removed."""
        aux_keys, aux_codes = self.aux.scan()
        state = {
            "config": self.config,
            "key_codec": self.key_codec.to_state(),
            "key_encoder": self.key_encoder.to_state(),
            "session": self.session.to_bytes(),
            "exist": self.exist.to_bytes(),
            "fdecode": self.fdecode.to_state(),
            "aux_keys": aux_keys,
            "aux_codes": aux_codes,
            "dataset_bytes": self._dataset_bytes,
            "tracker": self.tracker.to_state(),
        }
        return zerocopy.pack(state)

    def save(self, target: str) -> int:
        """Persist to a path or ``file:// / mem:// / zip://`` URL.

        A filesystem path / ``file://`` URL names the payload file itself;
        ``mem://`` and ``zip://`` targets are containers and store the
        payload under
        :data:`~repro.storage.backends.MONOLITHIC_BLOB`.  The write is
        atomic on every backend, and the process-wide payload cache entry
        for the target is invalidated so later ``writable=False`` opens
        never serve the retired content.  Returns bytes written.
        """
        backend, blob = resolve_blob_url(str(target))
        written = backend.write_bytes(blob, self.to_payload())
        payload_cache().invalidate(backend, blob)
        return written

    @staticmethod
    def _load_state(payload, zero_copy: bool = False) -> Dict[str, object]:
        """Payload bytes/view -> state dict (either container format)."""
        if zerocopy.is_packed(payload):
            return zerocopy.unpack(payload, zero_copy=zero_copy)
        return pickle.loads(payload)

    @classmethod
    def _components_from_state(
        cls,
        state: Dict[str, object],
        disk: Optional[DiskStore],
        pool: Optional[BufferPool],
        stats: StoreStats,
        aux_name_prefix: str,
        lazy_aux: bool = False,
    ) -> Dict[str, object]:
        """Materialize the shared components a payload state describes.

        ``lazy_aux=True`` defers auxiliary-partition compression to the
        first probe, and is honored only for array-first (``*_v2``)
        payloads: there the ``aux_keys`` / ``aux_codes`` rows are
        zero-copy views into a payload mapping the bundle pins anyway,
        so deferral holds no extra memory and a cold ``writable=False``
        open does no compress-and-write work at all.  Legacy payloads
        keep the historical eager open — the compatibility path changes
        no behavior, and their materialized row arrays are freed once
        compressed.
        """
        config: DeepMappingConfig = state["config"]
        fdecode = DecodeMap.from_state(state["fdecode"])
        aux = AuxiliaryTable(
            tasks=fdecode.columns,
            codec=config.aux_codec,
            target_partition_bytes=config.aux_partition_bytes,
            disk=disk,
            pool=pool,
            stats=stats,
            auto_compact_rows=config.aux_auto_compact_rows,
            name_prefix=aux_name_prefix,
        )
        if lazy_aux and "session_v2" in state and "exist_v2" in state:
            aux.build_lazy(state["aux_keys"], state["aux_codes"])
        else:
            aux.build(state["aux_keys"], state["aux_codes"])
        # Prefer the array-first *_v2 keys (weights and exist bits come
        # up as zero-copy views); fall back to the legacy nested-bytes
        # keys so payloads written before the v2 layout still load.
        if "session_v2" in state:
            session = InferenceSession.from_state(state["session_v2"])
        else:
            session = InferenceSession.from_bytes(state["session"])
        if "exist_v2" in state:
            exist = existence_from_state(state["exist_v2"])
        else:
            exist = load_existence(state["exist"])
        return {
            "config": config,
            "key_codec": CompositeKeyCodec.from_state(state["key_codec"]),
            "key_encoder": KeyEncoder.from_state(state["key_encoder"]),
            "session": session,
            "aux": aux,
            "exist": exist,
            "fdecode": fdecode,
            "dataset_bytes": state["dataset_bytes"],
            "tracker": state.get("tracker"),
        }

    @classmethod
    def _assemble(cls, components: Dict[str, object],
                  stats: Optional[StoreStats]) -> "DeepMapping":
        mapping = cls(
            key_codec=components["key_codec"],
            key_encoder=components["key_encoder"],
            session=components["session"],
            aux=components["aux"],
            exist=components["exist"],
            fdecode=components["fdecode"],
            config=components["config"],
            dataset_bytes=components["dataset_bytes"],
            stats=stats,
        )
        # Payloads written before tracker persistence lack the key; they
        # keep today's behavior (counters restart at zero).
        if components.get("tracker") is not None:
            mapping.tracker.restore_counters(components["tracker"])
        return mapping

    @classmethod
    def from_payload(
        cls,
        payload: bytes,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
        aux_name_prefix: str = "aux",
    ) -> "DeepMapping":
        """Inverse of :meth:`to_payload` (private, writable copies)."""
        stats = stats if stats is not None else StoreStats()
        state = cls._load_state(payload)
        return cls._assemble(
            cls._components_from_state(state, disk, pool, stats,
                                       aux_name_prefix),
            stats)

    @classmethod
    def _from_bundle(cls, bundle: Dict[str, object],
                     stats: Optional[StoreStats] = None) -> "DeepMapping":
        """A read-only structure over a cached component bundle.

        Every heavy artifact — session, compiled engine, auxiliary
        partitions, existence vector, decode map — is *shared* with any
        other store wrapping the same bundle; only per-instance state
        (stats sink, tracker, executor) is fresh.  Safe because the
        returned structure refuses mutations (``writable=False``) and
        all shared read paths are thread-safe.
        """
        mapping = cls._assemble(bundle, stats)
        mapping.writable = False
        mapping._compiled = bundle.get("compiled")
        # Pin the bundle (and through it any mmap view backing its
        # arrays) for this structure's lifetime, independent of cache
        # eviction.
        mapping._shared_bundle = bundle
        return mapping

    @classmethod
    def _open_shared(
        cls,
        backend,
        blob: str,
        stats: Optional[StoreStats] = None,
        pool: Optional[BufferPool] = None,
        aux_name_prefix: str = "aux",
    ) -> "DeepMapping":
        """Read-only open through the process-wide payload cache.

        Cold path: the payload is read as a zero-copy view (mmap'd on
        ``file://`` backends), deserialized once, its lookup kernel
        compiled, and the whole bundle cached under the blob's version
        stamp.  Array-first payloads defer auxiliary-partition
        compression to the first probe (the rows are zero-copy views
        into the pinned payload), so their cold open is pure mmap;
        legacy payloads build partitions eagerly as before.  Warm path:
        the cached bundle is wrapped directly — no I/O, no
        deserialization, no aux rebuild, no recompile.
        """
        def loader():
            view = read_blob_view(backend, blob)
            state = cls._load_state(view, zero_copy=True)
            bundle = cls._components_from_state(
                state, None, pool, StoreStats(), aux_name_prefix,
                lazy_aux=True)
            # Hold the payload view explicitly: zero-copy arrays
            # reference it, and the bundle must outlive any of them.
            bundle["payload_view"] = view
            bundle["compiled"] = (
                CompiledSession(bundle["session"], bundle["key_encoder"])
                if getattr(bundle["config"], "compiled_lookup", True)
                else None)
            return bundle, view.nbytes
        bundle = payload_cache().get(backend, blob, loader)
        return cls._from_bundle(bundle, stats=stats)

    @classmethod
    def open(
        cls,
        target: str,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
        aux_name_prefix: str = "aux",
        writable: bool = True,
    ) -> "DeepMapping":
        """Inverse of :meth:`save`: open a payload by path or URL.

        ``writable=False`` opens a read-only structure through the
        process-wide payload cache: payload arrays come up as zero-copy
        (mmap-backed on local directories) views, repeated opens of the
        same unchanged blob share one deserialized bundle, and mutating
        calls raise ``PermissionError``.  Prefer :func:`repro.open`,
        which also auto-detects sharded stores; this is the
        monolithic-only loader beneath it.
        """
        backend, blob = resolve_blob_url(str(target), create=False)
        try:
            if not writable:
                return cls._open_shared(backend, blob, stats=stats,
                                        pool=pool,
                                        aux_name_prefix=aux_name_prefix)
            payload = backend.read_bytes(blob)
        except KeyError:
            raise StoreNotFoundError(f"no DeepMapping payload at "
                                     f"{target!r}") from None
        return cls.from_payload(payload, disk=disk, pool=pool, stats=stats,
                                aux_name_prefix=aux_name_prefix)

    @classmethod
    def load(
        cls,
        path: str,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
        aux_name_prefix: str = "aux",
    ) -> "DeepMapping":
        """Deprecated alias of :meth:`open` (kept for pre-facade callers).

        Emits a ``DeprecationWarning`` once per process; behavior is
        unchanged.  Use :func:`repro.open` (layout auto-detection, all
        URL schemes) or :meth:`DeepMapping.open` instead.
        """
        warn_once(
            "DeepMapping.load",
            "DeepMapping.load() is deprecated; use repro.open(url_or_path) "
            "or DeepMapping.open() instead",
        )
        return cls.open(path, disk=disk, pool=pool, stats=stats,
                        aux_name_prefix=aux_name_prefix)

    # ------------------------------------------------------------------
    # Input normalization
    # ------------------------------------------------------------------
    def _require_writable(self) -> None:
        if not self.writable:
            raise PermissionError(
                "this store was opened writable=False (shared, read-only "
                "components); reopen with repro.open(url) to mutate it")

    def _normalize_keys(self, keys: KeysLike) -> Dict[str, np.ndarray]:
        return normalize_keys(keys, self.key_names)

    def _normalize_rows(self, rows: RowsLike) -> Dict[str, np.ndarray]:
        return normalize_rows(rows, self.key_names, self.value_names)

    def _flatten_or_rebuild_domain(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        """Flatten new keys; widen the key domain via rebuild if needed."""
        flat, in_domain = self.key_codec.try_flatten(columns)
        if in_domain.all():
            return flat
        # Out-of-domain inserts: rebuild the codec (and everything keyed by
        # it) over current content plus the new rows' key range.  This is
        # the "retrain offline when the structure no longer fits" path.
        base = self.to_table()
        incoming = ColumnTable(columns, key=self.key_names)
        merged = base.concat(incoming) if base.n_rows else incoming
        fresh = DeepMapping.fit(merged, self.config, pool=self.aux.pool,
                                stats=self.stats,
                                aux_name_prefix=self.aux.name_prefix)
        self.aux.drop_storage()
        # The widened structure replaces this one wholesale, but the
        # modification history and the external-maintenance flag belong to
        # the logical store, not the build — carry both across.
        fresh.tracker = self.tracker
        fresh.auto_rebuild = self.auto_rebuild
        self.__dict__.update(fresh.__dict__)
        self.tracker.mark_rebuilt()
        # All rows (including the new ones) are now inside the structure;
        # signal the caller that no further per-row handling is needed.
        raise _DomainRebuilt()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the async executor's worker threads (idempotent).

        The structure itself stays usable — ``close`` frees runtime
        resources, it does not drop data.  The installed strategy is
        kept (its pools rebuild lazily on next use); a caller-owned
        strategy instance is left untouched.
        """
        if self._executor is not None and self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "DeepMapping":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DeepMapping(key={self.key_names}, values={list(self.value_names)}, "
            f"rows={len(self)}, aux_rows={len(self.aux)}, "
            f"bytes={self.storage_bytes()})"
        )


class _DomainRebuilt(Exception):
    """Internal control flow: insert triggered a full domain rebuild."""
