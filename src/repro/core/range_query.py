"""Range-query extensions (paper Sec. IV-E).

Two approaches, as sketched in the paper:

1. **Batch-inference** (:func:`lookup_range`): filter the existence index
   for keys inside the range, then run the normal batch lookup over them.
   Exact results.
2. **View-based** (:func:`build_range_view`): materialize sampled range-
   aggregate results into a view keyed by (lower, upper) and learn a
   DeepMapping over that view; queries with known boundaries become point
   lookups.  Approximate by construction (only sampled boundaries exist).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..data.table import ColumnTable
from .config import DeepMappingConfig
from .deep_mapping import DeepMapping, LookupResult

__all__ = ["lookup_range", "build_range_view"]


def lookup_range(
    mapping: DeepMapping,
    low: Dict[str, int],
    high: Dict[str, int],
) -> Tuple[Dict[str, np.ndarray], LookupResult]:
    """Exact range lookup over the key domain.

    ``low``/``high`` give inclusive per-key-column bounds.  Returns
    ``(key_columns, result)`` for every existing key inside the box; the
    result's ``found`` is all-True by construction.
    """
    missing = [k for k in mapping.key_names if k not in low or k not in high]
    if missing:
        raise KeyError(f"bounds missing for key columns: {missing}")

    # Step 1 (paper): range-filter the existence index.
    live = mapping.exist.existing_keys()
    key_cols = mapping.key_codec.unflatten(live)
    mask = np.ones(live.size, dtype=bool)
    for name in mapping.key_names:
        col = key_cols[name]
        mask &= (col >= int(low[name])) & (col <= int(high[name]))
    selected = {name: arr[mask] for name, arr in key_cols.items()}

    # Step 2: batch inference over the collected keys.
    result = mapping.lookup(selected)
    return selected, result


def build_range_view(
    mapping: DeepMapping,
    column: str,
    ranges: Sequence[Tuple[int, int]],
    config: Optional[DeepMappingConfig] = None,
) -> DeepMapping:
    """Learn a DeepMapping over materialized range-aggregate results.

    For each ``(low, high)`` range over the *first* key column, the count
    of existing keys whose ``column`` values take the range's modal value
    is materialized; the view maps ``(range_low, range_high) -> (mode,
    count_bucket)``.  This is the paper's approximate view-based approach,
    suitable for range-aggregation workloads.
    """
    if column not in mapping.value_names:
        raise KeyError(f"unknown value column {column!r}")
    if not ranges:
        raise ValueError("at least one range is required")
    first = mapping.key_names[0]

    lows, highs, modes, buckets = [], [], [], []
    for low, high in ranges:
        bounds_lo = {name: -(2**31) for name in mapping.key_names}
        bounds_hi = {name: 2**31 for name in mapping.key_names}
        bounds_lo[first] = low
        bounds_hi[first] = high
        _, result = lookup_range(mapping, bounds_lo, bounds_hi)
        values = result.values[column]
        if values.size:
            uniq, counts = np.unique(values, return_counts=True)
            mode = uniq[counts.argmax()]
            count = int(counts.max())
        else:
            mode, count = "", 0
        lows.append(low)
        highs.append(high)
        modes.append(mode)
        buckets.append(min(count.bit_length(), 20))  # log2 count bucket

    view = ColumnTable(
        {
            "range_low": np.array(lows, dtype=np.int64),
            "range_high": np.array(highs, dtype=np.int64),
            "mode_value": np.array(modes),
            "count_bucket": np.array(buckets, dtype=np.int64),
        },
        key=("range_low", "range_high"),
        name=f"range_view_{column}",
    )
    view_config = config if config is not None else DeepMappingConfig(
        epochs=40, batch_size=256, shared_sizes=(64,), private_sizes=(32,)
    )
    return DeepMapping.fit(view, view_config)
