"""Negative filters: the manifest-level miss-pruning existence tier.

DeepMapping's headline win is that the existence tier (Sec. III-C)
short-circuits misses *inside* a shard before any inference — but in the
sharded store every miss key still pays routing, the (shard, key) sort,
and shard dispatch before that gate fires.  This module moves compact
summaries of the stored key set up into the *manifest*, so the router
can drop miss keys before any fan-out work happens at all.  Pruning is
two-tiered (see ``ShardedDeepMapping._prune``):

- **Tier 1, store level** — one filter over the union of every shard's
  keys, probed before any routing (valid because key→shard placement is
  a pure function of the key).  :func:`build_store_filter` picks the
  structure: an exact :class:`DenseNegativeFilter` bitmap when the key
  fingerprints span a dense domain (the paper's existence bit-vector
  hoisted to the manifest — no false positives at all), or a blocked
  Bloom :class:`NegativeFilter` at ~8 bits/key otherwise (in the spirit
  of the compressed/learned-filter line of work cited in PAPERS.md,
  with the classic Bloom construction as the guaranteed-no-false-
  negative fallback).
- **Tier 2, shard level** — skinny ~3 bits/key blocked Bloom filters,
  one per shard, screening tier-1 false positives after routing via one
  :class:`FilterBank` gather.  Skipped entirely when tier 1 is exact.

Blocked Bloom probes touch a single 64-bit word (``h1`` selects the
block, ``k`` bit positions come from disjoint 6-bit fields of ``h2``),
so a batched ``might_contain`` is a gather plus a few vectorized
shifts — no per-key loop, cache-friendly.  **No false negatives, by
construction**: every key inserted sets exactly the bits a later probe
tests.  Deletes never clear bits (the filter stays a superset of the
live key set — a deleted key may survive as a false positive until the
next rebuild, which only costs a dispatch the existence tier then
rejects); false positives only waste a shard dispatch.

Persistence is JSON-friendly (``to_json`` / ``from_json`` /
:func:`filter_from_json`): word arrays ride in the shard manifest as
``base64(zlib(words))`` under a ``kind`` tag.  The combined raw cost of
both tiers is ~11 bits/key worst case, inside the manifest's <= 2
bytes/key budget even when random bits do not compress (see
``docs/sharding.md``).

Key hashing (:func:`hash_key_columns`) mirrors the hash router's
column-mixing scheme — a splitmix64-style avalanche per column with a
per-column golden-ratio offset, XOR-combined and finalized — so one
hash pass serves any composite key under either routing strategy.  The
constants are duplicated from :mod:`repro.shard.router` rather than
imported: core must not depend on the shard layer.
"""

from __future__ import annotations

import base64
import zlib
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = ["NegativeFilter", "DenseNegativeFilter", "FilterBank",
           "hash_key_columns", "build_store_filter", "filter_from_json"]

# splitmix64 finalizer constants — same family the shard router uses.
_MIX_1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX_2 = np.uint64(0xC4CEB9FE1A85EC53)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
#: Salt separating the in-word bit positions from the block index, so
#: the two probe coordinates are independent hashes of the same key.
_BIT_SALT = np.uint64(0xA5A5A5A5A5A5A5A5)

_SHIFT_33 = np.uint64(33)
_SHIFT_32 = np.uint64(32)
_ONE = np.uint64(1)
_BITS_MASK = np.uint64(63)
_U32_MASK = np.uint64(0xFFFFFFFF)


def _mix64(x: np.ndarray, copy: bool = True) -> np.ndarray:
    """Vectorized 64-bit avalanche (splitmix64 finalizer).

    ``copy=False`` mutates ``x`` in place — only for freshly created
    temporaries the caller owns.
    """
    x = np.array(x, dtype=np.uint64, copy=copy)
    x ^= x >> _SHIFT_33
    x *= _MIX_1
    x ^= x >> _SHIFT_33
    x *= _MIX_2
    x ^= x >> _SHIFT_33
    return x


_FIELD12_MASK = np.uint64(0xFFF)
#: Lazy 4096-entry table mapping 12 bits (two 6-bit position fields) to
#: their 2-bit probe mask — one gather replaces four shift/mask/or
#: passes, and at 32 KB the table lives in L1/L2.
_TABLE12: "np.ndarray" = None


def _mask_table12() -> np.ndarray:
    global _TABLE12
    if _TABLE12 is None:
        x = np.arange(4096, dtype=np.uint64)
        _TABLE12 = (np.left_shift(_ONE, np.bitwise_and(x, _BITS_MASK))
                    | np.left_shift(_ONE, np.bitwise_and(
                        np.right_shift(x, np.uint64(6)), _BITS_MASK)))
    return _TABLE12


def _bit_mask(h2: np.ndarray, k: int) -> np.ndarray:
    """One word per hash: the OR of the ``k`` single-bit probe masks
    encoded in ``h2``'s low ``6k`` bits.  Testing ``(word & mask) ==
    mask`` is equivalent to testing the ``k`` bits one by one but works
    in flat ``n``-sized temporaries instead of a ``(k, n)`` matrix.
    Even ``k`` takes 12 bits (two fields) at a time through a
    precomputed table; both paths produce identical masks."""
    if k % 2 == 0:
        table = _mask_table12()
        mask = table[np.bitwise_and(h2, _FIELD12_MASK)]
        for j in range(1, k // 2):
            shift = np.uint64(12 * j)
            mask |= table[np.bitwise_and(np.right_shift(h2, shift),
                                         _FIELD12_MASK)]
        return mask
    mask = np.left_shift(_ONE, np.bitwise_and(h2, _BITS_MASK))
    for j in range(1, k):
        shift = np.uint64(6 * j)
        mask |= np.left_shift(
            _ONE, np.bitwise_and(np.right_shift(h2, shift), _BITS_MASK))
    return mask


def _word_index(h2: np.ndarray, k: int, sizes) -> np.ndarray:
    """Word index per hash: the bits above the ``6k`` position fields,
    reduced into ``[0, size)``.

    For ``k <= 5`` the reduction is Lemire's multiply-shift — take 32 of
    the remaining bits ``x`` and compute ``(x * size) >> 32`` — which is
    one widening multiply instead of a 64-bit division and maps uniform
    ``x`` to uniform indices.  ``k = 6`` leaves only 28 spare bits, not
    enough for an unbiased multiply-shift, so it keeps the modulo.
    ``sizes`` may be a scalar or a per-hash array (the FilterBank case);
    any zero size yields index 0 — callers must mask those out.
    """
    hi = np.right_shift(h2, np.uint64(6 * k))
    if k <= 5:
        x = np.bitwise_and(hi, _U32_MASK)
        x *= sizes
        return np.right_shift(x, _SHIFT_32).astype(np.int64)
    return (hi % np.maximum(sizes, _ONE)).astype(np.int64)


def hash_key_columns(
    key_cols: Dict[str, np.ndarray], key_names: Iterable[str],
) -> np.ndarray:
    """One 64-bit key fingerprint per composite key, batch-vectorized.

    Composite keys are mixed like the hash router mixes them (avalanche
    per column with a per-column offset, XOR-combined, finalized) so the
    columns cannot cancel; single-column keys pass through raw.  Either
    way the result is a deterministic *fingerprint* whose uniformity is
    NOT guaranteed — :class:`NegativeFilter` always applies its own
    salted avalanche before deriving probe coordinates, and nothing else
    may consume these values as hash bits.  Works for any router
    strategy — the filter fingerprints keys, not placements.
    """
    names: Tuple[str, ...] = tuple(key_names)
    if len(names) == 1:
        # Single-column fast path: the raw key bits, zero passes.  The
        # filter's own salted avalanche (see ``NegativeFilter._coords``)
        # supplies ALL the mixing, so pre-avalanching a lone column only
        # burns time.  The output of this function is therefore a key
        # *fingerprint*, not uniform bits — only the filter (which
        # re-mixes) may consume it.
        return np.ascontiguousarray(
            key_cols[names[0]], dtype=np.int64).view(np.uint64)
    first = np.asarray(key_cols[names[0]])
    h = np.zeros(first.size, dtype=np.uint64)
    for i, name in enumerate(names):
        col = np.ascontiguousarray(
            key_cols[name], dtype=np.int64).view(np.uint64)
        offset = np.uint64(((i + 1) * int(_GOLDEN)) & 0xFFFFFFFFFFFFFFFF)
        h ^= _mix64(col + offset)
    return _mix64(h)


class NegativeFilter:
    """Blocked Bloom filter over 64-bit key hashes (no false negatives)."""

    __slots__ = ("_words", "k")

    #: Probes may answer True for absent keys (Bloom false positives);
    #: exact filters (:class:`DenseNegativeFilter`) override this.
    exact = False

    #: Default sizing: ~10 filter bits per inserted key.
    BITS_PER_KEY = 10
    #: Default probes per key; all ``k`` bit positions land in one word.
    K = 4

    def __init__(self, n_words: int, k: int = K):
        if n_words < 1:
            raise ValueError("n_words must be >= 1")
        if not 1 <= k <= 6:
            # The k 6-bit position fields and the word index share one
            # 64-bit avalanche; k <= 6 leaves >= 28 bits for the index.
            raise ValueError("k must be in [1, 6]")
        self._words = np.zeros(int(n_words), dtype=np.uint64)
        self.k = int(k)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, hashes: np.ndarray, bits_per_key: int = BITS_PER_KEY,
              k: int = K) -> "NegativeFilter":
        """Size a filter for ``hashes`` and insert them all."""
        n = int(np.asarray(hashes).size)
        n_words = max(1, -(-n * int(bits_per_key) // 64))
        filt = cls(n_words, k=k)
        filt.add(hashes)
        return filt

    def add(self, hashes: np.ndarray) -> None:
        """Insert key hashes (vectorized; duplicates are harmless)."""
        h = np.asarray(hashes, dtype=np.uint64)
        if h.size == 0:
            return
        idx, mask = self._coords(h)
        np.bitwise_or.at(self._words, idx, mask)

    def try_add(self, hashes: np.ndarray) -> bool:
        """:meth:`add` that reports success — a Bloom filter accepts any
        hash, so always True (the dense variant can decline)."""
        self.add(hashes)
        return True

    # ------------------------------------------------------------------
    # Probe
    # ------------------------------------------------------------------
    def might_contain(self, hashes: np.ndarray) -> np.ndarray:
        """Boolean per hash: False is definitive, True may be a false
        positive.  Every hash previously :meth:`add`-ed answers True."""
        h = np.asarray(hashes, dtype=np.uint64)
        if h.size == 0:
            return np.zeros(0, dtype=bool)
        idx, mask = self._coords(h)
        words = self._words[idx]  # one gather; all k probes hit this word
        return np.bitwise_and(words, mask) == mask

    def _coords(self, h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(word_index, k-bit probe mask)`` per hash.

        Both coordinates come from a fresh salted avalanche of the input
        hash, never from the input's own residues: the hash router
        reduces *its* final avalanche modulo ``n_shards``, so within one
        shard every incoming hash shares a residue class — used raw for
        the word index, that class would alias onto a fraction of the
        words whenever ``gcd(n_shards, n_words) > 1`` (quadrupling fill
        there and wrecking the FPR).  The re-mix makes the filter
        indifferent to any structure in its input.
        """
        h2 = _mix64(np.bitwise_xor(h, _BIT_SALT), copy=False)
        # Low 6k bits feed the k in-word positions; the word index takes
        # the bits above them so the two coordinates stay independent.
        idx = _word_index(h2, self.k, np.uint64(self._words.size))
        return idx, _bit_mask(h2, self.k)

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """In-memory filter size (the word array)."""
        return int(self._words.nbytes)

    def to_json(self) -> Dict[str, object]:
        """Manifest-embeddable state: params + ``base64(zlib(words))``."""
        raw = self._words.tobytes()
        return {
            "kind": "bloom64",
            "k": self.k,
            "n_words": int(self._words.size),
            "data": base64.b64encode(zlib.compress(raw, 6)).decode("ascii"),
        }

    @classmethod
    def from_json(cls, state: Dict[str, object]) -> "NegativeFilter":
        kind = state.get("kind")
        if kind != "bloom64":
            raise ValueError(f"unknown negative-filter kind {kind!r}")
        raw = zlib.decompress(base64.b64decode(state["data"]))
        # .copy(): frombuffer over bytes is read-only, and a loaded
        # writable store keeps inserting into the filter.
        words = np.frombuffer(raw, dtype=np.uint64).copy()
        if words.size != int(state["n_words"]):
            raise ValueError(
                f"negative filter payload holds {words.size} words, "
                f"manifest says {state['n_words']}")
        filt = cls.__new__(cls)
        filt._words = words
        filt.k = int(state["k"])
        return filt

    def __repr__(self) -> str:
        set_bits = int(np.unpackbits(self._words.view(np.uint8)).sum())
        return (f"NegativeFilter(words={self._words.size}, k={self.k}, "
                f"fill={set_bits / (64 * self._words.size):.3f})")


_B63 = np.uint64(63)
_SIX = np.uint64(6)


class DenseNegativeFilter:
    """Exact one-bit-per-domain-value existence map over key fingerprints.

    This is DeepMapping's own Sec. III-C existence bit-vector hoisted to
    the manifest tier: when the key fingerprints are *raw* single-column
    keys (see :func:`hash_key_columns`) spanning a dense domain, a plain
    bitmap over ``[lo, lo + n_bits)`` answers membership **exactly** —
    no hashing, no false positives, and still never a false negative.
    The probe is a subtract, one gather and a bit test, several times
    cheaper than a Bloom probe, and exactness means tier-2 screening and
    shard dispatch are skipped entirely for true misses.

    Only :func:`build_store_filter` chooses this structure, and only
    when the fingerprint domain fits a bits-per-key budget; composite
    keys (avalanched fingerprints) or sparse domains always fall back to
    the blocked Bloom filter.  Deletes never clear bits, preserving the
    same superset-until-rebuild contract; an insert outside the built
    domain cannot be represented, so :meth:`try_add` declines and the
    owner rebuilds (see ``ShardedDeepMapping.refresh_store_filter``).
    """

    __slots__ = ("_words", "lo", "n_bits")

    exact = True

    def __init__(self, lo: int, n_bits: int):
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        self.lo = int(lo)
        self.n_bits = int(n_bits)
        self._words = np.zeros((self.n_bits + 63) // 64, dtype=np.uint64)

    @classmethod
    def build(cls, hashes: np.ndarray, lo: int, n_bits: int,
              ) -> "DenseNegativeFilter":
        filt = cls(lo, n_bits)
        filt.add(hashes)
        return filt

    def _offsets(self, hashes: np.ndarray) -> np.ndarray:
        # Fingerprints of raw int64 keys were .view()-ed to uint64; view
        # back so ordering (and the subtract) is the keys' own.
        x = np.ascontiguousarray(hashes, dtype=np.uint64).view(np.int64)
        return x - np.int64(self.lo)

    def add(self, hashes: np.ndarray) -> None:
        """Insert fingerprints; raises ``ValueError`` outside the domain."""
        off = self._offsets(hashes)
        if off.size == 0:
            return
        if int(off.min()) < 0 or int(off.max()) >= self.n_bits:
            raise ValueError("fingerprint outside the dense filter domain")
        off = off.view(np.uint64)
        np.bitwise_or.at(self._words, np.right_shift(off, _SIX),
                         np.left_shift(_ONE, np.bitwise_and(off, _B63)))

    def try_add(self, hashes: np.ndarray) -> bool:
        """Insert if every fingerprint fits the domain; False otherwise
        (nothing inserted — the owner must rebuild the filter)."""
        off = self._offsets(hashes)
        if off.size and (int(off.min()) < 0
                         or int(off.max()) >= self.n_bits):
            return False
        self.add(hashes)
        return True

    def might_contain(self, hashes: np.ndarray) -> np.ndarray:
        """Boolean per fingerprint — exact (False IS "not present")."""
        off = self._offsets(hashes)
        if off.size == 0:
            return np.zeros(0, dtype=bool)
        in_range = (off >= 0) & (off < np.int64(self.n_bits))
        # Out-of-range offsets read a clipped word instead of branching;
        # the final AND with ``in_range`` discards whatever they saw
        # (the bit position uses the offset's low 6 bits, harmless).
        u = off.view(np.uint64)
        idx = np.right_shift(u, _SIX).view(np.int64)
        np.clip(idx, 0, self._words.size - 1, out=idx)
        words = self._words[idx]
        bit = np.left_shift(_ONE, np.bitwise_and(u, _B63))
        hit = np.bitwise_and(words, bit) != 0
        hit &= in_range
        return hit

    @property
    def nbytes(self) -> int:
        return int(self._words.nbytes)

    def to_json(self) -> Dict[str, object]:
        raw = self._words.tobytes()
        return {
            "kind": "dense64",
            "lo": self.lo,
            "n_bits": self.n_bits,
            "data": base64.b64encode(zlib.compress(raw, 6)).decode("ascii"),
        }

    @classmethod
    def from_json(cls, state: Dict[str, object]) -> "DenseNegativeFilter":
        kind = state.get("kind")
        if kind != "dense64":
            raise ValueError(f"unknown negative-filter kind {kind!r}")
        raw = zlib.decompress(base64.b64decode(state["data"]))
        words = np.frombuffer(raw, dtype=np.uint64).copy()
        filt = cls.__new__(cls)
        filt.lo = int(state["lo"])
        filt.n_bits = int(state["n_bits"])
        filt._words = words
        if words.size != (filt.n_bits + 63) // 64:
            raise ValueError(
                f"dense filter payload holds {words.size} words, "
                f"manifest implies {(filt.n_bits + 63) // 64}")
        return filt

    def __repr__(self) -> str:
        set_bits = int(np.unpackbits(self._words.view(np.uint8)).sum())
        return (f"DenseNegativeFilter(lo={self.lo}, n_bits={self.n_bits}, "
                f"fill={set_bits / max(1, self.n_bits):.3f})")


#: Dense-domain budget for :func:`build_store_filter`: the bitmap is
#: chosen only when it costs <= this many raw bits per key, so even
#: incompressible fills stay inside the manifest's byte budget.
DENSE_MAX_BITS_PER_KEY = 8


def build_store_filter(hashes: np.ndarray,
                       bits_per_key: int = NegativeFilter.BITS_PER_KEY,
                       k: int = NegativeFilter.K):
    """The store-level (tier-1) filter for a set of key fingerprints.

    Picks the exact :class:`DenseNegativeFilter` when the fingerprints
    span a domain of at most :data:`DENSE_MAX_BITS_PER_KEY` bits per
    key — true for raw single-column keys over dense-ish domains, the
    common paper workload — and the blocked Bloom :class:`NegativeFilter`
    otherwise (composite avalanched fingerprints always look sparse, so
    they land here by construction).
    """
    h = np.asarray(hashes, dtype=np.uint64)
    if h.size:
        x = h.view(np.int64)
        lo = int(x.min())
        domain = int(x.max()) - lo + 1
        if domain <= max(64, DENSE_MAX_BITS_PER_KEY * int(h.size)):
            return DenseNegativeFilter.build(h, lo, domain)
    return NegativeFilter.build(h, bits_per_key=bits_per_key, k=k)


def filter_from_json(state: Dict[str, object]):
    """Restore any persisted negative filter by its ``kind`` tag."""
    kind = state.get("kind") if isinstance(state, dict) else None
    if kind == "dense64":
        return DenseNegativeFilter.from_json(state)
    return NegativeFilter.from_json(state)


class FilterBank:
    """One vectorized probe across a whole shard topology's filters.

    Probing shard-by-shard costs a boolean mask, a ``flatnonzero`` and
    two gathers *per shard* per batch.  The bank concatenates every
    shard's word array once and answers the whole batch with a single
    routed gather: ``word = words[offset[shard] + h2 % size[shard]]`` —
    per-key cost independent of the shard count.  Shards without a
    filter (empty shards, or filters disabled) get ``size = 0`` and
    always answer "might contain", i.e. are never pruned.

    The bank snapshots the filters' words at construction; the owning
    store rebuilds it whenever a filter is added to, refreshed, or
    swapped (see ``ShardedDeepMapping._filter_bank``).  Requires every
    present filter to share one ``k`` (always true for filters built
    with the default; :attr:`uniform` is False otherwise and the owner
    must fall back to per-shard probes).
    """

    __slots__ = ("uniform", "k", "_words", "_offsets", "_sizes")

    def __init__(self, filters):
        ks = {f.k for f in filters if f is not None}
        self.uniform = len(ks) <= 1
        self.k = ks.pop() if ks else NegativeFilter.K
        if not self.uniform:
            return
        self._offsets = np.zeros(len(filters), dtype=np.int64)
        self._sizes = np.zeros(len(filters), dtype=np.uint64)
        parts = []
        offset = 0
        for ordinal, filt in enumerate(filters):
            if filt is None:
                continue
            self._offsets[ordinal] = offset
            self._sizes[ordinal] = filt._words.size
            parts.append(filt._words)
            offset += filt._words.size
        self._words = (np.concatenate(parts) if parts
                       else np.zeros(1, dtype=np.uint64))

    def might_contain(self, shard_ids: np.ndarray,
                      hashes: np.ndarray) -> np.ndarray:
        """Boolean per key, routed: ``False`` is a guaranteed miss in
        the key's own shard; keys of filterless shards answer ``True``."""
        h2 = _mix64(np.bitwise_xor(np.asarray(hashes, dtype=np.uint64),
                                   _BIT_SALT), copy=False)
        sizes = self._sizes[shard_ids]
        idx = _word_index(h2, self.k, sizes)
        idx += self._offsets[shard_ids]
        words = self._words[idx]
        mask = _bit_mask(h2, self.k)
        hit = np.bitwise_and(words, mask) == mask
        # Filterless shards (size 0) must never prune.
        return np.logical_or(hit, sizes == 0, out=hit)
