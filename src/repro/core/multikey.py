"""Multiple-key and multiple-relation mappings (paper Sec. III).

The paper's problem statement generalizes single-relation single-key
mappings in two directions; both are built from the core structure:

- :class:`MultiKeyDeepMapping` — *single relation, multiple keys*: the same
  relation queried through different key columns (e.g. look Orders up by
  ``o_orderkey`` or by ``o_custkey``).  One DeepMapping per key designation,
  built over the same rows.
- :class:`MultiRelationDeepMapping` — *multiple relations, multiple keys*:
  a set of relations (e.g. a star schema) each carrying its own mapping,
  addressed by relation name, with cross-relation lookups chaining through
  foreign keys (:meth:`MultiRelationDeepMapping.lookup_via`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..data.table import ColumnTable
from .config import DeepMappingConfig
from .deep_mapping import DeepMapping, LookupResult

__all__ = ["MultiKeyDeepMapping", "MultiRelationDeepMapping"]


class MultiKeyDeepMapping:
    """One relation queryable through several alternative keys.

    Each key designation gets its own hybrid structure; keys whose values
    do not uniquely identify rows are rejected at build time (the paper
    requires ``d_mu`` to return *the* value for a key).
    """

    def __init__(self, mappings: Dict[Tuple[str, ...], DeepMapping]):
        if not mappings:
            raise ValueError("at least one key designation required")
        self._mappings = dict(mappings)

    @classmethod
    def fit(
        cls,
        table: ColumnTable,
        keys: Sequence[Sequence[str]],
        config: Optional[DeepMappingConfig] = None,
    ) -> "MultiKeyDeepMapping":
        """Build one DeepMapping per key designation over ``table``."""
        mappings: Dict[Tuple[str, ...], DeepMapping] = {}
        for key in keys:
            key = tuple(key)
            rekeyed = ColumnTable(table.columns_dict(), key=key, name=table.name)
            mappings[key] = DeepMapping.fit(rekeyed, config)
        return cls(mappings)

    @property
    def keys(self) -> Tuple[Tuple[str, ...], ...]:
        """Available key designations."""
        return tuple(self._mappings)

    def mapping_for(self, key: Sequence[str]) -> DeepMapping:
        """The structure serving one key designation."""
        try:
            return self._mappings[tuple(key)]
        except KeyError:
            raise KeyError(
                f"no mapping keyed by {tuple(key)}; have {self.keys}"
            ) from None

    def lookup(self, key: Sequence[str], keys_batch) -> LookupResult:
        """Lookup through the chosen key designation."""
        return self.mapping_for(key).lookup(keys_batch)

    def storage_bytes(self) -> int:
        """Total footprint across all key designations."""
        return sum(m.storage_bytes() for m in self._mappings.values())

    def __repr__(self) -> str:
        return f"MultiKeyDeepMapping(keys={list(self.keys)})"


class MultiRelationDeepMapping:
    """A set of relations, each with its own DeepMapping, supporting
    foreign-key chained lookups across relations."""

    def __init__(self, mappings: Dict[str, DeepMapping]):
        if not mappings:
            raise ValueError("at least one relation required")
        self._mappings = dict(mappings)

    @classmethod
    def fit(
        cls,
        tables: Dict[str, ColumnTable],
        config: Optional[DeepMappingConfig] = None,
        configs: Optional[Dict[str, DeepMappingConfig]] = None,
    ) -> "MultiRelationDeepMapping":
        """Build one DeepMapping per relation.

        ``configs`` overrides ``config`` per relation name when present.
        """
        mappings = {}
        for name, table in tables.items():
            chosen = (configs or {}).get(name, config)
            mappings[name] = DeepMapping.fit(table, chosen)
        return cls(mappings)

    @property
    def relations(self) -> Tuple[str, ...]:
        """Relation names, sorted."""
        return tuple(sorted(self._mappings))

    def relation(self, name: str) -> DeepMapping:
        """The structure for one relation."""
        try:
            return self._mappings[name]
        except KeyError:
            raise KeyError(
                f"unknown relation {name!r}; have {self.relations}"
            ) from None

    def lookup(self, relation: str, keys_batch) -> LookupResult:
        """Point lookup in one relation."""
        return self.relation(relation).lookup(keys_batch)

    def lookup_via(
        self,
        fact: str,
        fact_keys,
        fk_column: str,
        dimension: str,
    ) -> Tuple[LookupResult, LookupResult]:
        """Cross-relation lookup: fetch fact rows, follow a foreign key
        into a dimension relation (the paper's star-schema scenario).

        Returns ``(fact_result, dimension_result)``; dimension rows for
        fact keys that were not found are marked missing.
        """
        fact_map = self.relation(fact)
        if fk_column not in fact_map.value_names:
            raise KeyError(f"{fk_column!r} is not a value column of {fact!r}")
        dim_map = self.relation(dimension)
        if len(dim_map.key_names) != 1:
            raise ValueError("dimension relation must have a single-column key")

        fact_result = fact_map.lookup(fact_keys)
        fk_values = np.asarray(fact_result.values[fk_column], dtype=np.int64)
        # Fact rows that were missing get an out-of-domain FK probe so the
        # dimension lookup reports them as not found.
        fk_values = np.where(fact_result.found, fk_values, -1)
        dim_result = dim_map.lookup({dim_map.key_names[0]: fk_values})
        dim_result.found &= fact_result.found
        return fact_result, dim_result

    def storage_bytes(self) -> int:
        """Total footprint across relations."""
        return sum(m.storage_bytes() for m in self._mappings.values())

    def __repr__(self) -> str:
        return f"MultiRelationDeepMapping(relations={list(self.relations)})"
