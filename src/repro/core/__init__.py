"""DeepMapping core: the hybrid learned structure and its workflows."""

from . import mhas
from .aux_table import AuxiliaryTable
from .config import DeepMappingConfig
from .deep_mapping import DeepMapping, LookupResult, SizeReport
from .exist_index import (ExistenceIndex, SparseExistenceIndex,
                          existence_from_state, load_existence,
                          make_existence_index)
from .modify import ModificationTracker, estimate_batch_bytes
from .negative_filter import NegativeFilter, hash_key_columns
from .multikey import MultiKeyDeepMapping, MultiRelationDeepMapping
from .query import QueryError, run_select, select
from .range_query import build_range_view, lookup_range
from .verify import VerificationReport, verify

__all__ = [
    "DeepMapping",
    "DeepMappingConfig",
    "LookupResult",
    "SizeReport",
    "AuxiliaryTable",
    "ExistenceIndex",
    "SparseExistenceIndex",
    "make_existence_index",
    "load_existence",
    "existence_from_state",
    "ModificationTracker",
    "estimate_batch_bytes",
    "NegativeFilter",
    "hash_key_columns",
    "MultiKeyDeepMapping",
    "MultiRelationDeepMapping",
    "lookup_range",
    "build_range_view",
    "select",
    "run_select",
    "QueryError",
    "verify",
    "VerificationReport",
    "mhas",
]
