"""Configuration for building DeepMapping structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["DeepMappingConfig"]


@dataclass
class DeepMappingConfig:
    """Build/training/storage knobs for :class:`~repro.core.DeepMapping`.

    Defaults are scaled-down versions of the paper's settings (Sec. V-A6)
    so that structures build in seconds on a laptop; the benchmark configs
    state any deviations per experiment.
    """

    # -- key encoding -------------------------------------------------
    #: Digit base(s) of the one-hot key encoding.  A tuple of (ideally
    #: co-prime) bases concatenates one expansion per base, handing the
    #: model the key's residues modulo each base power — which makes
    #: cross-product tables learnable by small models (see
    #: :class:`~repro.data.encoding.KeyEncoder`).
    key_base: "int | tuple" = 10
    #: Extra headroom (fraction of the observed extent) reserved on the
    #: slowest-varying key column so future insertions stay in-domain.
    key_headroom_fraction: float = 0.0

    # -- architecture (used when ``use_search`` is False) --------------
    #: Hidden widths of the shared trunk.
    shared_sizes: Tuple[int, ...] = (64,)
    #: Hidden widths of each task's private chain.
    private_sizes: Tuple[int, ...] = (32,)
    #: Run MHAS instead of the fixed sizes above.
    use_search: bool = False
    #: Optional :class:`~repro.core.mhas.MHASConfig`; defaults applied when
    #: ``use_search`` and this is None.
    search: Optional[object] = None

    # -- training -------------------------------------------------------
    #: Maximum training epochs (paper trains until the loss delta < tol).
    epochs: int = 120
    #: Mini-batch size (paper: 16384; scaled down with the datasets so the
    #: step count per epoch stays comparable).
    batch_size: int = 1024
    #: Adam learning rate (paper: 0.001; slightly higher converges faster
    #: at this scale).
    learning_rate: float = 0.003
    #: Per-step exponential decay of the learning rate (paper: 0.999).
    lr_decay: float = 0.999
    #: Early-stopping tolerance on the epoch-loss delta (paper: 1e-4,
    #: tightened because scaled losses are smaller).
    tol: float = 1e-5
    #: Storage dtype of frozen model weights.
    weight_dtype: str = "float16"

    # -- auxiliary structure -------------------------------------------
    #: Codec for auxiliary-table partitions ("zstd" -> DM-Z, "lzma" -> DM-L).
    aux_codec: str = "zstd"
    #: Target uncompressed partition size (paper tunes 128KB..8MB).
    aux_partition_bytes: int = 64 * 1024
    #: Fold the modification overlay into compressed partitions once it
    #: holds this many rows.
    aux_auto_compact_rows: int = 4096

    # -- modifications ---------------------------------------------------
    #: Retrain once this many bytes have been inserted/deleted/updated
    #: since the last build (paper's DM-Z1 uses 200MB); None disables.
    retrain_threshold_bytes: Optional[int] = None
    #: Retrain once ``len(T_aux) / n_rows`` exceeds this fraction — the
    #: auxiliary table absorbing modifications is the structure's storage
    #: regression, so bounding its share bounds the compression loss
    #: between retrains.  None disables the check.  Structures under
    #: ``modify.MIN_ROWS_FOR_RATIO_RETRAIN`` rows never fire it (tiny
    #: tables whose residuals dominate ``T_aux`` would thrash).
    retrain_aux_ratio: Optional[float] = None
    #: Initialize retrains from the previous model's weights — the paper's
    #: model-reuse direction (Sec. V-D); big speedup on the retrain path.
    warm_start_rebuild: bool = True

    # -- misc -------------------------------------------------------------
    #: Seed for weight init and shuffling.
    seed: int = 0
    #: Batch size for model inference at query time.
    inference_batch: int = 65536
    #: Serve lookups through the fused
    #: :class:`~repro.nn.compiled.CompiledSession` kernel (float32 weights
    #: cached once, gather-based first layer, existence-gated batches).
    #: Off falls back to the reference ``InferenceSession`` path — same
    #: answers, slower; kept for parity testing and benchmarking.  When
    #: this is on, build and modification residual masks cover *both*
    #: predictors' errors, so turning it off at query time is always
    #: lossless; turning it *on* for a structure built entirely with it
    #: off is not guaranteed lossless (its ``T_aux`` only covers the
    #: reference predictor's errors).
    compiled_lookup: bool = True

    def __post_init__(self):
        bases = ((self.key_base,) if isinstance(self.key_base, int)
                 else tuple(self.key_base))
        if not bases or any(b < 2 for b in bases):
            raise ValueError("every key base must be >= 2")
        if self.key_headroom_fraction < 0:
            raise ValueError("key_headroom_fraction must be non-negative")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.aux_partition_bytes <= 0:
            raise ValueError("aux_partition_bytes must be positive")
        if self.aux_auto_compact_rows <= 0:
            raise ValueError("aux_auto_compact_rows must be positive")
        if self.retrain_threshold_bytes is not None and self.retrain_threshold_bytes <= 0:
            raise ValueError("retrain_threshold_bytes must be positive or None")
        if self.retrain_aux_ratio is not None and not 0 < self.retrain_aux_ratio <= 1:
            raise ValueError("retrain_aux_ratio must be in (0, 1] or None")
