"""Auxiliary accuracy-assurance table ``T_aux`` (paper Sec. IV-B1).

Stores the key→value pairs the model misclassifies, as *label codes*:

- rows are sorted by flattened key, partitioned, and each partition is
  compressed (Z-Standard or LZMA in the paper — DM-Z / DM-L);
- lookups locate the partition (binary search over boundaries), fault it
  into the buffer pool, decompress once per query batch, and binary-search
  the key inside — all inherited from
  :class:`~repro.storage.partition.SortedPartitionStore`;
- modifications (Algorithms 3–5) are absorbed by a small in-memory overlay
  (adds/updates plus tombstones) that :meth:`compact` merges back into the
  compressed partitions.

The overlay keeps single-row mutations O(1) instead of rewriting a
compressed partition per operation; its serialized size is charged to the
auxiliary structure so the retrain trigger sees the true footprint.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..storage.buffer_pool import BufferPool
from ..storage.disk import DiskStore
from ..storage.partition import SortedPartitionStore
from ..storage.serializer import minimal_int_dtype, serialized_size
from ..storage.stats import StoreStats

__all__ = ["AuxiliaryTable"]


class AuxiliaryTable:
    """Compressed, partitioned store of misclassified (key, codes) rows.

    Parameters
    ----------
    tasks:
        Value-column (task) names, defining the code tuple layout.
    codec / target_partition_bytes:
        Partition compression settings (paper's DM-Z vs DM-L knob).
    disk / pool / stats:
        Storage substrate; private instances created when omitted.
    name_prefix:
        Partition blob-name prefix.  Callers sharing one disk store or
        buffer pool across several auxiliary tables (the sharded store)
        must give each table a distinct prefix so cached partitions never
        collide.
    """

    def __init__(
        self,
        tasks: Tuple[str, ...],
        codec: str = "zstd",
        target_partition_bytes: int = 64 * 1024,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
        auto_compact_rows: int = 4096,
        name_prefix: str = "aux",
    ):
        if not tasks:
            raise ValueError("at least one task is required")
        if auto_compact_rows <= 0:
            raise ValueError("auto_compact_rows must be positive")
        self.tasks = tuple(tasks)
        self.auto_compact_rows = auto_compact_rows
        self.stats = stats if stats is not None else StoreStats()
        self._store = SortedPartitionStore(
            codec=codec,
            target_partition_bytes=target_partition_bytes,
            disk=disk,
            pool=pool,
            stats=self.stats,
            name_prefix=name_prefix,
        )
        self._overlay: Dict[int, Tuple[int, ...]] = {}
        self._tombstones: set = set()
        self._pending: Optional[
            Tuple[np.ndarray, Dict[str, np.ndarray]]] = None
        self._pending_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, flat_keys: np.ndarray, codes: Dict[str, np.ndarray]) -> None:
        """(Re)build the partitions from misclassified rows."""
        flat_keys = np.asarray(flat_keys, dtype=np.int64)
        columns = {}
        for task in self.tasks:
            col = np.asarray(codes[task], dtype=np.int64)
            max_code = int(col.max()) if col.size else 0
            columns[task] = col.astype(minimal_int_dtype(max_code))
        self._store.build(flat_keys, columns)
        self._overlay.clear()
        self._tombstones.clear()
        # Cleared *after* the partitions land so a concurrent reader in
        # :meth:`_ensure_built` never sees "built" before it is true.
        self._pending = None

    def build_lazy(self, flat_keys: np.ndarray,
                   codes: Dict[str, np.ndarray]) -> None:
        """Record rows but defer partition materialization to first use.

        Read-only cold opens call this with zero-copy views into the
        payload mapping (already pinned by the owning bundle), so the
        deferral retains no extra memory; the compress-and-write cost of
        :meth:`build` is paid on the first probe instead of at open
        time.  Thread-safe: concurrent first probes build exactly once.
        """
        self._overlay.clear()
        self._tombstones.clear()
        self._pending = (flat_keys, codes)

    def _ensure_built(self) -> None:
        """Materialize partitions deferred by :meth:`build_lazy`."""
        if self._pending is None:
            return
        with self._pending_lock:
            pending = self._pending
            if pending is None:      # lost the race: already built
                return
            self.build(*pending)

    @property
    def pool(self) -> BufferPool:
        """The buffer pool caching this table's decompressed partitions."""
        return self._store.pool

    @property
    def name_prefix(self) -> str:
        """Partition blob-name prefix (see the constructor)."""
        return self._store.name_prefix

    def drop_storage(self) -> None:
        """Delete this table's partitions and purge them from the pool.

        Called when a rebuilt structure replaces this table: the successor
        reuses the same pool and name prefix, so stale cached blocks must
        not survive under the names the successor will fault in.
        """
        self._pending = None
        self._store.drop_storage()
        self._overlay.clear()
        self._tombstones.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup_batch(
        self, flat_keys: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Return ``(found, codes)`` for a batch of flattened keys.

        Overlay entries win over partitions; tombstoned keys read as
        absent.  Code arrays are int64 and only meaningful where ``found``.
        """
        self._ensure_built()
        flat_keys = np.asarray(flat_keys, dtype=np.int64)
        found, raw = self._store.lookup_batch(flat_keys)
        codes = {t: np.asarray(raw[t], dtype=np.int64) for t in self.tasks}
        if self._tombstones or self._overlay:
            for i, key in enumerate(flat_keys.tolist()):
                if key in self._tombstones:
                    found[i] = False
                elif key in self._overlay:
                    found[i] = True
                    row = self._overlay[key]
                    for j, task in enumerate(self.tasks):
                        codes[task][i] = row[j]
        return found, codes

    def contains(self, flat_key: int) -> bool:
        """Membership test for a single key."""
        found, _ = self.lookup_batch(np.array([flat_key], dtype=np.int64))
        return bool(found[0])

    # ------------------------------------------------------------------
    # Mutations (the paper's Algorithms 3-5 write through these)
    # ------------------------------------------------------------------
    def add_batch(self, flat_keys: np.ndarray, codes: Dict[str, np.ndarray]) -> None:
        """Insert or overwrite rows (misclassified inserts / updates)."""
        flat_keys = np.asarray(flat_keys, dtype=np.int64)
        for i, key in enumerate(flat_keys.tolist()):
            self._tombstones.discard(key)
            self._overlay[key] = tuple(
                int(codes[task][i]) for task in self.tasks
            )
        self._maybe_compact()

    def remove_batch(self, flat_keys: np.ndarray) -> None:
        """Remove rows if present (deletes / updates the model now gets
        right).  Removal of an absent key is a no-op."""
        self._ensure_built()
        flat_keys = np.asarray(flat_keys, dtype=np.int64)
        in_parts, _ = self._store.lookup_batch(flat_keys)
        for i, key in enumerate(flat_keys.tolist()):
            self._overlay.pop(key, None)
            if in_parts[i]:
                self._tombstones.add(key)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Fold the overlay into compressed partitions once it grows past
        ``auto_compact_rows`` (keeps the offline footprint honest: the
        paper stores misclassified modifications compressed)."""
        if len(self._overlay) + len(self._tombstones) >= self.auto_compact_rows:
            self.compact()

    # ------------------------------------------------------------------
    # Maintenance / accounting
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Merge the overlay and tombstones back into compressed partitions."""
        if not self._overlay and not self._tombstones:
            return
        self._ensure_built()
        keys, columns = self._store.scan()
        merged: Dict[int, Tuple[int, ...]] = {
            int(k): tuple(int(columns[t][i]) for t in self.tasks)
            for i, k in enumerate(keys)
            if int(k) not in self._tombstones
        }
        merged.update(self._overlay)
        if merged:
            new_keys = np.array(sorted(merged), dtype=np.int64)
            new_codes = {
                t: np.array([merged[k][j] for k in new_keys.tolist()],
                            dtype=np.int64)
                for j, t in enumerate(self.tasks)
            }
        else:
            new_keys = np.empty(0, dtype=np.int64)
            new_codes = {t: np.empty(0, dtype=np.int64) for t in self.tasks}
        self.build(new_keys, new_codes)

    def __len__(self) -> int:
        """Live row count (partitions − tombstones + fresh overlay rows)."""
        self._ensure_built()
        overlay_new = sum(
            1 for key in self._overlay
            if not self._store.lookup_batch(np.array([key]))[0][0]
        )
        return len(self._store) - len(self._tombstones) + overlay_new

    def stored_bytes(self) -> int:
        """Offline footprint: compressed partitions + serialized overlay."""
        self._ensure_built()
        overlay_bytes = 0
        if self._overlay or self._tombstones:
            overlay_bytes = serialized_size((self._overlay, self._tombstones))
        return self._store.stored_bytes() + overlay_bytes

    @property
    def partition_count(self) -> int:
        """Number of compressed partitions."""
        self._ensure_built()
        return len(self._store.partitions)

    def scan(self) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Materialize all live rows, sorted by key (overlay merged)."""
        self._ensure_built()
        self_keys, columns = self._store.scan()
        merged: Dict[int, Tuple[int, ...]] = {
            int(k): tuple(int(columns[t][i]) for t in self.tasks)
            for i, k in enumerate(self_keys)
            if int(k) not in self._tombstones
        }
        merged.update(self._overlay)
        keys = np.array(sorted(merged), dtype=np.int64)
        codes = {
            t: np.array([merged[k][j] for k in keys.tolist()], dtype=np.int64)
            for j, t in enumerate(self.tasks)
        }
        return keys, codes

    def __repr__(self) -> str:
        return (
            f"AuxiliaryTable(tasks={list(self.tasks)}, rows={len(self)}, "
            f"partitions={self.partition_count}, "
            f"overlay={len(self._overlay)}, tombstones={len(self._tombstones)})"
        )
