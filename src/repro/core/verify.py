"""Verification utilities: audit a structure against source data.

DeepMapping's contract is *losslessness* (paper Desideratum #1): every
stored row returns exactly, no spurious rows appear.  :func:`verify`
re-checks that contract against a source table — useful after builds,
migrations, or long modification histories — and reports the evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.table import ColumnTable
from .deep_mapping import DeepMapping

__all__ = ["VerificationReport", "verify"]


@dataclass
class VerificationReport:
    """Outcome of :func:`verify`."""

    rows_checked: int
    rows_missing: int
    cells_wrong: int
    spurious_hits: int
    #: Per-column mismatch counts (only columns with errors appear).
    wrong_by_column: Dict[str, int] = field(default_factory=dict)
    #: Up to 10 offending flat keys per failure class, for debugging.
    examples: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the structure is exactly lossless and hallucination-free."""
        return (self.rows_missing == 0 and self.cells_wrong == 0
                and self.spurious_hits == 0)

    def __repr__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        return (
            f"VerificationReport({status}, checked={self.rows_checked}, "
            f"missing={self.rows_missing}, wrong_cells={self.cells_wrong}, "
            f"spurious={self.spurious_hits})"
        )


def verify(
    mapping: DeepMapping,
    table: ColumnTable,
    probe_absent: int = 1000,
    batch_size: int = 65536,
    rng: Optional[np.random.Generator] = None,
) -> VerificationReport:
    """Audit ``mapping`` against ``table``.

    Checks (1) every row of ``table`` is found and returns exactly its
    values, and (2) up to ``probe_absent`` keys *not* in the table return
    NULL (no hallucination).  ``table`` must use the same key columns.
    """
    if tuple(table.key) != tuple(mapping.key_names):
        raise ValueError(
            f"table key {table.key} != mapping key {mapping.key_names}"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    report = VerificationReport(rows_checked=table.n_rows, rows_missing=0,
                                cells_wrong=0, spurious_hits=0)

    # Pass 1: presence + exactness, in batches.
    for start in range(0, table.n_rows, batch_size):
        chunk = table.take(np.arange(start, min(start + batch_size,
                                                table.n_rows)))
        keys = {k: chunk.column(k) for k in table.key}
        result = mapping.lookup(keys)
        missing = ~result.found
        if missing.any():
            report.rows_missing += int(missing.sum())
            report.examples.setdefault("missing", []).extend(
                np.flatnonzero(missing)[:10].tolist())
        for column in mapping.value_names:
            wrong = result.found & (result.values[column]
                                    != chunk.column(column))
            if wrong.any():
                count = int(wrong.sum())
                report.cells_wrong += count
                report.wrong_by_column[column] = (
                    report.wrong_by_column.get(column, 0) + count)
                report.examples.setdefault(f"wrong:{column}", []).extend(
                    np.flatnonzero(wrong)[:10].tolist())

    # Pass 2: hallucination probes on keys absent from the table.
    if probe_absent > 0:
        flat_present, in_domain = mapping.key_codec.try_flatten(
            table.key_columns_dict())
        present = set(flat_present[in_domain].tolist())
        domain = mapping.key_codec.domain_size
        candidates = rng.integers(0, domain, size=probe_absent * 3)
        absent = np.array([c for c in candidates.tolist()
                           if c not in present][:probe_absent],
                          dtype=np.int64)
        if absent.size:
            key_cols = mapping.key_codec.unflatten(absent)
            result = mapping.lookup(key_cols)
            if result.found.any():
                report.spurious_hits = int(result.found.sum())
                report.examples.setdefault("spurious", []).extend(
                    absent[result.found][:10].tolist())
    return report
