"""Modification bookkeeping: the lazy-update / retrain policy.

The paper's workflows (Sec. IV-D) absorb insert/update/delete into the
auxiliary structure and retrain only when it grows past a threshold
(the evaluation's DM-Z1 variant retrains after 200MB of modifications).
:class:`ModificationTracker` measures modified bytes since the last build
and answers "is it time to retrain?".
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..storage.serializer import serialized_size

__all__ = ["ModificationTracker", "estimate_batch_bytes",
           "MIN_ROWS_FOR_RATIO_RETRAIN"]

#: Structures below this many rows skip ratio-based retrain triggers: a
#: tiny table whose residual rows dominate ``T_aux`` would otherwise
#: thrash through a full rebuild on nearly every mutation batch (the
#: engine-side ``AuxRatioPolicy.min_rows`` guards the same way).
MIN_ROWS_FOR_RATIO_RETRAIN = 64


def estimate_batch_bytes(columns: Dict[str, np.ndarray]) -> int:
    """Serialized size of a modification batch (keys + values)."""
    return serialized_size({n: np.asarray(v) for n, v in columns.items()})


class ModificationTracker:
    """Counts modified bytes and checks the retrain threshold.

    The counters are part of the structure's durable state: a store that
    is saved, restarted, and loaded must keep accumulating toward the
    same threshold, not silently restart from zero (see
    :meth:`to_state` / :meth:`from_state`, persisted by
    ``DeepMapping.save`` / ``load``).
    """

    def __init__(self, threshold_bytes: Optional[int] = None):
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ValueError("threshold_bytes must be positive or None")
        self.threshold_bytes = threshold_bytes
        self.bytes_since_build = 0
        self.ops_since_build = 0
        self.total_retrains = 0

    def record(self, batch_bytes: int, n_ops: int = 1) -> None:
        """Account for one modification batch."""
        self.bytes_since_build += int(batch_bytes)
        self.ops_since_build += int(n_ops)

    def should_retrain(self) -> bool:
        """True when accumulated modifications exceed the threshold."""
        if self.threshold_bytes is None:
            return False
        return self.bytes_since_build >= self.threshold_bytes

    def mark_rebuilt(self) -> None:
        """Reset counters after a retrain."""
        self.bytes_since_build = 0
        self.ops_since_build = 0
        self.total_retrains += 1

    # ------------------------------------------------------------------
    # Persistence (counters survive save/load)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Optional[int]]:
        """JSON-friendly counter snapshot (inverse of :meth:`from_state`)."""
        return {
            "threshold_bytes": self.threshold_bytes,
            "bytes_since_build": self.bytes_since_build,
            "ops_since_build": self.ops_since_build,
            "total_retrains": self.total_retrains,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Optional[int]]) -> "ModificationTracker":
        """Restore a tracker, counters included."""
        tracker = cls(state.get("threshold_bytes"))
        tracker.bytes_since_build = int(state.get("bytes_since_build", 0))
        tracker.ops_since_build = int(state.get("ops_since_build", 0))
        tracker.total_retrains = int(state.get("total_retrains", 0))
        return tracker

    def restore_counters(self, state: Dict[str, Optional[int]]) -> None:
        """Adopt saved counters onto this tracker (threshold kept as-is).

        Used on load: the threshold comes from the (possibly newer) config
        while the accumulated counters come from the saved payload.
        """
        self.bytes_since_build = int(state.get("bytes_since_build", 0))
        self.ops_since_build = int(state.get("ops_since_build", 0))
        self.total_retrains = int(state.get("total_retrains", 0))

    def __repr__(self) -> str:
        return (
            f"ModificationTracker(bytes={self.bytes_since_build}, "
            f"threshold={self.threshold_bytes}, retrains={self.total_retrains})"
        )
