"""Modification bookkeeping: the lazy-update / retrain policy.

The paper's workflows (Sec. IV-D) absorb insert/update/delete into the
auxiliary structure and retrain only when it grows past a threshold
(the evaluation's DM-Z1 variant retrains after 200MB of modifications).
:class:`ModificationTracker` measures modified bytes since the last build
and answers "is it time to retrain?".
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..storage.serializer import serialized_size

__all__ = ["ModificationTracker", "estimate_batch_bytes"]


def estimate_batch_bytes(columns: Dict[str, np.ndarray]) -> int:
    """Serialized size of a modification batch (keys + values)."""
    return serialized_size({n: np.asarray(v) for n, v in columns.items()})


class ModificationTracker:
    """Counts modified bytes and checks the retrain threshold."""

    def __init__(self, threshold_bytes: Optional[int] = None):
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ValueError("threshold_bytes must be positive or None")
        self.threshold_bytes = threshold_bytes
        self.bytes_since_build = 0
        self.ops_since_build = 0
        self.total_retrains = 0

    def record(self, batch_bytes: int, n_ops: int = 1) -> None:
        """Account for one modification batch."""
        self.bytes_since_build += int(batch_bytes)
        self.ops_since_build += int(n_ops)

    def should_retrain(self) -> bool:
        """True when accumulated modifications exceed the threshold."""
        if self.threshold_bytes is None:
            return False
        return self.bytes_since_build >= self.threshold_bytes

    def mark_rebuilt(self) -> None:
        """Reset counters after a retrain."""
        self.bytes_since_build = 0
        self.ops_since_build = 0
        self.total_retrains += 1

    def __repr__(self) -> str:
        return (
            f"ModificationTracker(bytes={self.bytes_since_build}, "
            f"threshold={self.threshold_bytes}, retrains={self.total_retrains})"
        )
