"""The MHAS objective (paper Eq. 1) and its fast estimators.

The controller's reward is the *negated* hybrid size ratio::

    ratio = (size(M) + size(T_aux) + size(V_exist) + size(f_decode)) / size(D)

Evaluating a candidate exactly would mean serializing the model and
rebuilding the auxiliary table per sample; during search we instead
estimate ``size(M)`` from the parameter count and ``size(T_aux)`` from the
misclassification rate on a row sample times a measured compressed
bytes-per-row — cheap enough to score thousands of candidates.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

from ...nn.multitask import ArchitectureSpec, MultiTaskMLP
from ...storage.serializer import serialize_block

__all__ = [
    "approx_model_bytes",
    "measure_aux_bytes_per_row",
    "estimate_ratio",
    "flops_per_lookup",
]

#: Serialization overhead per layer (names, shapes) on top of raw weights.
_PER_LAYER_OVERHEAD = 120


def approx_model_bytes(spec: ArchitectureSpec, weight_dtype_size: int = 2) -> int:
    """Estimated frozen-model size without serializing it."""
    n_layers = len(spec.layer_plan())
    return spec.param_count() * weight_dtype_size + n_layers * _PER_LAYER_OVERHEAD


def measure_aux_bytes_per_row(
    flat_keys: np.ndarray,
    labels: Dict[str, np.ndarray],
    sample: int = 2048,
    level: int = 1,
) -> float:
    """Compressed bytes per auxiliary row, measured on a row sample.

    Mirrors how ``T_aux`` stores rows: key plus per-task codes, serialized
    and compressed with the fast codec.
    """
    n = flat_keys.size
    if n == 0:
        return 1.0
    take = min(sample, n)
    block = {"keys": np.asarray(flat_keys[:take], dtype=np.int64)}
    for task, codes in labels.items():
        block[task] = np.asarray(codes[:take], dtype=np.int64)
    compressed = len(zlib.compress(serialize_block(block), level))
    return max(compressed / take, 0.25)


def estimate_ratio(
    model: MultiTaskMLP,
    x: np.ndarray,
    labels: Dict[str, np.ndarray],
    n_rows: int,
    aux_bytes_per_row: float,
    overhead_bytes: int,
    dataset_bytes: int,
    sample_idx: np.ndarray,
    weight_dtype_size: int = 2,
) -> float:
    """Estimated Eq. 1 ratio for a candidate model.

    ``sample_idx`` selects the rows used to estimate the misclassification
    rate; ``overhead_bytes`` carries the (architecture-independent)
    ``size(V_exist) + size(f_decode)`` terms.
    """
    if dataset_bytes <= 0:
        raise ValueError("dataset_bytes must be positive")
    predicted = model.predict_codes(x[sample_idx])
    mis = np.zeros(sample_idx.size, dtype=bool)
    for task, lab in labels.items():
        mis |= predicted[task] != np.asarray(lab)[sample_idx]
    mis_rate = float(mis.mean()) if sample_idx.size else 0.0
    model_bytes = approx_model_bytes(model.spec, weight_dtype_size)
    aux_bytes = mis_rate * n_rows * aux_bytes_per_row
    return (model_bytes + aux_bytes + overhead_bytes) / dataset_bytes


def flops_per_lookup(spec: ArchitectureSpec) -> int:
    """Multiply-accumulate count of one forward pass — the latency proxy
    used when plotting the search's compression/latency trade-off
    (paper Fig. 10)."""
    return sum(i * o for _, i, o in spec.layer_plan())
