"""MHAS search space (paper Sec. IV-C1).

A candidate model is a tree: one shared DAG (trunk) plus one private DAG
per task (Fig. 3a).  Each DAG is a chain of up to ``max_*_layers`` fully
connected layers whose widths come from ``size_choices``; sampling walks
the DAG picking, at each step, either "stop (connect to the output)" or
"continue to a hidden layer of width w" — one categorical decision over
``len(size_choices) + 1`` options per step, autoregressively.

The resulting decision sequence maps 1:1 onto an
:class:`~repro.nn.multitask.ArchitectureSpec`, and its layers pull weights
from a shared :class:`WeightBank` (ENAS-style parameter sharing, the core
trick the paper borrows and extends to multi-task search).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...nn.layers import Parameter
from ...nn.initializers import glorot_uniform, zeros
from ...nn.multitask import ArchitectureSpec

__all__ = ["MHASConfig", "SearchSpace", "WeightBank", "budgeted_config"]

#: Sentinel decision meaning "stop: connect to the output layer".
STOP = 0


@dataclass
class MHASConfig:
    """Knobs of the multi-task hybrid architecture search.

    Defaults are scaled-down versions of the paper's Sec. V-A6 settings
    (Nt=2000, 5 epochs/iteration, controller every 50 iterations, LSTM-64,
    controller lr 0.00035, sizes in [100, 2000]) so a search finishes in
    seconds on the scaled datasets.
    """

    #: Maximum shared trunk layers (paper: 2).
    max_shared_layers: int = 2
    #: Maximum private layers per task (paper: 2).
    max_private_layers: int = 2
    #: Layer width choices (paper searches 100..2000 neurons).
    size_choices: Tuple[int, ...] = (32, 64, 128, 256)
    #: Total search iterations Nt.
    iterations: int = 40
    #: Model-training epochs per model iteration (paper: 5).
    model_epochs: int = 1
    #: Model-training batch size (paper: 16384).
    model_batch: int = 4096
    #: Train the controller every this many iterations (paper: 50).
    controller_every: int = 5
    #: Architectures sampled per controller update (paper: one batch).
    controller_samples: int = 4
    #: Controller Adam learning rate (paper: 0.00035).
    controller_lr: float = 0.00035
    #: Model Adam learning rate (paper: 0.001, decay 0.999).
    model_lr: float = 0.001
    lr_decay: float = 0.999
    #: LSTM hidden units (paper: 64).
    controller_hidden: int = 64
    #: Entropy bonus weight keeping exploration alive.
    entropy_weight: float = 1e-3
    #: EMA decay of the REINFORCE baseline.
    baseline_decay: float = 0.9
    #: Rows sampled when estimating a candidate's misclassification rate.
    eval_sample: int = 4096
    #: Early-stop tolerance on the best-ratio delta (paper: 1e-4).
    tol: float = 1e-4
    #: Consecutive controller rounds under ``tol`` before stopping.
    patience: int = 4
    #: Frozen-weight dtype assumed when estimating model bytes.
    weight_dtype_size: int = 2

    def __post_init__(self):
        if self.max_shared_layers < 0 or self.max_private_layers < 0:
            raise ValueError("layer maxima must be non-negative")
        if not self.size_choices:
            raise ValueError("size_choices must be non-empty")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")


def budgeted_config(
    n_rows: int,
    base: Optional[MHASConfig] = None,
    reference_rows: int = 4096,
    max_width: Optional[int] = None,
) -> MHASConfig:
    """Scale a search budget to the rows the model must memorize.

    The search entry point for per-shard MHAS: a shard holding a fraction
    of the data neither needs the full iteration budget (fewer mappings to
    score, faster convergence) nor the full width menu (a small table is
    memorized by a small model — dreaMLearning's model-cost-tracks-data
    observation).  Iterations and the evaluation sample shrink with
    ``sqrt(n_rows / reference_rows)`` (floored so the controller still
    gets a few REINFORCE rounds), and ``max_width`` prunes the width
    choices from above (when pruning would empty the menu, ``max_width``
    itself becomes the only choice, so the budget never upsizes past the
    caller's bound).
    """
    if n_rows < 1:
        raise ValueError("n_rows must be >= 1")
    base = base if base is not None else MHASConfig()
    scale = min(1.0, (n_rows / max(reference_rows, 1)) ** 0.5)
    floor = min(base.iterations, 2 * base.controller_every)
    iterations = max(floor, int(round(base.iterations * scale)))
    choices = base.size_choices
    if max_width is not None:
        pruned = tuple(w for w in choices if w <= max_width)
        choices = pruned if pruned else (int(max_width),)
    return replace(
        base,
        iterations=iterations,
        size_choices=choices,
        eval_sample=min(base.eval_sample, max(n_rows, 256)),
    )


class SearchSpace:
    """Decision layout for one multi-task search problem."""

    def __init__(self, input_dim: int, output_dims: Dict[str, int],
                 config: MHASConfig):
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if not output_dims:
            raise ValueError("at least one task required")
        self.input_dim = input_dim
        self.output_dims = dict(output_dims)
        self.tasks = tuple(sorted(output_dims))
        self.config = config
        #: Decision scopes in sampling order: the shared trunk first, then
        #: each task's private chain (paper Fig. 3a tree, preorder).
        self.scopes: List[Tuple[str, int]] = [("shared", config.max_shared_layers)]
        self.scopes.extend((task, config.max_private_layers) for task in self.tasks)

    @property
    def n_options(self) -> int:
        """Options per decision: STOP plus one per width choice."""
        return len(self.config.size_choices) + 1

    @property
    def max_decisions(self) -> int:
        """Upper bound on decisions per sampled architecture."""
        return sum(limit for _, limit in self.scopes)

    def spec_from_decisions(self, decisions: Sequence[int]) -> ArchitectureSpec:
        """Translate a decision sequence into an architecture.

        ``decisions`` lists, scope by scope, the chosen option per step
        (STOP terminates the scope early; trailing steps are then absent).
        """
        sizes = self.config.size_choices
        it = iter(decisions)
        shared: List[int] = []
        private: Dict[str, Tuple[int, ...]] = {}
        for scope, limit in self.scopes:
            chain: List[int] = []
            for _ in range(limit):
                choice = next(it, STOP)
                if choice == STOP:
                    break
                chain.append(sizes[choice - 1])
            if scope == "shared":
                shared = chain
            else:
                private[scope] = tuple(chain)
        return ArchitectureSpec(
            input_dim=self.input_dim,
            shared_sizes=tuple(shared),
            private_sizes=private,
            output_dims=self.output_dims,
        )

    def search_space_size(self) -> int:
        """Number of distinct architectures (for reporting)."""
        n = len(self.config.size_choices)

        def chain_count(limit: int) -> int:
            return sum(n**k for k in range(limit + 1))

        total = chain_count(self.config.max_shared_layers)
        for _ in self.tasks:
            total *= chain_count(self.config.max_private_layers)
        return total


class WeightBank:
    """Shared parameter storage across sampled architectures.

    Parameters are keyed by ``(scope, in_dim, out_dim)``: whenever two
    sampled architectures place a layer of the same shape at the same
    position, they literally share the same tensors — so training any
    sample advances them all (ENAS parameter sharing; paper Sec. IV-C).
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._bank: Dict[Tuple[str, int, int], Tuple[Parameter, Parameter]] = {}

    def provider(self, scope: str, in_dim: int, out_dim: int):
        """WeightProvider for :class:`~repro.nn.multitask.MultiTaskMLP`."""
        key = (scope, in_dim, out_dim)
        entry = self._bank.get(key)
        if entry is None:
            entry = (
                Parameter(glorot_uniform((in_dim, out_dim), self._rng),
                          f"bank/{scope}/{in_dim}x{out_dim}.W"),
                Parameter(zeros(out_dim), f"bank/{scope}/{in_dim}x{out_dim}.b"),
            )
            self._bank[key] = entry
        return entry

    def __len__(self) -> int:
        return len(self._bank)

    def total_params(self) -> int:
        """Scalar weights currently allocated in the bank."""
        return sum(w.size + b.size for w, b in self._bank.values())
