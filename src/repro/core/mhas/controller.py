"""MHAS controller: an LSTM sampling architectures autoregressively.

As in ENAS (and paper Sec. IV-C2), the controller is an LSTM (64 hidden
units) that emits one categorical decision per step through a softmax head;
the sampled decision is embedded and fed back as the next step's input.
Training is REINFORCE with an exponential-moving-average baseline and an
entropy bonus; the reward is the negated Eq. 1 size ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ...nn.activations import softmax
from ...nn.layers import Dense, Embedding, Parameter
from ...nn.lstm import LSTMCell, LSTMState, StepCache
from ...nn.optimizers import Adam
from .search_space import SearchSpace, STOP

__all__ = ["Controller", "Trajectory"]


@dataclass
class Trajectory:
    """One sampled architecture plus everything needed for REINFORCE."""

    decisions: List[int]
    log_prob: float
    entropy: float
    #: Per-step intermediates: (lstm cache, head input h, probs, action).
    steps: List[Tuple[StepCache, np.ndarray, np.ndarray, int]]


class Controller:
    """LSTM policy over the MHAS decision sequence."""

    def __init__(self, space: SearchSpace, rng: np.random.Generator):
        self.space = space
        hidden = space.config.controller_hidden
        n_options = space.n_options
        # Token 0 is the start-of-sequence input; tokens 1.. embed decisions.
        self.embedding = Embedding(n_options + 1, hidden, rng, name="ctrl.embed")
        self.cell = LSTMCell(hidden, hidden, rng, name="ctrl.lstm")
        self.head = Dense(hidden, n_options, rng=rng, activation="linear",
                          name="ctrl.head")
        self.optimizer = Adam(space.config.controller_lr)
        self.baseline: float = 0.0
        self._baseline_initialized = False

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable controller parameters (theta in Algorithm 2)."""
        return (self.embedding.parameters() + self.cell.parameters()
                + self.head.parameters())

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, greedy: bool = False) -> Trajectory:
        """Sample one architecture (or take the argmax path when greedy)."""
        state = LSTMState.zero(1, self.space.config.controller_hidden)
        token = 0
        decisions: List[int] = []
        steps: List[Tuple[StepCache, np.ndarray, np.ndarray, int]] = []
        log_prob = 0.0
        entropy = 0.0
        for scope, limit in self.space.scopes:
            for _ in range(limit):
                x = self.embedding.forward([token], train=False)
                state, cache = self.cell.step(x, state)
                logits = self.head.forward(state.h, train=False)
                probs = softmax(logits)[0]
                if greedy:
                    action = int(probs.argmax())
                else:
                    action = int(rng.choice(probs.size, p=probs))
                log_prob += float(np.log(probs[action] + 1e-12))
                entropy += float(-(probs * np.log(probs + 1e-12)).sum())
                decisions.append(action)
                steps.append((cache, state.h.copy(), probs, action))
                token = action + 1
                if action == STOP:
                    break
        return Trajectory(decisions=decisions, log_prob=log_prob,
                          entropy=entropy, steps=steps)

    # ------------------------------------------------------------------
    def update_baseline(self, reward: float) -> None:
        """EMA baseline update."""
        decay = self.space.config.baseline_decay
        if not self._baseline_initialized:
            self.baseline = reward
            self._baseline_initialized = True
        else:
            self.baseline = decay * self.baseline + (1 - decay) * reward

    def reinforce(self, trajectories: List[Trajectory],
                  rewards: List[float]) -> float:
        """One REINFORCE step over a batch of sampled architectures.

        ``loss = -(reward - baseline) * log pi(a) - beta * H(pi)``;
        gradients flow through the head, the LSTM (full BPTT), and the
        decision embeddings.  Returns the mean advantage (diagnostics).
        """
        if len(trajectories) != len(rewards):
            raise ValueError("one reward per trajectory required")
        beta = self.space.config.entropy_weight
        advantages = []
        for trajectory, reward in zip(trajectories, rewards):
            advantage = reward - self.baseline
            advantages.append(advantage)
            self._backprop_trajectory(trajectory, advantage, beta)
            self.update_baseline(reward)
        self.optimizer.step(self.parameters())
        return float(np.mean(advantages)) if advantages else 0.0

    def _backprop_trajectory(self, trajectory: Trajectory, advantage: float,
                             beta: float) -> None:
        """Accumulate policy gradients for one trajectory (batch size 1)."""
        hidden = self.space.config.controller_hidden
        dh_next = np.zeros((1, hidden), dtype=np.float32)
        dc_next = np.zeros((1, hidden), dtype=np.float32)
        steps = trajectory.steps
        # Walk the steps backwards, chaining gradients through time.
        for i in range(len(steps) - 1, -1, -1):
            cache, h, probs, action = steps[i]
            # d/dlogits of [-adv * log p(a)] is adv * (p - onehot(a)); the
            # entropy bonus (maximized) contributes beta * p * (log p + H).
            one_hot = np.zeros_like(probs)
            one_hot[action] = 1.0
            dlogits = advantage * (probs - one_hot)
            if beta > 0.0:
                log_p = np.log(probs + 1e-12)
                ent = -(probs * log_p).sum()
                dlogits += beta * probs * (log_p + ent)
            dlogits = dlogits.reshape(1, -1).astype(np.float32)
            self.head.forward(h, train=True)  # re-cache the head input
            dh = self.head.backward(dlogits) + dh_next
            dx, dh_next, dc_next = self.cell.backward_step(dh, dc_next, cache)
            token = 0 if i == 0 else steps[i - 1][3] + 1
            self.embedding.forward([token], train=True)
            self.embedding.backward(dx)
