"""Multi-task hybrid architecture search (paper Sec. IV-C)."""

from .controller import Controller, Trajectory
from .reward import (
    approx_model_bytes,
    estimate_ratio,
    flops_per_lookup,
    measure_aux_bytes_per_row,
)
from .search import SearchOutcome, SearchSample, search
from .search_space import MHASConfig, SearchSpace, WeightBank, budgeted_config

__all__ = [
    "MHASConfig",
    "SearchSpace",
    "WeightBank",
    "budgeted_config",
    "Controller",
    "Trajectory",
    "SearchOutcome",
    "SearchSample",
    "search",
    "approx_model_bytes",
    "estimate_ratio",
    "flops_per_lookup",
    "measure_aux_bytes_per_row",
]
