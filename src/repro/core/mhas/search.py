"""MHAS search loop (paper Algorithm 2).

Alternates two phases over ``Nt`` iterations:

- **model training** — sample an architecture from the controller, bind it
  to the shared :class:`~repro.core.mhas.search_space.WeightBank`, and train
  it for a few epochs (advancing the shared weights);
- **controller training** (every ``controller_every`` iterations) — sample
  a batch of architectures, score each with the estimated Eq. 1 ratio
  (reward = −ratio), and apply REINFORCE.

The search records every sampled candidate's (iteration, ratio, FLOPs)
triple — the raw material of the paper's Figures 9 and 10 — and stops
early when the best ratio stops improving (paper: |Δ| < 1e-4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...nn.multitask import ArchitectureSpec, MultiTaskMLP
from ...nn.optimizers import Adam, ExponentialDecay
from ...nn.training import Trainer
from .controller import Controller
from .reward import estimate_ratio, flops_per_lookup, measure_aux_bytes_per_row
from .search_space import MHASConfig, SearchSpace, WeightBank

__all__ = ["SearchSample", "SearchOutcome", "search"]


@dataclass
class SearchSample:
    """One scored candidate from the search trace."""

    iteration: int
    ratio: float
    flops: int
    spec: ArchitectureSpec
    phase: str  # "model" or "controller"


@dataclass
class SearchOutcome:
    """Result of :func:`search`."""

    spec: ArchitectureSpec
    model: MultiTaskMLP
    history: List[SearchSample] = field(default_factory=list)
    best_ratio: float = float("inf")
    iterations_run: int = 0
    converged: bool = False

    def ratios(self) -> np.ndarray:
        """Sampled ratios in search order (Fig. 9's y-series)."""
        return np.array([s.ratio for s in self.history])


def search(
    x: np.ndarray,
    labels: Dict[str, np.ndarray],
    output_dims: Dict[str, int],
    dataset_bytes: int,
    overhead_bytes: int,
    config: Optional[MHASConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> SearchOutcome:
    """Run MHAS over encoded keys ``x`` and label codes ``labels``.

    Parameters
    ----------
    x:
        Encoded key matrix (n, input_dim).
    labels:
        Per-task label codes, aligned with ``x``.
    output_dims:
        Task cardinalities (softmax widths).
    dataset_bytes:
        ``size(D)`` — the Eq. 1 denominator.
    overhead_bytes:
        Architecture-independent terms (``V_exist`` + ``f_decode``).
    """
    config = config if config is not None else MHASConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    n_rows = x.shape[0]

    space = SearchSpace(x.shape[1], output_dims, config)
    bank = WeightBank(rng)
    controller = Controller(space, rng)
    flat_keys = np.arange(n_rows, dtype=np.int64)  # proxy for key codes
    aux_bytes_per_row = measure_aux_bytes_per_row(flat_keys, labels)

    def build(spec: ArchitectureSpec) -> MultiTaskMLP:
        return MultiTaskMLP(spec, weights=bank.provider)

    def score(model: MultiTaskMLP, sample_idx: np.ndarray) -> float:
        return estimate_ratio(
            model, x, labels,
            n_rows=n_rows,
            aux_bytes_per_row=aux_bytes_per_row,
            overhead_bytes=overhead_bytes,
            dataset_bytes=dataset_bytes,
            sample_idx=sample_idx,
            weight_dtype_size=config.weight_dtype_size,
        )

    outcome = SearchOutcome(
        spec=space.spec_from_decisions([]), model=build(space.spec_from_decisions([]))
    )
    best_spec: Optional[ArchitectureSpec] = None
    best_ratio = float("inf")
    stale_rounds = 0
    previous_best = float("inf")

    for iteration in range(1, config.iterations + 1):
        # ---- model training phase (every iteration; paper Nm ~= Nt) -----
        trajectory = controller.sample(rng)
        spec = space.spec_from_decisions(trajectory.decisions)
        model = build(spec)
        optimizer = Adam(ExponentialDecay(config.model_lr, config.lr_decay))
        trainer = Trainer(model, optimizer, batch_size=config.model_batch,
                          tol=0.0, rng=rng)
        trainer.fit(x, labels, epochs=config.model_epochs)

        sample_idx = rng.choice(n_rows, size=min(config.eval_sample, n_rows),
                                replace=False)
        ratio = score(model, sample_idx)
        outcome.history.append(SearchSample(iteration, ratio,
                                            flops_per_lookup(spec), spec, "model"))
        if ratio < best_ratio:
            best_ratio, best_spec = ratio, spec

        # ---- controller training phase (every controller_every iters) ---
        if iteration % config.controller_every == 0:
            trajectories, rewards = [], []
            for _ in range(config.controller_samples):
                t = controller.sample(rng)
                s = space.spec_from_decisions(t.decisions)
                m = build(s)
                idx = rng.choice(n_rows, size=min(config.eval_sample, n_rows),
                                 replace=False)
                r = score(m, idx)
                outcome.history.append(
                    SearchSample(iteration, r, flops_per_lookup(s), s,
                                 "controller"))
                if r < best_ratio:
                    best_ratio, best_spec = r, s
                trajectories.append(t)
                rewards.append(-r)  # lower ratio => higher reward
            controller.reinforce(trajectories, rewards)

            # Early stopping on the best-ratio plateau (paper Sec. V-A6).
            if abs(previous_best - best_ratio) < config.tol:
                stale_rounds += 1
            else:
                stale_rounds = 0
            previous_best = best_ratio
            if stale_rounds >= config.patience:
                outcome.converged = True
                outcome.iterations_run = iteration
                break
        outcome.iterations_run = iteration

    if best_spec is None:  # no iteration ran (defensive)
        best_spec = space.spec_from_decisions([])
    outcome.spec = best_spec
    outcome.model = build(best_spec)
    outcome.best_ratio = best_ratio
    return outcome
