"""Tiny exact-match SELECT layer over a DeepMapping.

The paper frames lookups as SQL point queries (Sec. I):

    SELECT Order_Type FROM Orders WHERE Order_ID = 19

This module provides that surface: a programmatic :func:`select` plus a
minimal parser for single-table exact-match statements
(:func:`run_select`).  Anything beyond projections and ``AND``-ed key
equality predicates is rejected — richer queries belong to a real engine;
DeepMapping is the access method underneath.

Both entry points accept any mapping exposing ``key_names`` /
``value_names`` / ``lookup`` — a single
:class:`~repro.core.deep_mapping.DeepMapping` or a
:class:`~repro.shard.ShardedDeepMapping` — so queries run unchanged over
monolithic and sharded stores.  Execution flows through the mapping's
batched ``lookup``, i.e. through the fused
:class:`~repro.nn.compiled.CompiledSession` kernel (existence-gated,
gather-based inference; see ``docs/performance.md``) unless the build
config disables it.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from .deep_mapping import DeepMapping

if TYPE_CHECKING:  # avoid a runtime import cycle (shard imports core)
    from ..shard import ShardedDeepMapping

__all__ = ["select", "run_select", "QueryError", "MappingLike"]

#: Any point-lookup structure select() can execute over.
MappingLike = Union[DeepMapping, "ShardedDeepMapping"]


class QueryError(ValueError):
    """Raised for malformed or unsupported SELECT statements."""


def select(
    mapping: MappingLike,
    columns: Sequence[str],
    where: Dict[str, object],
) -> List[Optional[Dict[str, object]]]:
    """Programmatic point SELECT over a monolithic or sharded mapping.

    Parameters
    ----------
    columns:
        Value columns to project, or ``["*"]`` for all of them.
    where:
        Equality predicates; must cover exactly the key columns.  Values
        may be scalars or equal-length sequences (a batch of rows).

    Returns one dict (or ``None`` for absent keys) per queried row.
    """
    if list(columns) == ["*"]:
        columns = list(mapping.value_names)
    unknown = [c for c in columns if c not in mapping.value_names]
    if unknown:
        raise QueryError(f"unknown column(s) {unknown}; "
                         f"have {list(mapping.value_names)}")
    if set(where) != set(mapping.key_names):
        raise QueryError(
            f"WHERE must constrain exactly the key columns "
            f"{tuple(mapping.key_names)}; got {tuple(sorted(where))}"
        )
    keys = {
        name: np.atleast_1d(np.asarray(value))
        for name, value in where.items()
    }
    lengths = {arr.size for arr in keys.values()}
    if len(lengths) != 1:
        raise QueryError("WHERE values must have equal lengths")
    result = mapping.lookup(keys)
    out: List[Optional[Dict[str, object]]] = []
    for i in range(result.found.size):
        if result.found[i]:
            out.append({c: result.values[c][i] for c in columns})
        else:
            out.append(None)
    return out


_SELECT_RE = re.compile(
    r"^\s*select\s+(?P<cols>.+?)\s+(?:from\s+\S+\s+)?where\s+(?P<preds>.+?)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_PRED_RE = re.compile(r"^\s*(?P<col>\w+)\s*=\s*(?P<val>'[^']*'|\S+)\s*$")


def run_select(
    mapping: MappingLike, statement: str
) -> List[Optional[Dict[str, object]]]:
    """Parse and execute a point-SELECT statement.

    Supported grammar (case-insensitive)::

        SELECT <col> [, <col>...] | * [FROM <anything>]
        WHERE <key_col> = <int|'str'> [AND <key_col> = ...]
    """
    match = _SELECT_RE.match(statement)
    if not match:
        raise QueryError(
            "unsupported statement; expected "
            "SELECT cols [FROM t] WHERE key = value [AND ...]"
        )
    columns = [c.strip() for c in match.group("cols").split(",")]
    if not all(columns):
        raise QueryError("empty column in projection list")

    where: Dict[str, object] = {}
    for predicate in re.split(r"\s+and\s+", match.group("preds"),
                              flags=re.IGNORECASE):
        pred_match = _PRED_RE.match(predicate)
        if not pred_match:
            raise QueryError(f"unsupported predicate {predicate!r}; only "
                             "key equality is available")
        column = pred_match.group("col")
        raw = pred_match.group("val")
        if column in where:
            raise QueryError(f"duplicate predicate for {column!r}")
        if raw.startswith("'"):
            where[column] = raw[1:-1]
        else:
            try:
                where[column] = int(raw)
            except ValueError:
                raise QueryError(f"non-integer key literal {raw!r}") from None
    return select(mapping, columns, where)
