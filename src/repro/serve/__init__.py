"""Serving tier: a coalescing lookup service over shared read stores.

The fused-gather read path amortizes best over large batches, but
multi-user traffic arrives as many tiny lookups.  This package turns one
into the other: an asyncio :class:`~repro.serve.server.LookupServer`
admits small concurrent ``lookup(keys)`` requests and a
:class:`~repro.serve.batcher.Batcher` coalesces them — bounded by the
:class:`~repro.serve.policy.AdmissionPolicy` size/delay triggers — into
one fused store call per flush, scattering bit-identical per-request
slices back to every awaiting future (identical keys across requests
are deduped into one gather position).

Three ways in:

- in-process: ``repro.serving(url)`` → a synchronous
  :class:`~repro.serve.server.Client` (tests, embedding);
- network: :func:`~repro.serve.transport.serve_tcp` /
  :class:`~repro.serve.transport.TCPClient`, JSON lines over TCP;
- operational: ``python -m repro serve <url>``.

``docs/serving.md`` covers the policy knobs, the
:class:`~repro.serve.stats.ServeStats` fields (batches formed, coalesce
ratio, queue depth, per-tenant p50/p99), and deployment shapes.
"""

from .batcher import Batcher, PendingRequest, QueueFullError, TenantQuotaError
from .policy import AdmissionPolicy
from .server import Client, LookupServer
from .shedding import (LoadShedder, ServerDrainingError,
                       ServerOverloadedError, SheddingPolicy)
from .stats import ServeStats, TenantStats
from .transport import BackgroundTCPServer, TCPClient, serve_tcp

__all__ = [
    "AdmissionPolicy",
    "Batcher",
    "PendingRequest",
    "QueueFullError",
    "TenantQuotaError",
    "Client",
    "LookupServer",
    "LoadShedder",
    "SheddingPolicy",
    "ServerOverloadedError",
    "ServerDrainingError",
    "ServeStats",
    "TenantStats",
    "TCPClient",
    "BackgroundTCPServer",
    "serve_tcp",
    "run_forever",
]


def run_forever(store, host: str = "127.0.0.1", port: int = 0,
                policy=None, stats=None, shedder=None,
                on_ready=None) -> None:
    """Serve ``store`` over TCP until signalled (the CLI's engine).

    ``on_ready(port)`` fires once the socket is listening — with
    ``port=0`` this is how the caller learns the assigned port.

    Shutdown is **graceful**: SIGTERM or SIGINT (or a
    ``KeyboardInterrupt`` on platforms without signal handlers) stops
    the listener, then :meth:`LookupServer.drain` refuses new
    admissions and finishes every request already admitted — queued or
    in flight — before the function returns.  Zero in-flight work is
    lost to a shutdown; the process exits 0.
    """
    import asyncio
    import signal

    async def _main() -> None:
        server = LookupServer(store, policy=policy, stats=stats,
                              shedder=shedder)
        tcp = await serve_tcp(server, host, port)
        if on_ready is not None:
            on_ready(tcp.sockets[0].getsockname()[1])
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                # Platforms/loops without signal support (Windows
                # Proactor, embedded loops) fall back to the
                # KeyboardInterrupt path below.
                pass
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            tcp.close()
            await tcp.wait_closed()
            await server.drain()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
