"""Serving tier: a coalescing lookup service over shared read stores.

The fused-gather read path amortizes best over large batches, but
multi-user traffic arrives as many tiny lookups.  This package turns one
into the other: an asyncio :class:`~repro.serve.server.LookupServer`
admits small concurrent ``lookup(keys)`` requests and a
:class:`~repro.serve.batcher.Batcher` coalesces them — bounded by the
:class:`~repro.serve.policy.AdmissionPolicy` size/delay triggers — into
one fused store call per flush, scattering bit-identical per-request
slices back to every awaiting future (identical keys across requests
are deduped into one gather position).

Three ways in:

- in-process: ``repro.serving(url)`` → a synchronous
  :class:`~repro.serve.server.Client` (tests, embedding);
- network: :func:`~repro.serve.transport.serve_tcp` /
  :class:`~repro.serve.transport.TCPClient`, JSON lines over TCP;
- operational: ``python -m repro serve <url>``.

``docs/serving.md`` covers the policy knobs, the
:class:`~repro.serve.stats.ServeStats` fields (batches formed, coalesce
ratio, queue depth, per-tenant p50/p99), and deployment shapes.
"""

from .batcher import Batcher, PendingRequest, QueueFullError
from .policy import AdmissionPolicy
from .server import Client, LookupServer
from .stats import ServeStats, TenantStats
from .transport import BackgroundTCPServer, TCPClient, serve_tcp

__all__ = [
    "AdmissionPolicy",
    "Batcher",
    "PendingRequest",
    "QueueFullError",
    "Client",
    "LookupServer",
    "ServeStats",
    "TenantStats",
    "TCPClient",
    "BackgroundTCPServer",
    "serve_tcp",
    "run_forever",
]


def run_forever(store, host: str = "127.0.0.1", port: int = 0,
                policy=None, stats=None, on_ready=None) -> None:
    """Serve ``store`` over TCP until interrupted (the CLI's engine).

    ``on_ready(port)`` fires once the socket is listening — with
    ``port=0`` this is how the caller learns the assigned port.  Returns
    cleanly on ``KeyboardInterrupt`` after draining in-flight batches.
    """
    import asyncio

    async def _main() -> None:
        server = LookupServer(store, policy=policy, stats=stats)
        tcp = await serve_tcp(server, host, port)
        if on_ready is not None:
            on_ready(tcp.sockets[0].getsockname()[1])
        try:
            await asyncio.Event().wait()
        finally:
            tcp.close()
            await tcp.wait_closed()
            await server.aclose()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
