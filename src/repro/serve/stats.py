"""Serving-tier telemetry: per-tenant counters and latency percentiles.

The serving layer answers one operational question per knob turn: *is
coalescing actually happening, and what does it cost each tenant in
latency?*  :class:`ServeStats` therefore tracks two planes:

- **batch plane** (global): batches formed, requests and keys coalesced
  into them, unique keys after cross-request dedup, timer wakeups, and
  the queue-depth gauge — ``coalesce_ratio`` (requests per store call)
  and ``dedup_ratio`` (merged keys per unique key) fall out of these;
- **tenant plane** (per ``tenant`` string): requests, keys, errors, and
  a bounded ring of request latencies from which :meth:`TenantStats.p50`
  / :meth:`TenantStats.p99` are computed on demand.

All mutation happens on the server's event-loop thread; :meth:`snapshot`
takes a lock so clients on other threads (the in-process
:class:`~repro.serve.server.Client`, the TCP ``stats`` op, the CLI) read
a consistent view.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

__all__ = ["ServeStats", "TenantStats", "LatencyRing"]


class LatencyRing:
    """Bounded ring of recent request latencies (seconds).

    Percentiles are over the last ``capacity`` samples — a sliding
    window, so a long-lived server reports current behavior rather than
    its lifetime average.
    """

    __slots__ = ("_samples", "_capacity", "_next", "count")

    def __init__(self, capacity: int = 4096):
        self._capacity = int(capacity)
        self._samples: List[float] = []
        self._next = 0
        #: Lifetime number of samples recorded (not capped).
        self.count = 0

    def record(self, seconds: float) -> None:
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self._capacity
        self.count += 1

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (0-100) of the window, None if empty."""
        if not self._samples:
            return None
        return float(np.percentile(np.asarray(self._samples), q))


class TenantStats:
    """One tenant's view: volume, failures, and latency percentiles."""

    __slots__ = ("requests", "keys", "errors", "pruned_keys", "shed",
                 "latencies")

    def __init__(self, latency_window: int = 4096):
        self.requests = 0
        self.keys = 0
        self.errors = 0
        #: Keys the sharded store's manifest-tier negative filters
        #: pruned before dispatch, attributed to this tenant (see
        #: ``ServeStats.record_pruned`` for attribution semantics).
        self.pruned_keys = 0
        #: Requests the load shedder turned away (with a retry-after
        #: hint) — counted for *this* tenant only, never its batchmates.
        self.shed = 0
        self.latencies = LatencyRing(latency_window)

    def p50(self) -> Optional[float]:
        """Median request latency (seconds) over the recent window."""
        return self.latencies.percentile(50.0)

    def p99(self) -> Optional[float]:
        """99th-percentile request latency (seconds), the tail bound."""
        return self.latencies.percentile(99.0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "keys": self.keys,
            "errors": self.errors,
            "pruned_keys": self.pruned_keys,
            "shed": self.shed,
            "completed": self.latencies.count,
            "p50_seconds": self.p50(),
            "p99_seconds": self.p99(),
        }


class ServeStats:
    """Counters for the coalescing lookup server.

    Global counters (see module docstring) live in plain attributes;
    per-tenant records are created on first touch, mirroring how
    :class:`~repro.storage.stats.StoreStats` names buckets lazily.
    """

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self._latency_window = int(latency_window)
        #: Coalesced store calls issued (one per flushed batch).
        self.batches_formed = 0
        #: Requests that rode those batches.
        self.requests_coalesced = 0
        #: Keys merged into batches, before cross-request dedup.
        self.keys_coalesced = 0
        #: Keys actually sent to the store after dedup.
        self.unique_keys = 0
        #: Delay-timer firings (an idle server stays at zero).
        self.timer_wakeups = 0
        #: Batches whose merged store call failed and fell back to
        #: per-request isolation (poison containment).
        self.batch_fallbacks = 0
        #: Requests refused at admission (bad keys, queue full, closed).
        self.rejected = 0
        #: Requests the adaptive load shedder refused early (before they
        #: held a queue slot), each with a retry-after hint.  Shedding is
        #: the soft tier of the degradation ladder; ``rejected`` is the
        #: hard bound behind it.
        self.shed = 0
        #: Requests that ran out of deadline budget in the tier (queued
        #: past expiry, or the store call outlived their deadline).
        self.deadline_expired = 0
        #: Keys the store's negative filters pruned before shard
        #: dispatch, summed over every coalesced store call (zero for
        #: monolithic stores and filter-disabled sharded stores).
        self.keys_pruned = 0
        #: Hydration telemetry mirrored from the store's stats counters
        #: (remote-backed stores only; all zero for local opens):
        #: ranged fetches issued, payload bytes that crossed the
        #: network, and lookups that blocked on a shard another batch
        #: was mid-way through hydrating.
        self.range_requests = 0
        self.hydrated_bytes = 0
        self.hydration_waits = 0
        #: Hedged-read telemetry mirrored from the sharded store (same
        #: bracket mechanism as hydration): backup shard attempts
        #: launched for stragglers, and how many of those backups won
        #: the race against the original attempt.
        self.hedges_launched = 0
        self.hedges_won = 0
        #: Requests currently queued in the forming batch.
        self.queue_depth = 0
        #: High-water mark of ``queue_depth``.
        self.max_queue_depth = 0
        self.tenants: Dict[str, TenantStats] = {}

    # ------------------------------------------------------------------
    # Recording (server-side)
    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantStats:
        """Return (creating if needed) the record for ``name``."""
        with self._lock:
            record = self.tenants.get(name)
            if record is None:
                record = TenantStats(self._latency_window)
                self.tenants[name] = record
            return record

    def record_admit(self, tenant: str, n_keys: int) -> None:
        record = self.tenant(tenant)
        with self._lock:
            record.requests += 1
            record.keys += n_keys
            self.queue_depth += 1
            self.max_queue_depth = max(self.max_queue_depth, self.queue_depth)

    def record_batch(self, n_requests: int, n_keys: int,
                     n_unique: int) -> None:
        with self._lock:
            self.batches_formed += 1
            self.requests_coalesced += n_requests
            self.keys_coalesced += n_keys
            self.unique_keys += n_unique
            self.queue_depth = max(0, self.queue_depth - n_requests)

    def record_done(self, tenant: str, seconds: float) -> None:
        record = self.tenant(tenant)
        with self._lock:
            record.latencies.record(seconds)

    def record_error(self, tenant: str) -> None:
        record = self.tenant(tenant)
        with self._lock:
            record.errors += 1

    def record_reject(self, tenant: str) -> None:
        record = self.tenant(tenant)
        with self._lock:
            self.rejected += 1
            record.errors += 1

    def record_shed(self, tenant: str) -> None:
        """One request turned away by the load shedder — charged to the
        shedding tenant alone (its batchmates' stats are untouched)."""
        record = self.tenant(tenant)
        with self._lock:
            self.shed += 1
            record.shed += 1
            record.errors += 1

    def record_expired(self, tenant: str) -> None:
        record = self.tenant(tenant)
        with self._lock:
            self.deadline_expired += 1
            record.errors += 1

    def record_pruned(self, n_pruned: int,
                      contributions: Dict[str, int]) -> None:
        """Credit ``n_pruned`` filter-pruned keys to the batch's tenants.

        The store counts pruning per coalesced (cross-tenant, deduped)
        batch, not per request, so per-tenant attribution is pro-rata by
        the keys each tenant contributed, with the remainder going to
        the largest contributor (deterministic; ties break by name).
        Exact for single-tenant batches; a fair approximation when
        tenants share a batch or batches overlap in flight.
        """
        if n_pruned <= 0 or not contributions:
            return
        total = sum(contributions.values())
        with self._lock:
            self.keys_pruned += n_pruned
            if total <= 0:
                return
            assigned = 0
            for name, keys in contributions.items():
                record = self.tenants.get(name)
                if record is None:
                    record = TenantStats(self._latency_window)
                    self.tenants[name] = record
                share = (n_pruned * keys) // total
                record.pruned_keys += share
                assigned += share
            if assigned < n_pruned:
                biggest = max(contributions,
                              key=lambda name: (contributions[name], name))
                self.tenants[biggest].pruned_keys += n_pruned - assigned

    def record_hydration(self, range_requests: int, hydrated_bytes: int,
                         hydration_waits: int) -> None:
        """Accumulate one batch's hydration deltas (store-stats bracket,
        like :meth:`record_pruned`; approximate under overlapping
        batches, which is fine for telemetry)."""
        if not (range_requests or hydrated_bytes or hydration_waits):
            return
        with self._lock:
            self.range_requests += max(0, range_requests)
            self.hydrated_bytes += max(0, hydrated_bytes)
            self.hydration_waits += max(0, hydration_waits)

    def record_hedges(self, launched: int, won: int) -> None:
        """Accumulate one batch's hedged-read deltas (store-stats
        bracket; approximate under overlapping batches)."""
        if not (launched or won):
            return
        with self._lock:
            self.hedges_launched += max(0, launched)
            self.hedges_won += max(0, won)

    def record_wakeup(self) -> None:
        with self._lock:
            self.timer_wakeups += 1

    def record_fallback(self) -> None:
        with self._lock:
            self.batch_fallbacks += 1

    # ------------------------------------------------------------------
    # Reading (client-side)
    # ------------------------------------------------------------------
    @property
    def coalesce_ratio(self) -> float:
        """Requests per coalesced store call (> 1 means batching works)."""
        if self.batches_formed == 0:
            return 0.0
        return self.requests_coalesced / self.batches_formed

    @property
    def dedup_ratio(self) -> float:
        """Merged keys per unique key sent to the store (>= 1)."""
        if self.unique_keys == 0:
            return 0.0
        return self.keys_coalesced / self.unique_keys

    def snapshot(self) -> Dict[str, object]:
        """One consistent dict of every counter (JSON-serializable)."""
        with self._lock:
            return {
                "batches_formed": self.batches_formed,
                "requests_coalesced": self.requests_coalesced,
                "keys_coalesced": self.keys_coalesced,
                "unique_keys": self.unique_keys,
                "coalesce_ratio": (self.requests_coalesced
                                   / self.batches_formed
                                   if self.batches_formed else 0.0),
                "dedup_ratio": (self.keys_coalesced / self.unique_keys
                                if self.unique_keys else 0.0),
                "keys_pruned": self.keys_pruned,
                "prune_rate": (self.keys_pruned / self.unique_keys
                               if self.unique_keys else 0.0),
                "hydration": {
                    "range_requests": self.range_requests,
                    "hydrated_bytes": self.hydrated_bytes,
                    "hydration_waits": self.hydration_waits,
                },
                "hedges": {
                    "launched": self.hedges_launched,
                    "won": self.hedges_won,
                },
                "timer_wakeups": self.timer_wakeups,
                "batch_fallbacks": self.batch_fallbacks,
                "rejected": self.rejected,
                "shed": self.shed,
                "deadline_expired": self.deadline_expired,
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "tenants": {name: record.snapshot()
                            for name, record in self.tenants.items()},
            }

    def __repr__(self) -> str:
        return (f"ServeStats(batches={self.batches_formed}, "
                f"requests={self.requests_coalesced}, "
                f"coalesce_ratio={self.coalesce_ratio:.2f}, "
                f"queue_depth={self.queue_depth})")
