"""Asyncio front end: admit tiny lookups, flush fused batches.

:class:`LookupServer` is the serving tier over one shared store (any
:class:`~repro.store.protocol.DataStore`, typically
``repro.open(url, writable=False)``).  Many concurrent ``await
server.lookup(keys)`` calls are coalesced by the
:class:`~repro.serve.batcher.Batcher` under the
:class:`~repro.serve.policy.AdmissionPolicy` triggers, executed as *one*
store lookup per flush on the store's executor **coordinator lane**
(``store.lookup_async`` — the fan-out lane underneath still spreads
shards across workers, and the event loop never blocks on kernels), and
scattered back to each awaiting future bit-identically.

Failure containment, in order of distance from the caller:

- malformed keys (wrong dtype/shape/columns) raise at admission, inside
  the caller's own ``await`` — the forming batch never sees them;
- a merged store call that fails does **not** fail its batchmates: the
  flush falls back to per-request isolation, so only requests that fail
  on their own keys see the error (``stats.batch_fallbacks`` counts
  these);
- :meth:`LookupServer.aclose` cancels queued requests (callers get
  ``CancelledError``), refuses new admissions (``RuntimeError``), and
  drains in-flight batches — never a hang.

:class:`Client` wraps a server (plus a dedicated event-loop thread) in a
synchronous handle, so tests, benchmarks, and embedding applications use
the coalescing tier without writing any asyncio.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
from typing import Dict, Optional, Union

from ..core.deep_mapping import LookupResult
from ..resilience.deadline import Deadline, default_timeout
from ..resilience.errors import DeadlineExceeded
from .batcher import (Batcher, PendingRequest, QueueFullError,
                      merge_requests, normalize_request_keys,
                      scatter_result)
from .policy import AdmissionPolicy
from .shedding import LoadShedder, ServerDrainingError, ServerOverloadedError
from .stats import ServeStats

__all__ = ["LookupServer", "Client"]

DEFAULT_TENANT = "default"

#: Store-stats counters bracketed around each fused call to surface
#: remote lazy-hydration activity in :class:`ServeStats` (all absent /
#: zero-delta for local opens).
_HYDRATION_KEYS = ("range_requests", "hydrated_bytes", "hydration_waits")

#: Store-stats counters bracketed the same way to surface hedged-read
#: activity (sharded stores with ``hedged_reads=True`` only).
_HEDGE_KEYS = ("hedges_launched", "hedges_won")


class LookupServer:
    """Coalescing lookup service over one shared read store.

    Single-loop confined: every method except ``stats`` must run on the
    event loop the server bound at first use (the :class:`Client` and
    the TCP transport arrange this).  The server never polls — it arms
    exactly one timer per forming batch and none while idle.
    """

    def __init__(self, store, policy: Optional[AdmissionPolicy] = None,
                 stats: Optional[ServeStats] = None,
                 shedder: Optional[LoadShedder] = None):
        self.store = store
        self.policy = policy or AdmissionPolicy()
        self.stats = stats or ServeStats()
        #: Optional :class:`~repro.serve.shedding.LoadShedder`; when set,
        #: admission consults it *before* a request takes a queue slot.
        self.shedder = shedder
        self._batcher = Batcher(self.policy)
        self._key_names = tuple(store.key_names)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight: set = set()
        self._inflight_keys = 0
        self._closed = False
        self._draining = False
        # Capability sniff, once: a store whose lookup_async accepts a
        # ``deadline`` keyword (the sharded store) has the budget pushed
        # down so shard jobs self-terminate; other stores are bounded
        # from outside by wait_for alone.
        try:
            self._store_takes_deadline = "deadline" in \
                inspect.signature(store.lookup_async).parameters
        except (TypeError, ValueError):
            self._store_takes_deadline = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def lookup(self, keys, tenant: str = DEFAULT_TENANT,
                     deadline_ms: Optional[float] = None) -> LookupResult:
        """Admit one request; resolves when its batch has been served.

        Results are bit-identical to ``store.lookup(keys)`` — same
        ``found`` mask, same value arrays, input order preserved.

        ``deadline_ms`` caps this request's total time in the tier —
        queueing included.  An urgent waiter pulls its batch's flush
        earlier than the policy delay when needed, the fused store call
        never waits past the batch's earliest deadline, and a request
        whose budget runs out fails alone with
        :class:`~repro.resilience.DeadlineExceeded` — its batchmates
        are unaffected.
        """
        loop = asyncio.get_running_loop()
        self._bind(loop)
        if self._closed:
            raise RuntimeError("lookup server is closed")
        if self._draining:
            self.stats.record_reject(tenant)
            raise ServerDrainingError(
                "lookup server is draining; route to another instance")
        try:
            key_cols = normalize_request_keys(keys, self._key_names)
            deadline = self._admission_deadline(deadline_ms, loop)
        except (TypeError, ValueError, KeyError):
            self.stats.record_reject(tenant)
            raise
        n_keys = int(next(iter(key_cols.values())).size)
        if self.shedder is not None:
            # Shed *before* taking a queue slot: backlog = queued keys
            # plus the batches already executing; over-fair-share
            # tenants shed first (the soft tier of the ladder).
            retry_after = self.shedder.admit(
                n_keys, self._batcher.pending_keys + self._inflight_keys,
                self._batcher.over_fair_share(tenant, n_keys))
            if retry_after is not None:
                self.stats.record_shed(tenant)
                raise ServerOverloadedError(
                    f"server overloaded ({self.shedder.level}); retry in "
                    f"{retry_after * 1000:.0f} ms",
                    retry_after_s=retry_after)
        future: asyncio.Future = loop.create_future()
        request = PendingRequest(key_cols, tenant, future, loop.time(),
                                 deadline=deadline)
        try:
            flush_now = self._batcher.add(request)
        except QueueFullError:
            # Before rejecting, evict queued waiters whose deadline has
            # already passed — a dead waiter must not hold a slot
            # against live admissions — and retry exactly once.
            evicted = self._batcher.evict_expired()
            for dead in evicted:
                self._expire(dead, "while queued")
            if not evicted:
                self.stats.record_reject(tenant)
                raise
            try:
                flush_now = self._batcher.add(request)
            except QueueFullError:
                self.stats.record_reject(tenant)
                raise
        self.stats.record_admit(tenant, request.n_keys)
        if flush_now:
            self._flush()
        else:
            self._arm_timer(loop)
        return await future

    @staticmethod
    def _admission_deadline(deadline_ms, loop) -> Optional[Deadline]:
        if deadline_ms is None:
            return None
        budget = float(deadline_ms)
        if budget <= 0:
            raise ValueError(
                f"deadline_ms must be positive, got {deadline_ms!r}")
        # The loop clock, so batcher timers and expiry agree on "now".
        return Deadline(budget / 1000.0, clock=loop.time)

    def _arm_timer(self, loop) -> None:
        """Arm (or pull forward) the one delay-trigger timer.

        The batcher's flush point only ever moves *earlier* (an urgent
        waiter joining), so a timer already set to fire at or before the
        current deadline stays; otherwise it is replaced.
        """
        due = self._batcher.deadline()
        if due is None:
            return
        if self._timer is not None:
            if self._timer.when() <= due:
                return
            self._timer.cancel()
        self._timer = loop.call_at(due, self._on_timer)

    def _bind(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._loop is None:
            self._loop = loop
            # The batcher's deadlines must be on the loop's clock so
            # call_at() and due() agree on "now".
            self._batcher.clock = loop.time
        elif self._loop is not loop:
            raise RuntimeError("LookupServer is bound to another event loop")

    # ------------------------------------------------------------------
    # Flush path
    # ------------------------------------------------------------------
    def _on_timer(self) -> None:
        """Delay trigger fired: flush whatever has formed."""
        self._timer = None
        self.stats.record_wakeup()
        if len(self._batcher):
            self._flush()

    def _flush(self) -> None:
        """Drain the forming batch into one in-flight execution task.

        Under overload the batcher's deficit-round-robin drain may leave
        requests queued (they did not fit this batch's key budget); the
        timer is re-armed for them so they ride the next flush.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch = self._batcher.take()
        if not batch:
            return
        batch_keys = sum(r.n_keys for r in batch)
        self._inflight_keys += batch_keys
        task = self._loop.create_task(self._execute(batch))
        self._inflight.add(task)

        def _settle(t, keys=batch_keys):
            self._inflight.discard(t)
            self._inflight_keys = max(0, self._inflight_keys - keys)

        task.add_done_callback(_settle)
        if len(self._batcher):
            self._arm_timer(self._loop)

    def _expire(self, request, where: str) -> None:
        """Fail one request whose budget ran out (alone, typed)."""
        if not request.future.done():
            request.future.set_exception(DeadlineExceeded(
                f"request deadline exceeded {where}"))
        self.stats.record_expired(request.tenant)

    def _prune_expired(self, batch, where: str) -> list:
        """Drop already-expired waiters from ``batch``; fail them alone."""
        live = []
        for request in batch:
            if request.deadline is not None and request.deadline.expired:
                self._expire(request, where)
            else:
                live.append(request)
        return live

    def _store_call(self, key_cols, deadline: Optional[Deadline]):
        """The fused (or per-request) store future, budget pushed down
        when the store can take it."""
        if deadline is not None and self._store_takes_deadline:
            return self.store.lookup_async(key_cols, deadline=deadline)
        return self.store.lookup_async(key_cols)

    async def _execute(self, batch) -> None:
        # A waiter can expire while its batch forms (urgent deadline,
        # size trigger never fired, store busy): fail it alone before
        # spending a store call on its keys.
        batch = self._prune_expired(batch, "while queued")
        if not batch:
            return
        unique_cols, inverse, slices = merge_requests(self._key_names, batch)
        n_unique = int(next(iter(unique_cols.values())).size)
        n_keys = slices[-1][1] if slices else 0
        self.stats.record_batch(len(batch), n_keys, n_unique)
        deadline = Deadline.earliest(
            r.deadline for r in batch if r.deadline is not None)
        # The sharded store counts manifest-filter pruning in its own
        # stats; bracket the fused call so the tier can attribute this
        # batch's pruned keys to its tenants.  The delta is approximate
        # when batches overlap in flight — fine for telemetry.
        counters = getattr(getattr(self.store, "stats", None),
                           "counters", None)
        pruned_before = (counters.get("pruned_keys", 0)
                         if counters is not None else 0)
        hydration_before = (tuple(counters.get(k, 0)
                                  for k in _HYDRATION_KEYS)
                            if counters is not None else None)
        hedges_before = (tuple(counters.get(k, 0) for k in _HEDGE_KEYS)
                         if counters is not None else None)
        started = self._loop.time()
        try:
            # Coordinator lane: the store's executor runs the fused
            # batch off-loop; shard fan-out uses its separate worker
            # lane, so this await cannot deadlock the pool.  The wait is
            # bounded by the batch's most urgent waiter; the store-level
            # deadline (when supported) makes the workers stop too.
            future = asyncio.wrap_future(self._store_call(
                unique_cols, deadline))
            if deadline is not None:
                result = await asyncio.wait_for(future, deadline.timeout_or())
            else:
                result = await future
        except asyncio.CancelledError:
            self._fail_batch(batch, asyncio.CancelledError())
            raise
        except (DeadlineExceeded, asyncio.TimeoutError):
            # The most urgent waiter's budget ran out mid-call.  Only
            # *its* keys are forfeit: expired waiters fail alone and the
            # rest — whose budgets still have room — re-run individually
            # so one tight deadline never fails its batchmates.
            self.stats.record_fallback()
            await self._execute_individually(batch, "in the store call")
            return
        except Exception:
            # Poison containment: one request's keys (or a store hiccup)
            # must not fail the whole batch — re-run each request alone.
            self.stats.record_fallback()
            await self._execute_individually(batch)
            return
        if counters is not None:
            contributions: dict = {}
            for request in batch:
                contributions[request.tenant] = (
                    contributions.get(request.tenant, 0) + request.n_keys)
            self.stats.record_pruned(
                counters.get("pruned_keys", 0) - pruned_before,
                contributions)
            self.stats.record_hydration(
                *(counters.get(k, 0) - before
                  for k, before in zip(_HYDRATION_KEYS, hydration_before)))
            self.stats.record_hedges(
                *(counters.get(k, 0) - before
                  for k, before in zip(_HEDGE_KEYS, hedges_before)))
        now = self._loop.time()
        if self.shedder is not None and n_unique > 0:
            # Feed the service-rate EWMA from successful fused calls
            # only — failed/fallback batches would skew the rate with
            # timeout latencies the shedder exists to prevent.
            self.shedder.observe_batch(n_unique, max(1e-9, now - started))
        for request, (lo, hi) in zip(batch, slices):
            if request.future.done():
                continue
            request.future.set_result(
                scatter_result(result, inverse, lo, hi))
            self.stats.record_done(request.tenant, now - request.admitted_at)

    async def _execute_individually(self, batch,
                                    where: str = "in the store call") -> None:
        """Fallback: serve each request of a failed batch in isolation."""
        for request in batch:
            if request.future.done():
                continue
            if request.deadline is not None and request.deadline.expired:
                self._expire(request, where)
                continue
            try:
                future = asyncio.wrap_future(self._store_call(
                    request.key_cols, request.deadline))
                if request.deadline is not None:
                    result = await asyncio.wait_for(
                        future, request.deadline.timeout_or())
                else:
                    result = await future
            except asyncio.CancelledError:
                self._fail_batch(batch, asyncio.CancelledError())
                raise
            except (DeadlineExceeded, asyncio.TimeoutError):
                self._expire(request, where)
                continue
            except Exception as exc:
                request.future.set_exception(exc)
                self.stats.record_error(request.tenant)
                continue
            request.future.set_result(result)
            self.stats.record_done(
                request.tenant, self._loop.time() - request.admitted_at)

    @staticmethod
    def _fail_batch(batch, exc: BaseException) -> None:
        for request in batch:
            if not request.future.done():
                request.future.set_exception(exc)

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when nothing is queued, armed, or in flight."""
        return (len(self._batcher) == 0 and self._timer is None
                and not self._inflight)

    @property
    def timer_armed(self) -> bool:
        """True while a delay-trigger wakeup is scheduled."""
        return self._timer is not None

    @property
    def health(self) -> Dict[str, object]:
        """Readiness/liveness snapshot for a fronting balancer.

        ``ready`` goes false the instant :meth:`drain` starts (rotate
        traffic away); ``live`` stays true until the server is closed
        (the process is still finishing admitted work).
        """
        return {
            "ready": not (self._draining or self._closed),
            "live": not self._closed,
            "draining": self._draining,
            "queued_requests": len(self._batcher),
            "queued_keys": self._batcher.pending_keys,
            "inflight_batches": len(self._inflight),
            "shed_level": (self.shedder.level if self.shedder is not None
                           else "healthy"),
        }

    async def drain(self) -> Dict[str, int]:
        """Zero-downtime shutdown: stop admission, finish everything.

        The graceful half of the shutdown pair (:meth:`aclose` is the
        abrupt half).  New lookups are refused with
        :class:`~repro.serve.shedding.ServerDrainingError` from the
        moment drain starts, but every request already admitted — queued
        in the forming batch or in an executing fused call — completes
        normally: zero in-flight work is lost.  Idempotent; a second
        caller awaits the same completion.  Returns counts of what was
        flushed and awaited.
        """
        if self._loop is None:
            # Never served a request: nothing to flush, just seal.
            self._draining = True
            self._closed = True
            return {"flushed_requests": 0, "awaited_batches": 0}
        self._draining = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        flushed = 0
        # DRR-clipped takes can leave leftovers queued; loop until the
        # queue is truly empty (admission is off, so this terminates).
        while len(self._batcher):
            before = len(self._batcher)
            self._flush()
            flushed += before - len(self._batcher)
            if len(self._batcher) >= before:  # pragma: no cover - safety
                break
        awaited = 0
        while self._inflight:
            pending = tuple(self._inflight)
            awaited += len(pending)
            await asyncio.gather(*pending, return_exceptions=True)
        self._closed = True
        return {"flushed_requests": flushed, "awaited_batches": awaited}

    async def aclose(self) -> None:
        """Refuse new work, cancel queued requests, drain in-flight.

        Queued-but-unflushed callers get ``CancelledError``; batches
        already executing finish normally.  Idempotent; never hangs.
        """
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for request in self._batcher.take():
            if not request.future.done():
                request.future.cancel()
        if self._inflight:
            await asyncio.gather(*tuple(self._inflight),
                                 return_exceptions=True)


class Client:
    """Synchronous in-process handle on a coalescing lookup server.

    Owns a dedicated event-loop thread; any number of caller threads may
    invoke :meth:`lookup` concurrently and their requests coalesce on
    that loop.  ``close_store=True`` makes :meth:`close` also close the
    wrapped store (the ``repro.serving()`` facade uses this — it opened
    the store, so the handle owns it).
    """

    def __init__(self, store, policy: Optional[AdmissionPolicy] = None,
                 stats: Optional[ServeStats] = None, *,
                 shedder: Optional[LoadShedder] = None,
                 close_store: bool = False):
        self.server = LookupServer(store, policy=policy, stats=stats,
                                   shedder=shedder)
        self._close_store = close_store
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-client",
                                        daemon=True)
        self._closed = False
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # ------------------------------------------------------------------
    @property
    def store(self):
        return self.server.store

    @property
    def stats(self) -> ServeStats:
        return self.server.stats

    def lookup(self, keys, tenant: str = DEFAULT_TENANT,
               deadline_ms: Optional[float] = None) -> LookupResult:
        """Coalesced lookup; blocks until the batch is served.

        ``deadline_ms`` bounds the request end to end (queueing and the
        store call); an exhausted budget raises
        :class:`~repro.resilience.DeadlineExceeded` — a ``TimeoutError``
        — without failing unrelated batchmates.
        """
        return self.submit(keys, tenant, deadline_ms=deadline_ms).result()

    def submit(self, keys, tenant: str = DEFAULT_TENANT,
               deadline_ms: Optional[float] = None):
        """Admit without blocking; returns a ``concurrent.futures.Future``.

        The handle for driving many in-flight requests from one thread
        (the concurrency harness and the benchmark both build on it).
        """
        if self._closed:
            raise RuntimeError("serving client is closed")
        return asyncio.run_coroutine_threadsafe(
            self.server.lookup(keys, tenant, deadline_ms=deadline_ms),
            self._loop)

    def lookup_one(self, **key_parts) -> Optional[Dict[str, object]]:
        """Single-row convenience mirroring ``DataStore.lookup_one``."""
        import numpy as np
        if set(key_parts) != set(self.server._key_names):
            raise KeyError(f"expected key columns {self.server._key_names}")
        keys = {name: np.array([value], dtype=np.int64)
                for name, value in key_parts.items()}
        return next(self.lookup(keys).rows())

    def health(self) -> Dict[str, object]:
        """The server's readiness/liveness snapshot (thread-safe read)."""
        return self.server.health

    def drain(self, timeout: Optional[float] = None) -> Dict[str, int]:
        """Gracefully drain the server: refuse new work, finish all
        admitted work, then stop the loop thread.  Returns the drain
        report.  After this the client behaves as closed."""
        if self._closed:
            return {"flushed_requests": 0, "awaited_batches": 0}
        self._closed = True
        bound = default_timeout(timeout)
        report = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop).result(timeout=bound)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=bound)
        self._loop.close()
        if self._close_store:
            self.store.close()
        return report

    def close(self, timeout: Optional[float] = None) -> None:
        """Shut the server down and stop the loop thread (idempotent).

        ``timeout`` bounds the shutdown drain and the loop-thread join
        (default :data:`~repro.resilience.DEFAULT_TIMEOUT_S`).
        """
        if self._closed:
            return
        self._closed = True
        bound = default_timeout(timeout)
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self._loop).result(timeout=bound)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=bound)
        self._loop.close()
        if self._close_store:
            self.store.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
