"""Adaptive load shedding for the coalescing lookup server.

Back-pressure via ``max_queue_requests`` alone is a cliff: the queue
saturates, every tenant sees hard rejects, and the requests already
queued have accumulated the full backlog's latency before they fail.
The :class:`LoadShedder` turns the cliff into a ramp (the *degradation
ladder* in ``docs/serving.md``):

1. **fair-share clip** — the batcher's per-tenant quota and
   deficit-round-robin drain bound what a flooding tenant can queue and
   ride (no shedding involved);
2. **shed with retry-after** — when the *estimated backlog delay*
   (queued + in-flight keys over the observed service rate) crosses
   ``target_delay_ms``, new work from tenants already over their fair
   share is refused early with a :class:`ServerOverloadedError`
   carrying a retry-after hint;
3. **hard reject** — past ``hard_delay_ms`` every new request is shed
   (the server is underwater; admitting anything only lengthens the
   queue everyone is stuck behind), and behind that the queue bound
   still backstops.

The service-rate estimate is an EWMA over observed batch executions
(keys per second), fed by ``LookupServer._execute`` — no clock reads of
its own, no timers, nothing armed while idle.  Until
``min_observations`` batches have been seen the shedder admits
everything: cold servers must not shed their warm-up traffic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from .batcher import QueueFullError

__all__ = ["SheddingPolicy", "LoadShedder", "ServerOverloadedError",
           "ServerDrainingError"]


class ServerOverloadedError(QueueFullError):
    """Admission refused by the adaptive load shedder.

    Subclasses :class:`QueueFullError` so callers that already catch
    queue-full back-pressure handle shedding without code changes;
    ``retry_after_s`` estimates when the backlog will have drained to
    the target.  The TCP transport forwards it as ``retry_after_ms``
    and the client re-raises a typed twin (``transport.py``).
    """


class ServerDrainingError(RuntimeError):
    """Admission refused because the server is draining for shutdown.

    Not retryable against *this* instance — a fronting balancer should
    route to a peer (the ``health`` verb reports ``ready: false`` for
    the whole drain window).
    """


@dataclass(frozen=True)
class SheddingPolicy:
    """Knobs for the adaptive shedder's delay-estimate thresholds."""

    #: Estimated backlog delay (ms) past which over-fair-share work is
    #: shed.  Keep above the admission window (``max_delay_ms``) —
    #: queueing up to one window is the design, not overload.
    target_delay_ms: float = 20.0
    #: Estimated backlog delay (ms) past which *all* new work is shed.
    hard_delay_ms: float = 100.0
    #: EWMA smoothing for the service-rate estimate (higher = snappier).
    ewma_alpha: float = 0.25
    #: Batches observed before the shedder trusts its rate estimate and
    #: starts shedding at all.
    min_observations: int = 3
    #: Floor on the retry-after hint so clients never busy-spin.
    min_retry_after_ms: float = 5.0

    def __post_init__(self):
        if self.target_delay_ms <= 0:
            raise ValueError("target_delay_ms must be > 0")
        if self.hard_delay_ms < self.target_delay_ms:
            raise ValueError("hard_delay_ms must be >= target_delay_ms")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")


class LoadShedder:
    """EWMA service-rate tracker + admission verdicts.

    Thread-safe (the TCP ``stats`` op and in-process clients read
    ``level`` off-loop), but all verdicts happen on the server's
    event-loop thread.
    """

    def __init__(self, policy: Optional[SheddingPolicy] = None):
        self.policy = policy or SheddingPolicy()
        self._lock = threading.Lock()
        self._rate_keys_per_s: Optional[float] = None
        self._observations = 0
        self._last_delay_ms = 0.0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe_batch(self, n_keys: int, seconds: float) -> None:
        """Record one successful fused batch execution."""
        if n_keys <= 0 or seconds <= 0:
            return
        rate = n_keys / seconds
        with self._lock:
            if self._rate_keys_per_s is None:
                self._rate_keys_per_s = rate
            else:
                alpha = self.policy.ewma_alpha
                self._rate_keys_per_s = (alpha * rate
                                         + (1 - alpha) * self._rate_keys_per_s)
            self._observations += 1

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def estimated_delay_ms(self, backlog_keys: int) -> Optional[float]:
        """Expected time for ``backlog_keys`` to clear at the current
        service-rate estimate, None while the estimate is cold."""
        with self._lock:
            if self._observations < self.policy.min_observations \
                    or not self._rate_keys_per_s:
                return None
            return backlog_keys / self._rate_keys_per_s * 1000.0

    def admit(self, n_keys: int, backlog_keys: int,
              over_share: bool) -> Optional[float]:
        """Admission verdict for a request of ``n_keys``.

        ``backlog_keys`` is queued + in-flight keys; ``over_share``
        whether this tenant already exceeds its weighted fair share of
        the queue.  Returns None to admit, or a ``retry_after_s`` hint
        when the request should be shed.
        """
        delay_ms = self.estimated_delay_ms(backlog_keys + n_keys)
        with self._lock:
            self._last_delay_ms = delay_ms if delay_ms is not None else 0.0
        if delay_ms is None:
            return None
        if delay_ms > self.policy.hard_delay_ms \
                or (delay_ms > self.policy.target_delay_ms and over_share):
            hint_ms = max(self.policy.min_retry_after_ms,
                          delay_ms - self.policy.target_delay_ms)
            return hint_ms / 1000.0
        return None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def service_rate_keys_per_s(self) -> Optional[float]:
        with self._lock:
            if self._observations < self.policy.min_observations:
                return None
            return self._rate_keys_per_s

    @property
    def level(self) -> str:
        """Last verdict's position on the ladder: ``healthy`` /
        ``shedding`` (over-share work refused) / ``critical`` (all new
        work refused)."""
        with self._lock:
            delay = self._last_delay_ms
        if delay > self.policy.hard_delay_ms:
            return "critical"
        if delay > self.policy.target_delay_ms:
            return "shedding"
        return "healthy"

    def snapshot(self) -> dict:
        with self._lock:
            rate = (self._rate_keys_per_s
                    if self._observations >= self.policy.min_observations
                    else None)
            delay = self._last_delay_ms
            observations = self._observations
        return {
            "level": ("critical" if delay > self.policy.hard_delay_ms
                      else "shedding" if delay > self.policy.target_delay_ms
                      else "healthy"),
            "service_rate_keys_per_s": rate,
            "last_estimated_delay_ms": delay,
            "observations": observations,
        }

    def __repr__(self) -> str:
        return (f"LoadShedder(level={self.level!r}, "
                f"rate={self.service_rate_keys_per_s})")
